//! Regression tests for queries with very wide atoms (more variables than
//! the bag-enumeration bitmask used to tolerate).

use cqcount::core::sharp::sharp_hypertree_width;
use cqcount::query::parse_query;

#[test]
fn wide_atom_width() {
    // single atom with 33 variables, all free: #-htw is trivially 1
    let vars: Vec<String> = (0..33).map(|i| format!("X{i}")).collect();
    let src = format!("ans({}) :- r({}).", vars.join(", "), vars.join(", "));
    let q = parse_query(&src).unwrap();
    assert_eq!(sharp_hypertree_width(&q, 2), Some(1));
}

#[test]
fn wide_atom_pair_width() {
    // two 33-ary atoms overlapping on one variable, with the two free
    // variables split across them: the free-variable bag needs both atoms,
    // so #-htw is 2 (same as the narrow analogue r(X0,X1,X2), s(X2,X3,X4))
    let left: Vec<String> = (0..33).map(|i| format!("X{i}")).collect();
    let right: Vec<String> = (32..65).map(|i| format!("X{i}")).collect();
    let src = format!(
        "ans(X0, X64) :- r({}), s({}).",
        left.join(", "),
        right.join(", ")
    );
    let q = parse_query(&src).unwrap();
    assert_eq!(sharp_hypertree_width(&q, 2), Some(2));
}
