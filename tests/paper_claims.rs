//! End-to-end checks of the paper's headline claims, on the paper's own
//! instance families (integration across all crates).

use cqcount::prelude::*;
use cqcount::workloads::paper::*;
use cqcount::workloads::random::{random_database, random_query, RandomCqConfig, RandomDbConfig};

/// Definition 1.2 / Figure 3: Q0 has #-hypertree width exactly 2.
#[test]
fn q0_width_claims() {
    let q = q0_query();
    let report = WidthReport::analyze(&q, 4);
    assert!(!report.acyclic);
    assert_eq!(report.ghw, Some(2));
    assert_eq!(report.sharp_width, Some(2));
}

/// Example 4.1 / Figure 8: Q1 (the 4-cycle) has #-hypertree width 2,
/// witnessed by a decomposition covering the frontier edge {A, C}.
#[test]
fn q1_cycle_width() {
    let q = q1_cycle_query();
    assert_eq!(sharp_hypertree_width(&q, 4), Some(2));
}

/// Theorem A.3 separation (Example A.2): the chain family has unbounded
/// quantified star size but #-hypertree width 1; the Durand–Mengel width
/// grows while the paper's stays constant.
#[test]
fn chain_family_separation() {
    for n in 2..=5 {
        let q = chain_query(n);
        assert_eq!(quantified_star_size(&q), n.div_ceil(2), "star size, n={n}");
        assert_eq!(sharp_hypertree_width(&q, 2), Some(1), "#-htw, n={n}");
        let (dm_w, _) =
            cqcount::core::durand_mengel::durand_mengel_width(&q, 8).expect("DM width exists");
        assert!(dm_w >= n.div_ceil(2), "DM width must grow, n={n}");
    }
}

/// Appendix A (Q2ⁿ): unbounded generalized hypertree width, #-htw 1.
#[test]
fn biclique_family_separation() {
    for n in 2..=3 {
        let q = biclique_query(n);
        let resources: Vec<NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (w, _) = ghw_exact(&q.hypergraph(), &resources, n).expect("ghw = n");
        assert_eq!(w, n, "ghw of K_{{{n},{n}}}");
        assert_eq!(sharp_hypertree_width(&q, 1), Some(1));
    }
}

/// Example C.1: the star family is acyclic yet has #-hypertree width h+1 —
/// the frontier of the existential variables spans all free variables.
#[test]
fn star_family_width_h_plus_1() {
    for h in 1..=3 {
        let q = star_query(h);
        assert!(is_acyclic(&q.hypergraph()), "Q2^{h} is acyclic");
        assert_eq!(sharp_hypertree_width(&q, h + 2), Some(h + 1), "h = {h}");
    }
}

/// Theorem 6.2 / Example C.2: on the star instance the counting works and
/// matches the closed form 2^h; the degree bound of the width-1
/// decomposition is the full 2^h, dropping to 1 when r and s share a bag.
#[test]
fn star_counting_and_degree() {
    for h in 1..=3 {
        let q = star_query(h);
        let db = star_database(h);
        assert_eq!(count_auto(&q, &db), star_expected_count(h).into());
        assert_eq!(count_brute_force(&q, &db), star_expected_count(h).into());
    }
}

/// Example 6.3/6.5: the hybrid family — width-2 #₁-hypertree decomposition
/// exists with the Y's promoted, and hybrid counting is exact.
#[test]
fn hybrid_family_counts() {
    for h in 1..=3 {
        let q = hybrid_query(h);
        let db = hybrid_database(h);
        let (n, hd) = count_hybrid(&q, &db, 2, usize::MAX).expect("hybrid width 2");
        assert_eq!(n, hybrid_expected_count(h).into(), "h = {h}");
        assert_eq!(hd.bound, 1, "keys give degree 1 at h = {h}");
        assert_eq!(hd.sharp.width, 2);
        // For h ≥ 2 the frontier clique exceeds width 2, so the promoted
        // set must strictly extend the free variables (at h = 1 the purely
        // structural width-2 decomposition already suffices).
        if h >= 2 {
            assert!(hd.sbar.len() > q.free().len(), "h = {h}");
        }
    }
}

/// Example 6.3's negative side: the family's #-hypertree width grows
/// (h + 1), so no fixed width suffices structurally.
#[test]
fn hybrid_family_needs_growing_structural_width() {
    for h in 1..=3usize {
        let q = hybrid_query(h);
        assert!(
            sharp_hypertree_width(&q, h).is_none(),
            "width {h} must not suffice at h = {h}"
        );
        assert_eq!(sharp_hypertree_width(&q, h + 1), Some(h + 1));
    }
}

/// The planner agrees with brute force across random instances (wider than
/// the per-crate proptests: uses the workloads generators).
#[test]
fn planner_agreement_sweep() {
    for seed in 0..30 {
        let q = random_query(
            &RandomCqConfig {
                atoms: 4,
                vars: 5,
                max_arity: 3,
                rels: 3,
                free_prob: 0.4,
            },
            seed,
        );
        let db = random_database(
            &q,
            &RandomDbConfig {
                domain: 4,
                tuples_per_rel: 8,
            },
            seed.wrapping_mul(31),
        );
        assert_eq!(
            count_auto(&q, &db),
            count_brute_force(&q, &db),
            "seed {seed}"
        );
    }
}
