//! End-to-end tests of the `cqcount` command-line binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cqcount"))
}

fn sample_file(contents: &str) -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new().expect("temp file");
    f.write_all(contents.as_bytes()).unwrap();
    f.into_temp_path()
}

mod tempfile {
    //! A 20-line stand-in for the `tempfile` crate (keeping the workspace
    //! dependency-free): unique files under the target tmp dir, deleted on
    //! drop.
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct NamedTempFile(std::fs::File, PathBuf);
    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<NamedTempFile> {
            let dir = std::env::temp_dir();
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("cqcount-test-{}-{n}.cq", std::process::id()));
            Ok(NamedTempFile(std::fs::File::create(&path)?, path))
        }
        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.1)
        }
    }
    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.0.flush()
        }
    }
    impl TempPath {
        pub fn to_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }
    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

const SAMPLE: &str = "
    edge(a, b). edge(b, c). edge(a, c). edge(c, d).
    ans(X) :- edge(X, Y), edge(Y, Z).
";

#[test]
fn count_all_algorithms_agree() {
    let f = sample_file(SAMPLE);
    let mut answers = Vec::new();
    for alg in ["auto", "brute", "join", "pipeline", "hybrid", "dm"] {
        let out = bin()
            .args(["count", f.to_str(), "--alg", alg])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{alg}: {:?}", out);
        answers.push(String::from_utf8_lossy(&out.stdout).trim().to_owned());
    }
    assert!(answers.iter().all(|a| a == "2"), "{answers:?}");
}

#[test]
fn analyze_reports_widths() {
    let f = sample_file(SAMPLE);
    let out = bin().args(["analyze", f.to_str()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("#-hypertree width:    1"), "{text}");
    assert!(text.contains("α-acyclic:            true"), "{text}");
}

#[test]
fn enumerate_lists_answers() {
    let f = sample_file(SAMPLE);
    let out = bin().args(["enumerate", f.to_str()]).output().unwrap();
    assert!(out.status.success());
    let mut lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    lines.sort_unstable();
    assert_eq!(lines, vec!["a", "b"]);
    // limit
    let out = bin()
        .args(["enumerate", f.to_str(), "--limit", "1"])
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 1);
}

#[test]
fn errors_are_reported() {
    // missing file
    let out = bin().args(["count", "/nonexistent.cq"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    // unknown command
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // parse error propagates with location
    let f = sample_file("edge(X, b).");
    let out = bin().args(["count", f.to_str()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ground"));
    // width cap error
    let f2 = sample_file(
        "r(x, y1, y2). s(y0, y1, y2). w1(x1, y1). w2(x2, y2).
         ans(X0, X1, X2) :- r(X0, Y1, Y2), s(Y0, Y1, Y2), w1(X1, Y1), w2(X2, Y2).",
    );
    let out = bin()
        .args([
            "count",
            f2.to_str(),
            "--alg",
            "pipeline",
            "--max-width",
            "2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("width"));
}

#[test]
fn explain_prints_the_plan() {
    let f = sample_file(SAMPLE);
    let out = bin()
        .args(["count", f.to_str(), "--explain"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("plan: #-hypertree pipeline, width 1"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}
