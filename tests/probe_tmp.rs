use cqcount::core::sharp::sharp_hypertree_width;
use cqcount::query::parse_query;

#[test]
fn wide_atom_width() {
    // single atom with 33 variables, all free: #-htw is trivially 1
    let vars: Vec<String> = (0..33).map(|i| format!("X{i}")).collect();
    let src = format!("ans({}) :- r({}).", vars.join(", "), vars.join(", "));
    let q = parse_query(&src).unwrap();
    let w = std::panic::catch_unwind(|| sharp_hypertree_width(&q, 2));
    println!("width = {w:?}");
    assert_eq!(w.ok().flatten(), Some(1));
}
