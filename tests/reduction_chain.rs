//! Corollary 5.17, composed end to end: counting the answers of
//! `simple(Q̂)` using only a `count(Q̂, ·)` oracle — Claim 5.16's product
//! structure feeding Lemma 5.10's interpolation machinery.

use cqcount::prelude::*;
use cqcount::reductions::{count_fullcolor_via_oracle, simple_to_general, CountOracle};
use cqcount::workloads::random::{random_database, RandomDbConfig};

/// Runs the composed reduction for `qhat` (whose coloring must be a core)
/// on a random database for `simple(qhat)`, and checks it against direct
/// counting.
fn check_chain(qhat: &ConjunctiveQuery, seed: u64) {
    let qs = qhat.to_simple();
    let b = random_database(
        &qs,
        &RandomDbConfig {
            domain: 3,
            tuples_per_rel: 5,
        },
        seed,
    );

    // Claim 5.16: |Qs(B)| = |fullcolor(Q̂)(B̂)|.
    let (_fc, bhat) = simple_to_general(qhat, &qs, &b).expect("aligned by construction");

    // Lemma 5.10: |fullcolor(Q̂)(B̂)| via count(Q̂, ·) oracle only.
    let mut oracle = CountOracle::new(count_auto);
    let via_chain = count_fullcolor_via_oracle(qhat, &bhat, &mut oracle);

    let direct = count_brute_force(&qs, &b);
    assert_eq!(via_chain, direct, "composed reduction, seed {seed}");
    assert!(oracle.stats().calls > 0);
}

#[test]
fn triangle_with_repeated_symbol() {
    // Q̂ = ans(X) :- r(X,Y), r(Y,Z), r(Z,X): color(Q̂) is a core (the
    // triangle does not fold onto a path and X is pinned).
    let (q, _) = parse_program("ans(X) :- r(X, Y), r(Y, Z), r(Z, X).").unwrap();
    let q = q.unwrap();
    for seed in 0..4 {
        check_chain(&q, seed);
    }
}

#[test]
fn two_free_variables() {
    let (q, _) = parse_program("ans(X, Z) :- r(X, Y), r(Y, Z).").unwrap();
    let q = q.unwrap();
    for seed in 0..4 {
        check_chain(&q, seed);
    }
}

#[test]
fn symmetric_star_exercises_automorphism_division() {
    // ans(X1, X2) :- r(X1, Y), r(X2, Y): |I| = 2.
    let (q, _) = parse_program("ans(X1, X2) :- r(X1, Y), r(X2, Y).").unwrap();
    let q = q.unwrap();
    for seed in 0..4 {
        check_chain(&q, seed);
    }
}

#[test]
fn boolean_query_chain() {
    let (q, _) = parse_program("ans() :- r(X, Y), r(Y, X).").unwrap();
    let q = q.unwrap();
    for seed in 0..3 {
        check_chain(&q, seed);
    }
}

#[test]
fn oracle_instance_sizes_stay_polynomial() {
    // The reduction's oracle instances grow by at most the copy blow-up
    // factor (f+1)^arity — check the bookkeeping on a concrete case.
    let (q, _) = parse_program("ans(X) :- r(X, Y).").unwrap();
    let q = q.unwrap();
    let qs = q.to_simple();
    let b = random_database(
        &qs,
        &RandomDbConfig {
            domain: 4,
            tuples_per_rel: 8,
        },
        9,
    );
    let (_, bhat) = simple_to_general(&q, &qs, &b).expect("aligned by construction");
    let mut oracle = CountOracle::new(count_brute_force);
    let _ = count_fullcolor_via_oracle(&q, &bhat, &mut oracle);
    let f = q.free().len();
    assert_eq!(oracle.stats().calls, (f + 1) * (1 << f));
    // each call's database ≤ (f+1)^2 × |B̂| tuples for binary atoms
    let bound = (f + 1).pow(2) * bhat.total_tuples();
    assert!(oracle.stats().max_tuples <= bound);
}
