//! Integration tests of the text-format front door: parse a whole program,
//! analyze, decompose and count — the path a CLI user takes.

use cqcount::prelude::*;

const PROGRAM: &str = "
    % Example 1.1's schema with a slightly larger instance.
    mw(press, ada, 40).  mw(lathe, ada, 10).  mw(press, bo, 25).
    mw(mill, dee, 8).    mw(drill, cy, 12).
    wt(ada, etl).  wt(bo, etl).  wt(cy, ui).  wt(dee, etl). wt(dee, ui).
    wi(ada, s). wi(bo, j). wi(cy, j). wi(dee, s).
    pt(atlas, etl). pt(atlas, ui). pt(borealis, etl). pt(caldera, ui).
    st(etl, extract). st(etl, load). st(ui, wireframe). st(ui, usability).
    rr(extract, cluster). rr(load, cluster). rr(etl, cluster).
    rr(wireframe, figma). rr(usability, figma). rr(ui, figma).
    ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                    st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).
";

#[test]
fn parse_analyze_count() {
    let (q, db) = parse_program(PROGRAM).unwrap();
    let q = q.unwrap();
    assert_eq!(q.atoms().len(), 9);
    assert_eq!(db.relation("rr").unwrap().len(), 6);

    let report = WidthReport::analyze(&q, 3);
    assert_eq!(report.sharp_width, Some(2));

    let brute = count_brute_force(&q, &db);
    let (structural, sd) = count_via_sharp_decomposition(&q, &db, 3).unwrap();
    assert_eq!(structural, brute);
    assert_eq!(sd.width, 2);
    assert_eq!(count_auto(&q, &db), brute);
}

#[test]
fn display_roundtrip_preserves_count() {
    let (q, db) = parse_program(PROGRAM).unwrap();
    let q = q.unwrap();
    let q2 = parse_query(&q.to_string()).unwrap();
    assert_eq!(count_brute_force(&q, &db), count_brute_force(&q2, &db));
}

#[test]
fn database_only_and_query_only() {
    let db = parse_database("r(a, b). r(b, c).").unwrap();
    assert_eq!(db.relation("r").unwrap().len(), 2);
    let q = parse_query("ans(X) :- r(X, Y).").unwrap();
    assert_eq!(count_brute_force(&q, &db), 2u64.into());
}

#[test]
fn constants_in_queries_work_end_to_end() {
    let (q, db) = parse_program(
        "r(a, b). r(a, c). r(b, c).
         ans(Y) :- r(a, Y).",
    )
    .unwrap();
    let q = q.unwrap();
    assert_eq!(count_brute_force(&q, &db), 2u64.into());
    assert_eq!(count_auto(&q, &db), 2u64.into());
}

#[test]
fn repeated_variables_in_atoms() {
    let (q, db) = parse_program(
        "r(a, a). r(a, b). r(b, b). r(c, a).
         ans(X) :- r(X, X).",
    )
    .unwrap();
    let q = q.unwrap();
    assert_eq!(count_auto(&q, &db), 2u64.into());
}
