//! # cqcount — counting solutions to conjunctive queries
//!
//! A from-scratch Rust reproduction of *Counting Solutions to Conjunctive
//! Queries: Structural and Hybrid Tractability* (Chen, Greco, Mengel,
//! Scarcello; PODS 2014 / journal version 2023).
//!
//! This facade re-exports the whole workspace; see the member crates for
//! the details:
//!
//! * [`arith`] — exact big integers and rationals;
//! * [`hypergraph`] — acyclicity, components, frontiers;
//! * [`relational`] — the in-memory relational engine;
//! * [`query`] — conjunctive queries, homomorphisms, cores, colorings;
//! * [`decomp`] — tree projections and (generalized / weighted /
//!   fractional) hypertree decompositions;
//! * [`core`] — the counting algorithms and `#`-hypertree decompositions;
//! * [`workloads`] — the paper's instance families and random generators;
//! * [`reductions`] — the executable Section 5 reductions;
//! * [`server`] — the `cqcountd` daemon: TCP serving with plan/count
//!   caching and admission control.
//!
//! ## Quickstart
//!
//! ```
//! use cqcount::prelude::*;
//!
//! // Parse a database and a query (head variables are the output).
//! let (q, db) = cqcount::query::parse_program("
//!     works_on(alice, db_project). works_on(alice, ml_project).
//!     works_on(bob, db_project).
//!     uses(db_project, postgres). uses(ml_project, torch).
//!     ans(W) :- works_on(W, P), uses(P, T).
//! ").unwrap();
//! let q = q.unwrap();
//!
//! // How many distinct workers W have a project that uses some tool?
//! assert_eq!(count_auto(&q, &db), 2u64.into());
//!
//! // Structural analysis per the paper.
//! let report = WidthReport::analyze(&q, 3);
//! assert!(report.acyclic);
//! assert_eq!(report.sharp_width, Some(1));
//! ```

pub use cqcount_arith as arith;
pub use cqcount_core as core;
pub use cqcount_decomp as decomp;
pub use cqcount_hypergraph as hypergraph;
pub use cqcount_query as query;
pub use cqcount_reductions as reductions;
pub use cqcount_relational as relational;
pub use cqcount_server as server;
pub use cqcount_workloads as workloads;

/// Everything a downstream user typically needs.
pub mod prelude {
    pub use cqcount_arith::{Int, Natural, Rational};
    pub use cqcount_core::prelude::*;
    pub use cqcount_decomp::{ghw_exact, treewidth_exact, Hypertree};
    pub use cqcount_hypergraph::{frontier_hypergraph, is_acyclic, Hypergraph, NodeSet};
    pub use cqcount_query::{
        color, core_exact, parse_database, parse_program, parse_query, quantified_star_size,
        ConjunctiveQuery, Term, Var,
    };
    pub use cqcount_relational::{Bindings, Database, Relation, Value};
}
