//! `cqcount` — command-line front end.
//!
//! ```text
//! cqcount count     <program.cq> [--alg auto|brute|join|pipeline|hybrid|dm] [--max-width K]
//! cqcount analyze   <program.cq> [--max-width K]
//! cqcount enumerate <program.cq> [--limit N] [--max-width K]
//! cqcount help
//! ```
//!
//! A program file contains facts and one rule (see the README's text
//! format). Example:
//!
//! ```text
//! edge(a, b). edge(b, c). edge(a, c).
//! ans(X) :- edge(X, Y), edge(Y, Z).
//! ```

use cqcount::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cqcount count     <program.cq> [--alg auto|brute|join|pipeline|hybrid|dm] [--max-width K] [--explain]
  cqcount analyze   <program.cq> [--max-width K]
  cqcount enumerate <program.cq> [--limit N] [--max-width K]";

struct Opts {
    file: String,
    alg: String,
    max_width: usize,
    limit: Option<usize>,
    explain: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: String::new(),
        alg: "auto".into(),
        max_width: 3,
        limit: None,
        explain: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--alg" => {
                opts.alg = it.next().ok_or("--alg needs a value")?.clone();
            }
            "--max-width" => {
                opts.max_width = it
                    .next()
                    .ok_or("--max-width needs a value")?
                    .parse()
                    .map_err(|_| "--max-width must be a number")?;
            }
            "--explain" => {
                opts.explain = true;
            }
            "--limit" => {
                opts.limit = Some(
                    it.next()
                        .ok_or("--limit needs a value")?
                        .parse()
                        .map_err(|_| "--limit must be a number")?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            file => {
                if !opts.file.is_empty() {
                    return Err("multiple input files".into());
                }
                opts.file = file.to_owned();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("missing input file".into());
    }
    Ok(opts)
}

fn load(file: &str) -> Result<(ConjunctiveQuery, Database), String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let (q, db) = parse_program(&src).map_err(|e| e.to_string())?;
    let q = q.ok_or("program contains no rule")?;
    Ok((q, db))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "count" => {
            let opts = parse_opts(&args[1..])?;
            let (q, db) = load(&opts.file)?;
            if opts.explain && opts.alg == "auto" {
                let (n, plan) = cqcount::core::planner::count_explain(&q, &db);
                match plan {
                    cqcount::core::planner::Plan::SharpPipeline { width } => {
                        eprintln!("plan: #-hypertree pipeline, width {width} (Theorem 1.3)");
                    }
                    cqcount::core::planner::Plan::Hybrid {
                        width,
                        bound,
                        promoted,
                    } => {
                        eprintln!(
                            "plan: hybrid width {width}, degree bound {bound}, promoting {{{}}} (Theorem 6.6)",
                            promoted.join(", ")
                        );
                    }
                    cqcount::core::planner::Plan::BruteForce { reason } => {
                        eprintln!("plan: brute force ({reason})");
                    }
                }
                println!("{n}");
                return Ok(());
            }
            let n = match opts.alg.as_str() {
                "auto" => count_auto(&q, &db),
                "brute" => count_brute_force(&q, &db),
                "join" => count_via_full_join(&q, &db),
                "pipeline" => {
                    count_via_sharp_decomposition(&q, &db, opts.max_width)
                        .ok_or(format!(
                            "no #-hypertree decomposition of width ≤ {}",
                            opts.max_width
                        ))?
                        .0
                }
                "hybrid" => {
                    count_hybrid(&q, &db, opts.max_width, usize::MAX)
                        .ok_or("no hybrid decomposition found")?
                        .0
                }
                "dm" => count_durand_mengel(&q, &db, opts.max_width * 4)
                    .ok_or("no Durand–Mengel decomposition found")?,
                other => return Err(format!("unknown algorithm {other}")),
            };
            println!("{n}");
            Ok(())
        }
        "analyze" => {
            let opts = parse_opts(&args[1..])?;
            let (q, db) = load(&opts.file)?;
            let report = WidthReport::analyze(&q, opts.max_width);
            println!("query:                {q}");
            println!(
                "atoms / vars / free:  {} / {} / {}",
                report.atoms, report.vars, report.free
            );
            println!("database tuples:      {}", db.total_tuples());
            println!("α-acyclic:            {}", report.acyclic);
            let fmt =
                |w: Option<usize>| w.map_or(format!("> {}", opts.max_width), |v| v.to_string());
            println!("ghw:                  {}", fmt(report.ghw));
            println!("#-hypertree width:    {}", fmt(report.sharp_width));
            println!("quantified star size: {}", report.star_size);
            if let Some(hd) = cqcount::core::hybrid::hybrid_decomposition_guided(
                &q,
                &db,
                opts.max_width,
                usize::MAX,
            ) {
                let promoted: Vec<&str> = hd
                    .sbar
                    .iter()
                    .filter(|v| !q.free().contains(v))
                    .map(|v| q.var_name(*v))
                    .collect();
                println!(
                    "hybrid:               width {} with degree bound {}{}",
                    hd.sharp.width,
                    hd.bound,
                    if promoted.is_empty() {
                        String::new()
                    } else {
                        format!(" (promoting {})", promoted.join(", "))
                    }
                );
            }
            Ok(())
        }
        "enumerate" => {
            let opts = parse_opts(&args[1..])?;
            let (q, db) = load(&opts.file)?;
            let free: Vec<Var> = q.free().into_iter().collect();
            let width = opts.max_width.max(q.atoms().len());
            let mut emitted = 0usize;
            let ok = for_each_answer(&q, &db, width, |answer| {
                if opts.limit.is_some_and(|l| emitted >= l) {
                    return false; // honors --limit 0 too
                }
                let row: Vec<String> = free
                    .iter()
                    .map(|v| db.interner().name(answer[v]).to_owned())
                    .collect();
                println!("{}", row.join("\t"));
                emitted += 1;
                opts.limit.is_none_or(|l| emitted < l)
            });
            if !ok {
                return Err("no decomposition found for enumeration".into());
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}
