//! E3 timing study: Durand–Mengel (width grows with the star size) vs the
//! #-hypertree pipeline (width 1 after coring) on the Example A.2 chains.

use cqcount_bench::BenchGroup;
use cqcount_core::prelude::*;
use cqcount_relational::Database;
use cqcount_workloads::graphs::random_graph;
use cqcount_workloads::paper::chain_query;

fn chain_db() -> Database {
    let g = random_graph(14, 0.35, 5);
    let mut db = Database::new();
    for &(u, v) in &g.edges {
        let uu = db.value(&format!("n{u}"));
        let vv = db.value(&format!("n{v}"));
        db.add_tuple("r", vec![uu, vv]);
        db.add_tuple("r", vec![vv, uu]);
    }
    db
}

fn main() {
    let db = chain_db();
    let mut group = BenchGroup::new("chain_dm_vs_sharp");
    for n in 2..=4usize {
        let q = chain_query(n);
        group.bench("durand_mengel", n, || {
            count_durand_mengel(&q, &db, 8).unwrap()
        });
        group.bench("sharp_pipeline", n, || {
            count_via_sharp_decomposition(&q, &db, 2).unwrap().0
        });
    }
    group.finish();
}
