//! Microbenchmarks for the relational join/semijoin kernels: the
//! allocation-free sort-merge kernels (sequential and on the worker pool)
//! against the straw-man hash join they replaced, plus the leapfrog
//! worst-case-optimal kernel against a binary join plan on the cyclic
//! workload it exists for (triangles: the binary plan materializes an
//! O(m²/n) intermediate, leapfrog never leaves the AGM bound). Emits a
//! machine-readable `BENCH_join_kernels.json` at the workspace root
//! alongside the table.

use cqcount_arith::prng::Rng;
use cqcount_bench::{bench_ns, fmt_duration, print_table};
use cqcount_relational::algebra::join_hash_baseline;
use cqcount_relational::{wcoj_join, Bindings, Value, WcojInput};
use std::time::Duration;

struct Case {
    kernel: &'static str,
    rows: usize,
    threads: usize,
    ns_per_op: f64,
}

/// Two relations joining on their (shared, canonical-prefix) first column,
/// domain ≈ rows so each key matches O(1) partners.
fn instance(rows: usize, seed: u64) -> (Bindings, Bindings) {
    let mut rng = Rng::seed_from_u64(seed);
    let domain = rows as u32;
    let mk = |rng: &mut Rng, cols: Vec<u32>| {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|_| {
                (0..cols.len())
                    .map(|_| Value(rng.range_u32(0, domain)))
                    .collect()
            })
            .collect();
        Bindings::from_rows(cols, data)
    };
    (mk(&mut rng, vec![0, 1]), mk(&mut rng, vec![0, 2]))
}

/// A triangle instance: three edge lists over columns {0,1}, {1,2}, {0,2}
/// with `rows` random edges each. The domain is `rows / 4`, which keeps
/// the pairwise joins dense (≈ 4·rows intermediate tuples) while the
/// triangle output stays tiny — the regime where a binary plan does
/// asymptotically more work than the multiway intersection.
fn triangle_instance(rows: usize, seed: u64) -> (Bindings, Bindings, Bindings) {
    let mut rng = Rng::seed_from_u64(seed);
    let domain = (rows / 4).max(4) as u32;
    let mut mk = |cols: Vec<u32>| {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|_| {
                (0..cols.len())
                    .map(|_| Value(rng.range_u32(0, domain)))
                    .collect()
            })
            .collect();
        Bindings::from_rows(cols, data)
    };
    (mk(vec![0, 1]), mk(vec![1, 2]), mk(vec![0, 2]))
}

fn main() {
    let hw_threads = cqcount_exec::default_thread_count();
    // Always record a genuine multi-lane configuration, even on single-core
    // hosts (there the N-thread rows measure pool overhead, not speedup).
    let par_threads = if hw_threads > 1 { hw_threads } else { 8 };

    let mut cases: Vec<Case> = Vec::new();
    for rows in [1_000usize, 10_000, 100_000] {
        let (left, right) = instance(rows, 0xBEEF + rows as u64);

        cases.push(Case {
            kernel: "join_hash_baseline",
            rows,
            threads: 1,
            ns_per_op: bench_ns(|| {
                std::hint::black_box(join_hash_baseline(&left, &right));
            }),
        });
        for threads in [1, par_threads] {
            cases.push(Case {
                kernel: "join",
                rows,
                threads,
                ns_per_op: cqcount_exec::with_threads(threads, || {
                    bench_ns(|| {
                        std::hint::black_box(left.join(&right));
                    })
                }),
            });
            cases.push(Case {
                kernel: "semijoin",
                rows,
                threads,
                ns_per_op: cqcount_exec::with_threads(threads, || {
                    bench_ns(|| {
                        std::hint::black_box(left.semijoin(&right));
                    })
                }),
            });
        }
    }

    for rows in [1_000usize, 10_000, 100_000] {
        let (r, s, t) = triangle_instance(rows, 0xCAFE + rows as u64);
        cases.push(Case {
            kernel: "triangle_sortmerge",
            rows,
            threads: 1,
            ns_per_op: cqcount_exec::with_threads(1, || {
                bench_ns(|| {
                    std::hint::black_box(r.join(&s).join(&t));
                })
            }),
        });
        cases.push(Case {
            kernel: "triangle_wcoj",
            rows,
            threads: 1,
            ns_per_op: cqcount_exec::with_threads(1, || {
                bench_ns(|| {
                    let inputs = [
                        WcojInput::from_bindings(&r),
                        WcojInput::from_bindings(&s),
                        WcojInput::from_bindings(&t),
                    ];
                    std::hint::black_box(wcoj_join(&inputs));
                })
            }),
        });
    }

    println!("\n### bench: join_kernels (hardware threads: {hw_threads})\n");
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.kernel.to_string(),
                c.rows.to_string(),
                c.threads.to_string(),
                fmt_duration(Duration::from_nanos(c.ns_per_op as u64)),
            ]
        })
        .collect();
    print_table(&["kernel", "rows", "threads", "time/op"], &rows);

    for rows in [1_000usize, 10_000, 100_000] {
        let ns_of = |kernel: &str, threads: usize| {
            cases
                .iter()
                .find(|c| c.kernel == kernel && c.rows == rows && c.threads == threads)
                .map(|c| c.ns_per_op)
                .unwrap_or(f64::NAN)
        };
        println!(
            "rows {rows}: sort-merge vs hash baseline {:.2}x (1 thread), {par_threads}-thread join {:.2}x vs 1-thread, wcoj triangle {:.2}x vs binary plan",
            ns_of("join_hash_baseline", 1) / ns_of("join", 1),
            ns_of("join", 1) / ns_of("join", par_threads),
            ns_of("triangle_sortmerge", 1) / ns_of("triangle_wcoj", 1),
        );
    }

    // Hand-rolled JSON (no serde in the dependency graph).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"join_kernels\",\n");
    json.push_str(&format!("  \"hardware_threads\": {hw_threads},\n"));
    json.push_str("  \"unit\": \"ns_per_op\",\n");
    json.push_str("  \"results\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"rows\": {}, \"threads\": {}, \"ns_per_op\": {:.0}}}{}\n",
            c.kernel,
            c.rows,
            c.threads,
            c.ns_per_op,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join_kernels.json");
    std::fs::write(out, &json).expect("write BENCH_join_kernels.json");
    println!("\nwrote {out}");
}
