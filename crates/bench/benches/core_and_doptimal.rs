//! E9 timing study: exact core computation vs the Lemma 4.3
//! consistency-based computation on the chain family's colorings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqcount_query::{color, core_exact, core_via_consistency};
use cqcount_workloads::paper::chain_query;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_computation");
    group.sample_size(10);
    for n in 2..=4usize {
        let q = color(&chain_query(n));
        group.bench_with_input(BenchmarkId::new("exact", n), &q, |b, q| {
            b.iter(|| core_exact(q))
        });
        group.bench_with_input(BenchmarkId::new("lemma_4_3", n), &q, |b, q| {
            b.iter(|| core_via_consistency(q, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
