//! E9 timing study: exact core computation vs the Lemma 4.3
//! consistency-based computation on the chain family's colorings.

use cqcount_bench::BenchGroup;
use cqcount_query::{color, core_exact, core_via_consistency};
use cqcount_workloads::paper::chain_query;

fn main() {
    let mut group = BenchGroup::new("core_computation");
    for n in 2..=4usize {
        let q = color(&chain_query(n));
        group.bench("exact", n, || core_exact(&q));
        group.bench("lemma_4_3", n, || core_via_consistency(&q, 2));
    }
    group.finish();
}
