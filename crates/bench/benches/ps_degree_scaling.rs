//! E5 timing study: the Pichler–Skritek #-relation algorithm under
//! different degree bounds (Theorem 6.2) — the width-1 HD2 with
//! bound(D, HD2) = 2^h versus the merged HD2' with bound 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqcount_core::prelude::*;
use cqcount_decomp::Hypertree;
use cqcount_hypergraph::NodeSet;
use cqcount_workloads::paper::{star_database, star_query};

fn star_decompositions(h: usize) -> (Hypertree, Hypertree) {
    let q = star_query(h);
    let atom_sets: Vec<NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    let mut chi = vec![atom_sets[0].clone(), atom_sets[1].clone()];
    let mut lambda = vec![vec![0usize], vec![1]];
    let mut parent = vec![None, Some(0)];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    let hd2 = Hypertree::from_parts(chi, lambda, parent);
    let mut chi = vec![atom_sets[0].union(&atom_sets[1])];
    let mut lambda = vec![vec![0usize, 1]];
    let mut parent = vec![None];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    (hd2, Hypertree::from_parts(chi, lambda, parent))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_degree_scaling");
    group.sample_size(10);
    for h in [2usize, 4, 6, 8] {
        let q = star_query(h);
        let db = star_database(h);
        let (hd2, hd2p) = star_decompositions(h);
        group.bench_with_input(
            BenchmarkId::new("bound_m", h),
            &(&q, &db, &hd2),
            |b, (q, db, ht)| b.iter(|| count_pichler_skritek(q, db, ht)),
        );
        group.bench_with_input(
            BenchmarkId::new("bound_1", h),
            &(&q, &db, &hd2p),
            |b, (q, db, ht)| b.iter(|| count_pichler_skritek(q, db, ht)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
