//! E5 timing study: the Pichler–Skritek #-relation algorithm under
//! different degree bounds (Theorem 6.2) — the width-1 HD2 with
//! bound(D, HD2) = 2^h versus the merged HD2' with bound 1.

use cqcount_bench::BenchGroup;
use cqcount_core::prelude::*;
use cqcount_decomp::Hypertree;
use cqcount_hypergraph::NodeSet;
use cqcount_workloads::paper::{star_database, star_query};

fn star_decompositions(h: usize) -> (Hypertree, Hypertree) {
    let q = star_query(h);
    let atom_sets: Vec<NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    let mut chi = vec![atom_sets[0].clone(), atom_sets[1].clone()];
    let mut lambda = vec![vec![0usize], vec![1]];
    let mut parent = vec![None, Some(0)];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    let hd2 = Hypertree::from_parts(chi, lambda, parent);
    let mut chi = vec![atom_sets[0].union(&atom_sets[1])];
    let mut lambda = vec![vec![0usize, 1]];
    let mut parent = vec![None];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    (hd2, Hypertree::from_parts(chi, lambda, parent))
}

fn main() {
    let mut group = BenchGroup::new("ps_degree_scaling");
    for h in [2usize, 4, 6, 8] {
        let q = star_query(h);
        let db = star_database(h);
        let (hd2, hd2p) = star_decompositions(h);
        group.bench("bound_m", h, || count_pichler_skritek(&q, &db, &hd2));
        group.bench("bound_1", h, || count_pichler_skritek(&q, &db, &hd2p));
    }
    group.finish();
}
