//! Incremental-maintenance benchmark: single-tuple mutation + re-count
//! against the only pre-v6 alternative, RELOAD + recount, across database
//! sizes. Emits `BENCH_incremental_counts.json` at the workspace root.
//!
//! The workload is the canonical maintained shape: a full acyclic 3-atom
//! chain over relations sized to the target tuple count. Per size:
//!
//! * **incremental** — the count is materialized once (cold), then each
//!   cycle inserts one tuple (or deletes the one just inserted) and
//!   re-counts. The mutation patches the join-tree DP state along the
//!   touched bag path and republishes the count, so the re-count is a
//!   cache hit: the cycle costs O(path × bag-width) server work plus two
//!   round-trips, independent of the database size.
//! * **reload** — each cycle re-sends the full fact file (with the same
//!   one-tuple edit) and re-counts. The epoch bump invalidates the cached
//!   count; the recount re-runs the counting algorithm over all tuples.
//!   This is what "one tuple changed" cost before protocol v6.
//!
//! The headline acceptance number is the speedup at ≥100k tuples
//! (required ≥10x; the CI `mutation-smoke` job gates a rerun at ≥75% of
//! the committed value).

use cqcount_bench::print_table;
use cqcount_query::parse_database;
use cqcount_server::{serve, CacheTier, Client, ServerConfig};
use std::time::{Duration, Instant};

/// Fact text for a 3-relation chain instance with ~`n` tuples total:
/// r(x, y) edges fan into a y-domain of `n/20` values, s(y, z) matches
/// each y to a z, t(z) holds every z. The join is linear-sized and every
/// relation participates, so a from-scratch count must touch all of it.
fn chain_facts(n: usize) -> String {
    let nr = n / 2;
    let ns = n / 4;
    let nt = n - nr - ns;
    let ydom = (n / 20).max(4);
    let mut facts = String::with_capacity(n * 16);
    for i in 0..nr {
        facts.push_str(&format!("r(x{i}, y{}).\n", i % ydom));
    }
    for j in 0..ns {
        facts.push_str(&format!("s(y{}, z{j}).\n", j % ydom));
    }
    for k in 0..nt {
        facts.push_str(&format!("t(z{k}).\n"));
    }
    facts
}

const QUERY: &str = "ans(A, B, C) :- r(A, B), s(B, C), t(C).";

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct SizeRow {
    tuples: usize,
    incremental_ns: f64,
    reload_ns: f64,
    speedup: f64,
}

fn bench_size(n: usize) -> SizeRow {
    let facts = chain_facts(n);
    let db = parse_database(&facts).expect("facts parse");
    let handle = serve(
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Materialize: the first count is cold and pins the DP state.
    let base = client.count("main", QUERY, 0).expect("cold count");
    assert_eq!(base.cached, CacheTier::Cold);

    // Incremental cycles: insert a fresh tuple, re-count, delete it,
    // re-count. Every op is effective and every re-count must be served
    // from the republished maintained count.
    const INCR_CYCLES: usize = 50;
    let mut incr = Vec::with_capacity(INCR_CYCLES * 2);
    for _ in 0..INCR_CYCLES {
        for insert in [true, false] {
            let t0 = Instant::now();
            let receipt = if insert {
                client.insert("main", "r", &["xq", "y0"]).expect("insert")
            } else {
                client.delete("main", "r", &["xq", "y0"]).expect("delete")
            };
            let reply = client.count("main", QUERY, 0).expect("recount");
            incr.push(t0.elapsed().as_nanos() as f64);
            assert_eq!(receipt.changed, 1, "steady-state ops must be effective");
            assert_eq!(
                reply.cached,
                CacheTier::CountWarm,
                "maintained re-count must be a cache hit"
            );
            if !insert {
                assert_eq!(reply.value, base.value, "delete must restore the count");
            }
        }
    }
    let incremental_ns = median(incr);

    // Reload cycles: the same one-tuple edit shipped the pre-v6 way. The
    // epoch bump kills the cached count; the plan survives, so the
    // recount isolates the data work, not planning.
    const RELOAD_CYCLES: usize = 5;
    let edited = format!("{facts}r(xq, y0).\n");
    let mut reload = Vec::with_capacity(RELOAD_CYCLES * 2);
    for _ in 0..RELOAD_CYCLES {
        for text in [&edited, &facts] {
            let t0 = Instant::now();
            client.reload("main", text).expect("reload");
            let reply = client.count("main", QUERY, 0).expect("recount");
            reload.push(t0.elapsed().as_nanos() as f64);
            assert_ne!(reply.cached, CacheTier::CountWarm, "reload must recount");
            if std::ptr::eq(text, &facts) {
                assert_eq!(reply.value, base.value, "round-trip restores the count");
            }
        }
    }
    let reload_ns = median(reload);

    handle.shutdown();
    SizeRow {
        tuples: n,
        incremental_ns,
        reload_ns,
        speedup: reload_ns / incremental_ns,
    }
}

fn main() {
    let sizes = [10_000usize, 50_000, 100_000, 200_000];
    let rows: Vec<SizeRow> = sizes.iter().map(|&n| bench_size(n)).collect();

    // The acceptance headline: speedup at the largest ≥100k-tuple size.
    let headline = rows
        .iter()
        .filter(|r| r.tuples >= 100_000)
        .map(|r| r.speedup)
        .fold(0.0, f64::max);

    println!("\n### bench: server_mutations\n");
    let fmt_ns = |ns: f64| format!("{:?}", Duration::from_nanos(ns as u64));
    print_table(
        &["tuples", "incremental", "reload+recount", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tuples.to_string(),
                    fmt_ns(r.incremental_ns),
                    fmt_ns(r.reload_ns),
                    format!("{:.1}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("headline: {headline:.1}x at >=100k tuples (acceptance bar: 10x)");

    // Hand-rolled JSON (no serde in the dependency graph).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"server_mutations\",\n");
    json.push_str("  \"unit\": \"ns_per_mutation_plus_recount\",\n");
    json.push_str(&format!("  \"headline_speedup\": {headline:.1},\n"));
    json.push_str("  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tuples\": {}, \"incremental_ns\": {:.0}, \"reload_ns\": {:.0}, \
             \"speedup\": {:.1}}}{}\n",
            r.tuples,
            r.incremental_ns,
            r.reload_ns,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_incremental_counts.json"
    );
    std::fs::write(out, &json).expect("write BENCH_incremental_counts.json");
    println!("\nwrote {out}");
}
