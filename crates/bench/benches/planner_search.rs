//! Cold width-search wall-clock: the PR 5 planner (lazy candidate
//! streams + parallel block solving + cross-width reuse, via
//! `WidthSearch`) against the pre-PR-5 engine (eager
//! materialize-and-sort candidates, sequential blocks, from-scratch per
//! width — but with the core computation hoisted out of the per-width
//! loop, so the speedup below is the engine's, not the hoist's).
//!
//! Queries: the paper's Q0, the Q1 cycle, the C.1 star (h = 2), and
//! seeded random cyclic queries with 8..16 atoms
//! (`cqcount_workloads::random::random_cyclic_query`). Each sweep is
//! measured at 1 thread and at the pool default; both engines see the
//! same thread count. The sequential reference must report the same
//! width as the parallel run on every query (asserted here).
//!
//! Emits `BENCH_planner_search.json`; CI's `planner-bench-guard`
//! recomputes the 1-thread speedups fresh and fails if they regressed
//! more than 25% against the committed figures (ratio-of-ratios, so the
//! guard is machine-independent).

use cqcount_bench::{bench_ns, print_table};
use cqcount_core::width_search::WidthSearch;
use cqcount_decomp::ghw_at_most_eager;
use cqcount_exec::with_threads;
use cqcount_hypergraph::{frontier_hypergraph, NodeSet};
use cqcount_query::color::{color, uncolor};
use cqcount_query::core_of::core_exact;
use cqcount_query::ConjunctiveQuery;
use cqcount_workloads::paper::{q0_query, q1_cycle_query, star_query};
use cqcount_workloads::random::random_cyclic_query;

/// The pre-PR-5 cold plan with the core hoist applied: width-independent
/// setup once, then an eager-engine search from scratch per width.
fn eager_sweep(q: &ConjunctiveQuery, cap: usize) -> Option<usize> {
    let colored_core = core_exact(&color(q));
    let qprime = uncolor(&colored_core);
    let free = q.free_nodes();
    let hq = qprime.hypergraph();
    let cover = hq.merge(&frontier_hypergraph(&hq, &free));
    let resources: Vec<NodeSet> = qprime
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    (1..=cap).find(|&k| ghw_at_most_eager(&cover, &resources, k).is_some())
}

/// The PR 5 cold plan: one incremental `WidthSearch` drives the sweep.
fn lazy_sweep(q: &ConjunctiveQuery, cap: usize) -> Option<usize> {
    WidthSearch::new(q).find_up_to(cap).map(|(k, _)| k)
}

struct Case {
    name: String,
    atoms: usize,
    width: usize,
    eager_1t_ns: f64,
    lazy_1t_ns: f64,
    eager_nt_ns: f64,
    lazy_nt_ns: f64,
}

impl Case {
    fn speedup_1t(&self) -> f64 {
        self.eager_1t_ns / self.lazy_1t_ns
    }
    fn speedup_nt(&self) -> f64 {
        self.eager_nt_ns / self.lazy_nt_ns
    }
}

fn main() {
    let threads = cqcount_exec::current_threads();
    let mut queries: Vec<(String, ConjunctiveQuery, usize)> = vec![
        ("q0".into(), q0_query(), 3),
        ("q1-cycle".into(), q1_cycle_query(), 3),
        ("star-c1".into(), star_query(2), 4),
    ];
    for atoms in [8usize, 10, 12, 14, 16] {
        queries.push((
            format!("random-cyclic-{atoms}"),
            random_cyclic_query(atoms, 0xC0DE + atoms as u64),
            4,
        ));
    }

    let mut cases = Vec::new();
    for (name, q, cap) in &queries {
        // Determinism gate: the 1-thread reference and the parallel sweep
        // must land on the same width.
        let w_seq = with_threads(1, || lazy_sweep(q, *cap));
        let w_par = with_threads(threads, || lazy_sweep(q, *cap));
        let w_eager = eager_sweep(q, *cap);
        assert_eq!(w_seq, w_par, "{name}: parallel width diverged");
        assert_eq!(w_seq, w_eager, "{name}: engine width diverged");
        let width = w_seq.unwrap_or_else(|| panic!("{name}: no width ≤ {cap}"));

        let eager_1t_ns = with_threads(1, || {
            bench_ns(|| {
                std::hint::black_box(eager_sweep(q, *cap));
            })
        });
        let lazy_1t_ns = with_threads(1, || {
            bench_ns(|| {
                std::hint::black_box(lazy_sweep(q, *cap));
            })
        });
        let eager_nt_ns = with_threads(threads, || {
            bench_ns(|| {
                std::hint::black_box(eager_sweep(q, *cap));
            })
        });
        let lazy_nt_ns = with_threads(threads, || {
            bench_ns(|| {
                std::hint::black_box(lazy_sweep(q, *cap));
            })
        });
        cases.push(Case {
            name: name.clone(),
            atoms: q.atoms().len(),
            width,
            eager_1t_ns,
            lazy_1t_ns,
            eager_nt_ns,
            lazy_nt_ns,
        });
    }

    println!("\n### bench: planner_search (cold width sweep, N = {threads} threads)\n");
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.atoms.to_string(),
                c.width.to_string(),
                format!("{:.0}", c.eager_1t_ns / 1e3),
                format!("{:.0}", c.lazy_1t_ns / 1e3),
                format!("{:.1}x", c.speedup_1t()),
                format!("{:.0}", c.eager_nt_ns / 1e3),
                format!("{:.0}", c.lazy_nt_ns / 1e3),
                format!("{:.1}x", c.speedup_nt()),
            ]
        })
        .collect();
    print_table(
        &[
            "query",
            "atoms",
            "width",
            "eager 1t (µs)",
            "lazy 1t (µs)",
            "speedup 1t",
            "eager Nt (µs)",
            "lazy Nt (µs)",
            "speedup Nt",
        ],
        &rows,
    );

    // The headline figure the acceptance criterion reads: the smallest
    // same-thread-count speedup across the n ≥ 12 random workload.
    let headline = cases
        .iter()
        .filter(|c| c.name.starts_with("random-cyclic") && c.atoms >= 12)
        .map(|c| c.speedup_1t().max(c.speedup_nt()))
        .fold(f64::INFINITY, f64::min);
    println!("\nheadline: min speedup on random n >= 12 workload {headline:.1}x (target >= 5x)");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"planner_search\",\n");
    json.push_str(
        "  \"baseline\": \"eager materialize-and-sort engine, from-scratch per width, core hoisted\",\n",
    );
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"headline_min_speedup_n12\": {headline:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"atoms\": {}, \"width\": {}, \"eager_1t_ns\": {:.0}, \"lazy_1t_ns\": {:.0}, \"speedup_1t\": {:.2}, \"eager_nt_ns\": {:.0}, \"lazy_nt_ns\": {:.0}, \"speedup_nt\": {:.2}}}{}\n",
            c.name,
            c.atoms,
            c.width,
            c.eager_1t_ns,
            c.lazy_1t_ns,
            c.speedup_1t(),
            c.eager_nt_ns,
            c.lazy_nt_ns,
            c.speedup_nt(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_planner_search.json"
    );
    std::fs::write(out, &json).expect("write BENCH_planner_search.json");
    println!("wrote {out}");
}
