//! Cold-start benchmark: how fast can a daemon get a large database back
//! into serving shape? Compares the two recovery substrates at 1M tuples:
//!
//! * **parse** — the facts-text path (`parse_database`), what `RELOAD`
//!   does and what recovery cost before the store format: tokenize,
//!   intern, dedup, index — O(data) work.
//! * **mmap** — opening a store image (`open_store`): validate four CRCs
//!   and adopt the pages in place — O(mmap) + checksum streaming, no
//!   per-tuple work, no allocation proportional to the data.
//!
//! Emits `BENCH_cold_start.json` with the measured ratio; CI's
//! `cold-start-guard` gates on `ratio >= 10`.

use cqcount_bench::{fmt_duration, print_table, timed};
use cqcount_query::parse_database;
use cqcount_relational::store::{encode_store, open_store};
use cqcount_relational::Database;
use std::time::Duration;

const TUPLES: usize = 1_000_000;
const DOMAIN: u64 = 65_536;
const ARITY: usize = 2;
/// Median-of-N runs (each run re-parses / re-opens from scratch).
const RUNS: usize = 5;

/// A deterministic 1M-tuple edge database over a 65k constant domain —
/// big enough that parse cost is dominated by real interning/index work,
/// small enough to build quickly in CI.
fn build_db() -> Database {
    let mut db = Database::default();
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        // xorshift64*, deterministic across runs and hosts
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..TUPLES {
        let a = format!("c{}", next() % DOMAIN);
        let b = format!("c{}", next() % DOMAIN);
        db.add_fact("edge", &[&a, &b]);
    }
    db
}

fn facts_text(db: &Database) -> String {
    let mut out = String::with_capacity(TUPLES * 16);
    let interner = db.interner();
    for (name, rel) in db.relations() {
        for row in rel.iter() {
            out.push_str(name);
            out.push('(');
            for (i, &v) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(interner.name(v));
            }
            out.push_str(").\n");
        }
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let (db, build) = timed(build_db);
    let tuples = db.total_tuples();
    eprintln!("built {tuples} tuples in {}", fmt_duration(build));

    let text = facts_text(&db);
    let image = encode_store(&db, 1, 0);
    let dir = std::env::temp_dir().join(format!("cq_cold_start_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("snap.cqs");
    std::fs::write(&snap, &image).expect("write store image");

    let expected_fp = db.fingerprint();

    let mut parse_ns = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (parsed, t) = timed(|| parse_database(&text).expect("facts parse"));
        assert_eq!(parsed.fingerprint(), expected_fp, "parse path diverged");
        parse_ns.push(t.as_nanos() as f64);
    }

    let mut mmap_ns = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let (loaded, t) = timed(|| open_store(&snap).expect("store open"));
        assert_eq!(loaded.db.fingerprint(), expected_fp, "mmap path diverged");
        mmap_ns.push(t.as_nanos() as f64);
    }

    let parse = median(parse_ns);
    let mmap = median(mmap_ns);
    let ratio = parse / mmap;

    println!("\n### bench: cold_start ({tuples} tuples, arity {ARITY}, domain {DOMAIN})\n");
    print_table(
        &["path", "time", "notes"],
        &[
            vec![
                "parse".into(),
                fmt_duration(Duration::from_nanos(parse as u64)),
                "facts text -> Database (RELOAD / pre-store recovery)".into(),
            ],
            vec![
                "mmap".into(),
                fmt_duration(Duration::from_nanos(mmap as u64)),
                "store image -> Database (snapshot recovery)".into(),
            ],
        ],
    );
    println!("\ncold-start speedup: {ratio:.1}x (store image is {} bytes; fingerprint verified on both paths)", image.len());

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"cold_start\",\n");
    json.push_str(&format!("  \"tuples\": {tuples},\n"));
    json.push_str(&format!("  \"domain\": {DOMAIN},\n"));
    json.push_str(&format!("  \"image_bytes\": {},\n", image.len()));
    json.push_str("  \"unit\": \"ns\",\n");
    json.push_str(&format!("  \"parse_ns\": {parse:.0},\n"));
    json.push_str(&format!("  \"mmap_ns\": {mmap:.0},\n"));
    json.push_str(&format!("  \"ratio\": {ratio:.2}\n"));
    json.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cold_start.json");
    std::fs::write(out, &json).expect("write BENCH_cold_start.json");
    println!("wrote {out}");

    std::fs::remove_dir_all(&dir).ok();
}
