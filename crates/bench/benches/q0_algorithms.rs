//! E1 timing study: every counting algorithm on the Q0 intro instance
//! (Figures 1-4/7; Example 1.1).

use cqcount_bench::BenchGroup;
use cqcount_core::prelude::*;
use cqcount_workloads::intro::{intro_instance, IntroScale};

fn main() {
    let mut group = BenchGroup::new("q0_algorithms");
    for factor in [1usize, 2, 4] {
        let scale = IntroScale {
            workers: 25 * factor,
            machines: 10 * factor,
            projects: 6 * factor,
            tasks: 15 * factor,
            subtasks_per_task: 4,
            resources: 8 * factor,
        };
        let (q, db) = intro_instance(&scale, 2026);
        let tuples = db.total_tuples();
        // One decomposition for the pipeline benchmark (the paper's
        // setting: the query class is fixed, data varies).
        let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
        group.bench("sharp_pipeline", tuples, || {
            count_with_decomposition(&sd.qprime, &db, &sd.hypertree)
        });
        group.bench("brute_force", tuples, || count_brute_force(&q, &db));
        group.bench("full_join", tuples, || count_via_full_join(&q, &db));
    }
    group.finish();
}
