//! E1 timing study: every counting algorithm on the Q0 intro instance
//! (Figures 1-4/7; Example 1.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqcount_core::prelude::*;
use cqcount_workloads::intro::{intro_instance, IntroScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q0_algorithms");
    group.sample_size(10);
    for factor in [1usize, 2, 4] {
        let scale = IntroScale {
            workers: 25 * factor,
            machines: 10 * factor,
            projects: 6 * factor,
            tasks: 15 * factor,
            subtasks_per_task: 4,
            resources: 8 * factor,
        };
        let (q, db) = intro_instance(&scale, 2026);
        let tuples = db.total_tuples();
        // One decomposition for the pipeline benchmark (the paper's
        // setting: the query class is fixed, data varies).
        let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
        group.bench_with_input(
            BenchmarkId::new("sharp_pipeline", tuples),
            &(&sd, &db),
            |b, (sd, db)| b.iter(|| count_with_decomposition(&sd.qprime, db, &sd.hypertree)),
        );
        group.bench_with_input(
            BenchmarkId::new("brute_force", tuples),
            &(&q, &db),
            |b, (q, db)| b.iter(|| count_brute_force(q, db)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_join", tuples),
            &(&q, &db),
            |b, (q, db)| b.iter(|| count_via_full_join(q, db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
