//! Durability-cost benchmark: mutation throughput with the write-ahead
//! log at each fsync policy against the in-memory baseline. Emits
//! `BENCH_wal_overhead.json` at the workspace root.
//!
//! The workload is a stream of single-tuple `INSERT`s, every one
//! effective (distinct tuples), driven synchronously by one client —
//! the worst case for durability, since each batch pays its WAL append
//! (and, per policy, its fsync) before the acknowledgement:
//!
//! * **mem** — no `--data-dir`: the pre-v7 in-memory server, baseline.
//! * **off** — append + flush to the OS per batch, never fsync.
//! * **batch** — append per batch, fsync once per 32 batches.
//! * **always** — append + fsync per batch (group commit disabled).
//!
//! The acceptance headline is `batch_keep_ratio` — batch throughput as
//! a fraction of the in-memory baseline. The CI `crash-smoke` job gates
//! a rerun at ≥ 0.5 (durability must cost no more than half the
//! mutation throughput at the default policy).

use cqcount_bench::print_table;
use cqcount_query::parse_database;
use cqcount_server::{serve, Client, DurabilityPolicy, ServerConfig};
use std::path::PathBuf;
use std::time::Instant;

const OPS: usize = 2_000;
const ROUNDS: usize = 3;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Throughput (ops/s) of `OPS` effective inserts, median of `ROUNDS`
/// runs, each against a fresh server (and fresh data dir when durable).
fn bench_mode(tag: &str, policy: Option<DurabilityPolicy>) -> f64 {
    let mut runs = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let dir =
            std::env::temp_dir().join(format!("cqwalbench_{tag}_{round}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = match policy {
            Some(durability) => ServerConfig {
                data_dir: Some(PathBuf::from(&dir)),
                durability,
                // Keep the stream snapshot-free so the numbers isolate
                // the per-batch WAL cost, not amortized snapshot writes.
                snapshot_every: 0,
                ..ServerConfig::default()
            },
            None => ServerConfig::default(),
        };
        let db = parse_database("r(v0, v1).").expect("facts parse");
        let handle = serve(config, vec![("main".into(), db)]).expect("bind loopback");
        let mut client = Client::connect(handle.local_addr()).expect("connect");

        let t0 = Instant::now();
        for i in 0..OPS {
            let receipt = client
                .insert("main", "r", &[&format!("a{i}"), &format!("b{i}")])
                .expect("insert");
            assert_eq!(receipt.changed, 1, "every op must be effective");
        }
        let elapsed = t0.elapsed();
        runs.push(OPS as f64 / elapsed.as_secs_f64());

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    median(runs)
}

fn main() {
    let modes: [(&str, Option<DurabilityPolicy>); 4] = [
        ("mem", None),
        ("off", Some(DurabilityPolicy::Off)),
        ("batch", Some(DurabilityPolicy::Batch)),
        ("always", Some(DurabilityPolicy::Always)),
    ];
    let rows: Vec<(&str, f64)> = modes
        .iter()
        .map(|&(tag, policy)| (tag, bench_mode(tag, policy)))
        .collect();

    let mem = rows[0].1;
    let batch = rows.iter().find(|(t, _)| *t == "batch").unwrap().1;
    let batch_keep_ratio = batch / mem;

    println!("\n### bench: wal_overhead\n");
    print_table(
        &["policy", "ops/s", "vs mem"],
        &rows
            .iter()
            .map(|(tag, ops)| {
                vec![
                    (*tag).to_string(),
                    format!("{ops:.0}"),
                    format!("{:.2}", ops / mem),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("batch_keep_ratio: {batch_keep_ratio:.2} (acceptance bar: >= 0.5)");

    // Hand-rolled JSON (no serde in the dependency graph).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"wal_overhead\",\n");
    json.push_str("  \"unit\": \"mutations_per_second\",\n");
    json.push_str(&format!("  \"batch_keep_ratio\": {batch_keep_ratio:.2},\n"));
    json.push_str("  \"modes\": [\n");
    for (i, (tag, ops)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{tag}\", \"ops_per_sec\": {ops:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal_overhead.json");
    std::fs::write(out, &json).expect("write BENCH_wal_overhead.json");
    println!("\nwrote {out}");
}
