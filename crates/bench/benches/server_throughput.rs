//! Serving-layer benchmark: cold vs plan-cache-warm vs count-cache-warm
//! request latency, plus multi-client throughput scaling, against an
//! in-process `cqcountd` on a loopback port. Emits
//! `BENCH_server_throughput.json` at the workspace root.
//!
//! The workload is a width-2 family: the paper's Example 1.1 query body
//! with varying free-variable sets (each free set is a distinct canonical
//! query, so each exercises its own plan-cache entry). The three phases:
//!
//! * **cold** — `FLUSH`, then count every query: plan search + count;
//! * **plan_warm** — `RELOAD` (epoch bump kills cached counts, plans
//!   survive), then count every query: cached plan + fresh count;
//! * **count_warm** — count every query again: pure cache hits.
//!
//! Then two throughput phases over the warm workload:
//!
//! * **blocking sweep** — 1..64 concurrent blocking clients, one request
//!   in flight each, with a fixed per-client think time between requests
//!   (a closed-loop load model). The think time keeps a single client
//!   from saturating the server by itself, so the sweep measures what it
//!   is supposed to: how many concurrent clients' round-trips the
//!   reactor can overlap. Low client counts are think-time-bound and
//!   grow near-linearly; high counts hit the serving capacity and
//!   plateau — the classic closed-loop saturation curve;
//! * **pipelined** — one protocol-v5 connection keeping a 64-deep window
//!   in flight. This is the headline number: it amortizes the network
//!   round-trip away and measures the serving path itself.

use cqcount_bench::print_table;
use cqcount_query::parse_database;
use cqcount_server::{serve, CacheTier, Client, PipelinedClient, Request, Response, ServerConfig};
use std::time::{Duration, Instant};

/// A tiny directed 3-cycle: counting any query over it is trivial, so the
/// cold/warm gap isolates planning (decomposition search) cost.
const FIXTURE: &str = "e(a, b). e(b, c). e(c, a).";

/// The width-2 workload: cycle queries of increasing length. Every cycle
/// has #-hypertree width 2, but the decomposition search over `len` atoms
/// is the dominant per-request cost on a cold plan cache.
fn workload() -> Vec<String> {
    (12..24usize)
        .map(|len| {
            let atoms: Vec<String> = (0..len)
                .map(|i| format!("e(X{}, X{})", i, (i + 1) % len))
                .collect();
            format!("ans(X0, X1) :- {}.", atoms.join(", "))
        })
        .collect()
}

/// Wall-clock ns per request for one pass over the workload.
fn pass_ns(client: &mut Client, queries: &[String], expect: CacheTier) -> f64 {
    let t0 = Instant::now();
    for q in queries {
        let reply = client.count("main", q, 0).expect("count");
        assert_eq!(reply.cached, expect, "query {q}");
    }
    t0.elapsed().as_nanos() as f64 / queries.len() as f64
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let db = parse_database(FIXTURE).expect("fixture parses");
    let handle = serve(
        ServerConfig {
            workers: 8,
            queue_cap: 256,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    let queries = workload();

    // Latency phases, median over repetitions.
    const REPS: usize = 5;
    let mut cold = Vec::new();
    let mut plan_warm = Vec::new();
    let mut count_warm = Vec::new();
    for _ in 0..REPS {
        client.flush().expect("flush");
        cold.push(pass_ns(&mut client, &queries, CacheTier::Cold));
        client.reload("main", FIXTURE).expect("reload");
        plan_warm.push(pass_ns(&mut client, &queries, CacheTier::PlanWarm));
        count_warm.push(pass_ns(&mut client, &queries, CacheTier::CountWarm));
    }
    let cold_ns = median(cold);
    let plan_warm_ns = median(plan_warm);
    let count_warm_ns = median(count_warm);

    // Blocking-client throughput sweep on the count-warm path: every
    // request is answered by the reactor's warm-hit fast path, so this
    // measures the serving layer, not the counting algorithms. Each
    // client sleeps THINK_TIME between requests (closed-loop model): a
    // lone client is then think-time-bound, and throughput growth with
    // the client count shows genuine request overlap in the reactor —
    // the old thread-per-connection front end bottlenecked on its worker
    // handoff at ~2.6x here, below the CI gate's 3x.
    const THINK_TIME_US: u64 = 200;
    const TOTAL_REQUESTS: usize = 2048;
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    for clients in [1usize, 2, 4, 8, 16, 32, 64] {
        let per_client = TOTAL_REQUESTS / clients;
        let queries = &queries;
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for i in 0..per_client {
                        let q = &queries[i % queries.len()];
                        c.count("main", q, 0).expect("count");
                        std::thread::sleep(Duration::from_micros(THINK_TIME_US));
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        throughput.push((clients, (per_client * clients) as f64 / secs));
    }
    let rps_at = |n: usize| {
        throughput
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, r)| *r)
            .expect("swept")
    };
    let scaling_8_over_1 = rps_at(8) / rps_at(1);
    let count_warm_peak_rps = throughput.iter().map(|(_, r)| *r).fold(0.0, f64::max);

    // Pipelined phase: one v5 connection, a 64-deep window, warm counts.
    const PIPELINE_DEPTH: usize = 64;
    const PIPELINE_REQUESTS: usize = 20_000;
    let pipelined_rps = {
        let mut pc = PipelinedClient::connect(addr).expect("connect");
        let reqs: Vec<Request> = queries
            .iter()
            .map(|q| Request::Count {
                db: "main".into(),
                query: q.clone(),
                budget_ms: 0,
            })
            .collect();
        let t0 = Instant::now();
        let mut submitted = 0usize;
        let mut received = 0usize;
        while submitted < PIPELINE_DEPTH.min(PIPELINE_REQUESTS) {
            pc.submit(&reqs[submitted % reqs.len()]).expect("submit");
            submitted += 1;
        }
        while received < PIPELINE_REQUESTS {
            let (_, resp) = pc.recv().expect("pipelined response");
            assert!(matches!(resp, Response::Count { .. }), "warm count");
            received += 1;
            if submitted < PIPELINE_REQUESTS {
                pc.submit(&reqs[submitted % reqs.len()]).expect("submit");
                submitted += 1;
            }
        }
        PIPELINE_REQUESTS as f64 / t0.elapsed().as_secs_f64()
    };

    println!("\n### bench: server_throughput\n");
    let fmt_ns = |ns: f64| format!("{:?}", Duration::from_nanos(ns as u64));
    print_table(
        &["phase", "latency/request"],
        &[
            vec!["cold (flush + count)".into(), fmt_ns(cold_ns)],
            vec!["plan-warm (reload + count)".into(), fmt_ns(plan_warm_ns)],
            vec!["count-warm".into(), fmt_ns(count_warm_ns)],
        ],
    );
    let rows: Vec<Vec<String>> = throughput
        .iter()
        .map(|(c, rps)| vec![c.to_string(), format!("{rps:.0}")])
        .collect();
    print_table(&["clients", "requests/sec"], &rows);
    println!(
        "plan-cache-warm vs cold: {:.2}x; count-cache-warm vs cold: {:.2}x",
        cold_ns / plan_warm_ns,
        cold_ns / count_warm_ns
    );
    println!(
        "8-client scaling: {scaling_8_over_1:.2}x over 1 client; \
         pipelined (1 conn, depth {PIPELINE_DEPTH}): {pipelined_rps:.0} req/s"
    );

    // Hand-rolled JSON (no serde in the dependency graph).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"server_throughput\",\n");
    json.push_str(&format!("  \"workload_queries\": {},\n", queries.len()));
    json.push_str("  \"unit\": \"ns_per_request\",\n");
    json.push_str(&format!("  \"cold_ns\": {cold_ns:.0},\n"));
    json.push_str(&format!("  \"plan_warm_ns\": {plan_warm_ns:.0},\n"));
    json.push_str(&format!("  \"count_warm_ns\": {count_warm_ns:.0},\n"));
    json.push_str(&format!(
        "  \"cold_over_plan_warm\": {:.2},\n",
        cold_ns / plan_warm_ns
    ));
    json.push_str(&format!(
        "  \"cold_over_count_warm\": {:.2},\n",
        cold_ns / count_warm_ns
    ));
    json.push_str(&format!("  \"think_time_us\": {THINK_TIME_US},\n"));
    json.push_str(&format!(
        "  \"count_warm_peak_rps\": {count_warm_peak_rps:.0},\n"
    ));
    json.push_str(&format!("  \"scaling_8_over_1\": {scaling_8_over_1:.2},\n"));
    json.push_str(&format!("  \"pipeline_depth\": {PIPELINE_DEPTH},\n"));
    json.push_str(&format!("  \"pipelined_rps\": {pipelined_rps:.0},\n"));
    json.push_str("  \"throughput\": [\n");
    for (i, (clients, rps)) in throughput.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {clients}, \"requests_per_sec\": {rps:.0}}}{}\n",
            if i + 1 < throughput.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_server_throughput.json"
    );
    std::fs::write(out, &json).expect("write BENCH_server_throughput.json");
    println!("\nwrote {out}");

    handle.shutdown();
}
