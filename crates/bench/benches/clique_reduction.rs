//! E7 timing study: the #Clique → #CQ reduction — the cost of counting
//! k-cliques through the clique query grows with k (the W[1] frontier of
//! Theorem 1.6), while direct enumeration is cheap on sparse graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqcount_reductions::count_cliques_via_cq_with;
use cqcount_workloads::graphs::{count_cliques_direct, random_graph};

fn bench(c: &mut Criterion) {
    let g = random_graph(14, 0.5, 2026);
    let mut group = c.benchmark_group("clique_reduction");
    group.sample_size(10);
    for k in 2..=4usize {
        group.bench_with_input(BenchmarkId::new("direct", k), &k, |b, &k| {
            b.iter(|| count_cliques_direct(&g, k))
        });
        group.bench_with_input(BenchmarkId::new("via_cq", k), &k, |b, &k| {
            b.iter(|| count_cliques_via_cq_with(&g, k, cqcount_core::count_brute_force))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
