//! E7 timing study: the #Clique → #CQ reduction — the cost of counting
//! k-cliques through the clique query grows with k (the W[1] frontier of
//! Theorem 1.6), while direct enumeration is cheap on sparse graphs.

use cqcount_bench::BenchGroup;
use cqcount_reductions::count_cliques_via_cq_with;
use cqcount_workloads::graphs::{count_cliques_direct, random_graph};

fn main() {
    let g = random_graph(14, 0.5, 2026);
    let mut group = BenchGroup::new("clique_reduction");
    for k in 2..=4usize {
        group.bench("direct", k, || count_cliques_direct(&g, k));
        group.bench("via_cq", k, || {
            count_cliques_via_cq_with(&g, k, cqcount_core::count_brute_force)
        });
    }
    group.finish();
}
