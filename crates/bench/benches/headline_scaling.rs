//! E10 timing study: the Theorem 1.3 headline — fixed bounded-#-htw query,
//! growing database; the pipeline stays polynomial (near-linear) while
//! enumeration grows with the number of embeddings.

use cqcount_bench::BenchGroup;
use cqcount_core::prelude::*;
use cqcount_workloads::intro::{intro_instance, IntroScale};

fn main() {
    let mut group = BenchGroup::new("headline_scaling");
    for factor in [1usize, 4, 16] {
        let scale = IntroScale {
            workers: 25 * factor,
            machines: 10 * factor,
            projects: 6 * factor,
            tasks: 15 * factor,
            subtasks_per_task: 4,
            resources: 8 * factor,
        };
        let (q, db) = intro_instance(&scale, 2026);
        let tuples = db.total_tuples();
        let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
        group.bench("pipeline", tuples, || {
            count_with_decomposition(&sd.qprime, &db, &sd.hypertree)
        });
        group.bench("brute", tuples, || count_brute_force(&q, &db));
    }
    group.finish();
}
