//! E6 timing study: hybrid #₁-counting (Theorem 6.6) vs brute force on the
//! Example 6.3 family, with data growing at a fixed query.

use cqcount_bench::BenchGroup;
use cqcount_core::prelude::*;
use cqcount_workloads::paper::{hybrid_database, hybrid_database_scaled, hybrid_query};

fn main() {
    let h = 3;
    let q = hybrid_query(h);
    // One-time search (fixed query class).
    let hd = hybrid_decomposition(&q, &hybrid_database(h), 2, usize::MAX).expect("width 2");
    let mut group = BenchGroup::new("hybrid_vs_structural");
    for z_count in [32usize, 128, 512] {
        let db = hybrid_database_scaled(h, z_count);
        let tuples = db.total_tuples();
        group.bench("hybrid_count", tuples, || {
            cqcount_core::hybrid::count_hybrid_with(&q, &db, &hd)
        });
        group.bench("brute_force", tuples, || count_brute_force(&q, &db));
    }
    group.finish();
}
