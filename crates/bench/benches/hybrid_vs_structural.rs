//! E6 timing study: hybrid #₁-counting (Theorem 6.6) vs brute force on the
//! Example 6.3 family, with data growing at a fixed query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cqcount_core::prelude::*;
use cqcount_workloads::paper::{hybrid_database, hybrid_database_scaled, hybrid_query};

fn bench(c: &mut Criterion) {
    let h = 3;
    let q = hybrid_query(h);
    // One-time search (fixed query class).
    let hd = hybrid_decomposition(&q, &hybrid_database(h), 2, usize::MAX).expect("width 2");
    let mut group = c.benchmark_group("hybrid_vs_structural");
    group.sample_size(10);
    for z_count in [32usize, 128, 512] {
        let db = hybrid_database_scaled(h, z_count);
        let tuples = db.total_tuples();
        group.bench_with_input(
            BenchmarkId::new("hybrid_count", tuples),
            &(&q, &db),
            |b, (q, db)| b.iter(|| cqcount_core::hybrid::count_hybrid_with(q, db, &hd)),
        );
        group.bench_with_input(
            BenchmarkId::new("brute_force", tuples),
            &(&q, &db),
            |b, (q, db)| b.iter(|| count_brute_force(q, db)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
