//! Measures what the PR 4 instrumentation costs the join/semijoin kernels
//! from `BENCH_join_kernels.json`:
//!
//! * **disabled** — no trace session anywhere; an instrumented scope pays
//!   one relaxed atomic load. Measured two ways: the kernel itself, and
//!   the per-span gate cost in isolation (a tight create/drop loop), from
//!   which the *disabled overhead* is derived as `gate_ns × spans_per_op /
//!   kernel_ns` — far below what run-to-run noise on the kernel numbers
//!   could resolve directly.
//! * **traced** — an active [`cqcount_obs::trace::TraceSession`] with the
//!   kernels recording under a live root span, rings drained per case.
//! * **recorder-armed** — the flight recorder's per-request capture
//!   cycle: session begin, root span, kernel under it, collect +
//!   build_tree, tree discarded (the overwhelmingly common non-retained
//!   outcome). This is what *every* request pays while `--recorder-cap`
//!   is nonzero (the default), so it gets its own, looser gate.
//!
//! Emits `BENCH_trace_overhead.json`; CI guards the summary percentages
//! (traced ≤ 3%, recorder-armed ≤ 5%, disabled ≤ 0.5%).

use cqcount_arith::prng::Rng;
use cqcount_bench::{bench_ns, print_table};
use cqcount_obs::trace;
use cqcount_relational::{Bindings, Value};

struct Case {
    kernel: &'static str,
    rows: usize,
    ns_disabled: f64,
    ns_traced: f64,
    ns_recorder_armed: f64,
    traced_overhead_pct: f64,
    recorder_armed_overhead_pct: f64,
    disabled_overhead_pct: f64,
}

/// Same generator as `join_kernels`: shared first column, domain ≈ rows.
fn instance(rows: usize, seed: u64) -> (Bindings, Bindings) {
    let mut rng = Rng::seed_from_u64(seed);
    let domain = rows as u32;
    let mk = |rng: &mut Rng, cols: Vec<u32>| {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|_| {
                (0..cols.len())
                    .map(|_| Value(rng.range_u32(0, domain)))
                    .collect()
            })
            .collect();
        Bindings::from_rows(cols, data)
    };
    (mk(&mut rng, vec![0, 1]), mk(&mut rng, vec![0, 2]))
}

fn main() {
    assert!(
        !trace::enabled(),
        "trace_overhead must start with tracing off"
    );

    // The disabled fast path in isolation: create + drop an unarmed span.
    // This is the *entire* per-scope cost an idle server pays.
    let gate_ns = bench_ns(|| {
        let _ = std::hint::black_box(trace::span("bench.gate"));
    });

    let mut cases: Vec<Case> = Vec::new();
    for rows in [1_000usize, 10_000, 100_000] {
        let (left, right) = instance(rows, 0xBEEF + rows as u64);
        for kernel in ["join", "semijoin"] {
            let run = || match kernel {
                "join" => {
                    std::hint::black_box(left.join(&right));
                }
                _ => {
                    std::hint::black_box(left.semijoin(&right));
                }
            };
            let ns_disabled = bench_ns(run);
            let ns_traced = {
                let _session = trace::TraceSession::begin();
                let root = trace::span("bench.root");
                let root_id = root.id();
                let ns = bench_ns(run);
                drop(root);
                // Drain what the bench recorded so the next case starts
                // with empty rings.
                let _ = trace::collect(root_id);
                ns
            };
            // The recorder's speculative capture, end to end per op:
            // session + root + spans + collect + tree assembly, with the
            // tree thrown away as it is for every non-retained request.
            let ns_recorder_armed = bench_ns(|| {
                let _session = trace::TraceSession::begin();
                let root = trace::span("request");
                let root_id = root.id();
                run();
                drop(root);
                let tree = trace::build_tree(trace::collect(root_id), root_id);
                let _ = std::hint::black_box(tree);
            });
            // One kernel span per op; the counter adds ride on the same
            // armed/unarmed check.
            let disabled_overhead_pct = 100.0 * gate_ns / ns_disabled;
            let traced_overhead_pct = 100.0 * (ns_traced - ns_disabled) / ns_disabled;
            let recorder_armed_overhead_pct =
                100.0 * (ns_recorder_armed - ns_disabled) / ns_disabled;
            cases.push(Case {
                kernel,
                rows,
                ns_disabled,
                ns_traced,
                ns_recorder_armed,
                traced_overhead_pct,
                recorder_armed_overhead_pct,
                disabled_overhead_pct,
            });
        }
    }

    println!("\n### bench: trace_overhead (disabled gate: {gate_ns:.1} ns/span)\n");
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.kernel.to_string(),
                c.rows.to_string(),
                format!("{:.0}", c.ns_disabled),
                format!("{:.0}", c.ns_traced),
                format!("{:.0}", c.ns_recorder_armed),
                format!("{:+.2}%", c.traced_overhead_pct),
                format!("{:+.2}%", c.recorder_armed_overhead_pct),
                format!("{:.4}%", c.disabled_overhead_pct),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "rows",
            "ns (off)",
            "ns (traced)",
            "ns (armed)",
            "traced ovh",
            "armed ovh",
            "disabled ovh",
        ],
        &rows,
    );

    // Noise floor: tiny kernels jitter a few percent run-to-run; the
    // summary takes the *median* traced overhead so one noisy cell cannot
    // fail the guard, and the max disabled overhead (analytic, stable).
    let mut traced: Vec<f64> = cases.iter().map(|c| c.traced_overhead_pct).collect();
    traced.sort_by(f64::total_cmp);
    let median_traced = traced[traced.len() / 2];
    let mut armed: Vec<f64> = cases
        .iter()
        .map(|c| c.recorder_armed_overhead_pct)
        .collect();
    armed.sort_by(f64::total_cmp);
    let median_armed = armed[armed.len() / 2];
    let max_disabled = cases
        .iter()
        .map(|c| c.disabled_overhead_pct)
        .fold(0.0f64, f64::max);
    println!(
        "\nmedian traced overhead {median_traced:+.2}% (target <= 3%), \
         median recorder-armed overhead {median_armed:+.2}% (target <= 5%), \
         max disabled overhead {max_disabled:.4}% (target <= 0.5%)"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"trace_overhead\",\n");
    json.push_str("  \"baseline\": \"BENCH_join_kernels.json kernels, re-measured in-run\",\n");
    json.push_str(&format!("  \"disabled_gate_ns_per_span\": {gate_ns:.2},\n"));
    json.push_str(&format!(
        "  \"median_traced_overhead_pct\": {median_traced:.3},\n"
    ));
    json.push_str(&format!(
        "  \"median_armed_overhead_pct\": {median_armed:.3},\n"
    ));
    json.push_str(&format!(
        "  \"max_disabled_overhead_pct\": {max_disabled:.4},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"rows\": {}, \"ns_disabled\": {:.0}, \"ns_traced\": {:.0}, \"ns_recorder_armed\": {:.0}, \"traced_overhead_pct\": {:.3}, \"recorder_armed_overhead_pct\": {:.3}, \"disabled_overhead_pct\": {:.4}}}{}\n",
            c.kernel,
            c.rows,
            c.ns_disabled,
            c.ns_traced,
            c.ns_recorder_armed,
            c.traced_overhead_pct,
            c.recorder_armed_overhead_pct,
            c.disabled_overhead_pct,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_trace_overhead.json"
    );
    std::fs::write(out, &json).expect("write BENCH_trace_overhead.json");
    println!("\nwrote {out}");
}
