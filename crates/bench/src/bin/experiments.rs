//! The experiment harness: regenerates every figure/example/claim of the
//! paper as a table (see DESIGN.md's experiment index and EXPERIMENTS.md
//! for the paper-vs-measured discussion).
//!
//! Run all: `cargo run --release -p cqcount-bench --bin experiments`
//! Run some: `cargo run --release -p cqcount-bench --bin experiments e3 e6`

use cqcount_bench::{banner, fmt_duration, print_table, timed};
use cqcount_core::prelude::*;
use cqcount_decomp::Hypertree;
use cqcount_hypergraph::NodeSet;
use cqcount_query::{quantified_star_size, ConjunctiveQuery, Var};
use cqcount_reductions::{count_fullcolor_via_oracle, simple_to_general, CountOracle};
use cqcount_relational::Database;
use cqcount_workloads::graphs::{count_cliques_direct, random_graph};
use cqcount_workloads::intro::{intro_instance, IntroScale};
use cqcount_workloads::paper::*;
use cqcount_workloads::random::{random_database, RandomDbConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("# cqcount experiment harness");
    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e11") {
        e11();
    }
    if want("e12") {
        e12();
    }
    if want("e13") {
        e13();
    }
}

fn named_edges(q: &ConjunctiveQuery, h: &cqcount_hypergraph::Hypergraph) -> String {
    let mut parts: Vec<String> = h
        .edges()
        .iter()
        .map(|e| {
            let names: Vec<&str> = e.iter().map(|n| q.var_name(Var(n))).collect();
            format!("{{{}}}", names.join(","))
        })
        .collect();
    parts.sort();
    parts.join(" ")
}

/// E1 — Figures 1–4/7, Examples 1.1 & 3.x: Q0's frontier hypergraph, core,
/// width, and algorithm agreement on a realistic instance.
fn e1() {
    banner(
        "E1",
        "Q0: frontier hypergraph, colored core, #-htw (Figures 1-4, 7)",
    );
    let q = q0_query();
    let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
    println!("query: {q}");
    println!("paper: frontier hyperedges {{A,B}} {{B}} {{B,C}} (Figure 1b)");
    println!(
        "ours:  frontier hyperedges {}",
        named_edges(&q, &sd.frontier)
    );
    println!("paper: core of color(Q0) drops the redundant st/rr branch (7 of 9 atoms remain)");
    println!(
        "ours:  core keeps {} of {} atoms; vars {} of {}",
        sd.qprime.atoms().len(),
        q.atoms().len(),
        sd.qprime.vars_in_atoms().len(),
        q.vars_in_atoms().len()
    );
    println!("paper: #-hypertree width of Q0 = 2 (Figure 3c)");
    println!(
        "ours:  width-1 exists: {}, width-2 exists: true (witness verified: {})",
        sharp_hypertree_decomposition(&q, 1).is_some(),
        sd.hypertree.covers_all_edges(&sd.qprime.hypergraph())
            && sd.frontier.edges().iter().all(|e| sd
                .hypertree
                .chi
                .iter()
                .any(|bag| e.is_subset(bag)))
    );
    let (q, db) = intro_instance(&IntroScale::default(), 2026);
    let mut rows = Vec::new();
    let (n_bf, t) = timed(|| count_brute_force(&q, &db));
    rows.push(vec![
        "brute force".into(),
        n_bf.to_string(),
        fmt_duration(t),
    ]);
    let (n_fj, t) = timed(|| count_via_full_join(&q, &db));
    rows.push(vec!["full join".into(), n_fj.to_string(), fmt_duration(t)]);
    let (res, t) = timed(|| count_via_sharp_decomposition(&q, &db, 2).unwrap());
    rows.push(vec![
        "#-pipeline (Thm 1.3)".into(),
        res.0.to_string(),
        fmt_duration(t),
    ]);
    let (res2, t) = timed(|| count_hybrid(&q, &db, 2, usize::MAX).unwrap());
    rows.push(vec![
        format!("hybrid (bound {})", res2.1.bound),
        res2.0.to_string(),
        fmt_duration(t),
    ]);
    println!(
        "\ncounts on the intro instance ({} tuples):",
        db.total_tuples()
    );
    print_table(&["algorithm", "count", "time"], &rows);
    assert!(n_bf == n_fj && n_bf == res.0 && n_bf == res2.0);
}

/// E2 — Example 4.1 / Figure 8: the 4-cycle Q1.
fn e2() {
    banner(
        "E2",
        "Q1 (4-cycle): frontier {A,C}, #-htw = 2 (Example 4.1, Figure 8)",
    );
    let q = q1_cycle_query();
    let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
    println!("query: {q}");
    println!("paper: FH(Q1, {{A,C}}) contains the hyperedge {{A,C}}; #-htw = 2");
    println!("ours:  frontier edges {}", named_edges(&q, &sd.frontier));
    println!(
        "ours:  width-1: {}, width-2: true",
        sharp_hypertree_decomposition(&q, 1).is_some()
    );
    // counts on a random cycle instance
    let mut db = Database::new();
    let mut rng = cqcount_arith::prng::Rng::seed_from_u64(7);
    for rel in ["s1", "s2", "s3", "s4"] {
        for _ in 0..40 {
            let u = rng.range_u32(0, 12);
            let v = rng.range_u32(0, 12);
            let uu = db.value(&format!("v{u}"));
            let vv = db.value(&format!("v{v}"));
            db.add_tuple(rel, vec![uu, vv]);
        }
    }
    let brute = count_brute_force(&q, &db);
    let (n, _) = count_via_sharp_decomposition(&q, &db, 2).unwrap();
    println!("counts agree on a random instance: {n} (= brute {brute})");
    assert_eq!(n, brute);
}

/// E3 — Example A.2 / Figure 11 / Theorem A.3: chain family — star size
/// grows, Durand–Mengel width grows, #-htw stays 1; timing comparison.
fn e3() {
    banner(
        "E3",
        "Chain family Q1^n: Durand–Mengel vs #-hypertree (Example A.2, Figure 11)",
    );
    println!("paper: star size ⌈n/2⌉ (unbounded), #-htw = 1; DM width ≥ star size\n");
    let g = random_graph(14, 0.35, 5);
    let mut db = Database::new();
    for &(u, v) in &g.edges {
        let uu = db.value(&format!("n{u}"));
        let vv = db.value(&format!("n{v}"));
        db.add_tuple("r", vec![uu, vv]);
        db.add_tuple("r", vec![vv, uu]);
    }
    let mut rows = Vec::new();
    for n in 2..=5usize {
        let q = chain_query(n);
        let star = quantified_star_size(&q);
        let sharp_w = sharp_hypertree_width(&q, 2).unwrap();
        let (dm_w, _) = durand_mengel_width(&q, 8).unwrap();
        let (dm_n, t_dm) = timed(|| count_durand_mengel(&q, &db, 8).unwrap());
        let ((sn, _), t_sharp) = timed(|| count_via_sharp_decomposition(&q, &db, 2).unwrap());
        assert_eq!(dm_n, sn);
        rows.push(vec![
            n.to_string(),
            star.to_string(),
            dm_w.to_string(),
            sharp_w.to_string(),
            fmt_duration(t_dm),
            fmt_duration(t_sharp),
            sn.to_string(),
        ]);
    }
    print_table(
        &[
            "n",
            "star size",
            "DM width",
            "#-htw",
            "t(DM)",
            "t(#-pipeline)",
            "count",
        ],
        &rows,
    );
}

/// E4 — Appendix A: bicliques Q2^n — ghw = n, #-htw = 1.
fn e4() {
    banner(
        "E4",
        "Biclique family Q2^n: ghw = n, #-htw = 1 (Appendix A)",
    );
    let mut rows = Vec::new();
    for n in 1..=3usize {
        let q = biclique_query(n);
        let resources: Vec<NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (ghw, _) = cqcount_decomp::ghw_exact(&q.hypergraph(), &resources, n).unwrap();
        let sharp = sharp_hypertree_width(&q, 1).unwrap();
        rows.push(vec![n.to_string(), ghw.to_string(), sharp.to_string()]);
    }
    print_table(&["n", "ghw (paper: n)", "#-htw (paper: 1)"], &rows);
}

/// Width-1 hypertree decomposition HD2 of the star query (Figure 12c) and
/// the merged HD2' of Example C.2.
fn star_decompositions(h: usize) -> (Hypertree, Hypertree) {
    let q = star_query(h);
    let atom_sets: Vec<NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    // HD2: root r (atom 0), children: s (atom 1) and each w_i (atoms 2..).
    let mut chi = vec![atom_sets[0].clone(), atom_sets[1].clone()];
    let mut lambda = vec![vec![0usize], vec![1]];
    let mut parent = vec![None, Some(0)];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    let hd2 = Hypertree::from_parts(chi, lambda, parent);
    // HD2': r and s merged into one width-2 root.
    let mut chi = vec![atom_sets[0].union(&atom_sets[1])];
    let mut lambda = vec![vec![0usize, 1]];
    let mut parent = vec![None];
    for i in 0..h {
        chi.push(atom_sets[2 + i].clone());
        lambda.push(vec![2 + i]);
        parent.push(Some(0));
    }
    let hd2p = Hypertree::from_parts(chi, lambda, parent);
    (hd2, hd2p)
}

/// E5 — Example C.1/C.2, Figures 12-13, Theorem 6.2: the degree bound
/// drives the Pichler–Skritek cost, not the database size.
fn e5() {
    banner(
        "E5",
        "Star family: bound(D, HD) drives the #-relation cost (Theorem 6.2, Figures 12-13)",
    );
    println!("paper: bound(D2, HD2) = m = 2^h for the width-1 decomposition;");
    println!("       merging r and s (HD2') drops it to 1 (Example C.2)\n");
    let mut rows = Vec::new();
    for h in 1..=7usize {
        let q = star_query(h);
        let db = star_database(h);
        let (hd2, hd2p) = star_decompositions(h);
        let b1 = degree_bound(&q, &db, &hd2);
        let b2 = degree_bound(&q, &db, &hd2p);
        let (n1, t1) = timed(|| count_pichler_skritek(&q, &db, &hd2));
        let (n2, t2) = timed(|| count_pichler_skritek(&q, &db, &hd2p));
        assert_eq!(n1, n2);
        assert_eq!(n1, star_expected_count(h).into());
        rows.push(vec![
            h.to_string(),
            (1u64 << h).to_string(),
            b1.to_string(),
            b2.to_string(),
            fmt_duration(t1),
            fmt_duration(t2),
            n1.to_string(),
        ]);
    }
    print_table(
        &[
            "h",
            "m",
            "bound(HD2)",
            "bound(HD2')",
            "t(PS, HD2)",
            "t(PS, HD2')",
            "count",
        ],
        &rows,
    );
}

/// E6 — Example 6.3/6.5, Theorems 6.6/6.7: hybrid decompositions beat both
/// the structural method (width grows) and enumeration.
fn e6() {
    banner(
        "E6",
        "Hybrid family Q̄2^h: #_1-width 2 despite unbounded #-htw (Example 6.3/6.5)",
    );
    println!("paper: #-htw = h+1 (frontier = clique on the free variables);");
    println!("       a width-2 #_1-decomposition exists with S̄ = free ∪ {{Y·}}\n");
    println!("structural width grows with h:");
    let mut rows = Vec::new();
    for h in 1..=4usize {
        let q = hybrid_query(h);
        let sharp_w = sharp_hypertree_width(&q, h + 1).unwrap();
        let db = hybrid_database(h);
        let hd = hybrid_decomposition(&q, &db, 2, usize::MAX).expect("hybrid width 2");
        rows.push(vec![
            h.to_string(),
            sharp_w.to_string(),
            format!("2 (bound {})", hd.bound),
        ]);
    }
    print_table(
        &[
            "h",
            "#-htw (paper: h+1)",
            "hybrid width (paper: 2, bound 1)",
        ],
        &rows,
    );

    // Data scaling at fixed h: the query is fixed, so the decomposition
    // search is a one-time cost; compare per-instance counting.
    let h = 3;
    let q = hybrid_query(h);
    println!("\ndata scaling at fixed h = {h} (search amortized once per query class):");
    let db0 = hybrid_database(h);
    let (hd, t_search) = timed(|| hybrid_decomposition(&q, &db0, 2, usize::MAX).expect("hybrid"));
    let (_, t_guided) = timed(|| {
        cqcount_core::hybrid::hybrid_decomposition_guided(&q, &db0, 2, usize::MAX)
            .expect("guided hybrid")
    });
    println!(
        "one-time decomposition search: {} exhaustive (Thm 6.7), {} key-guided (Ex. 1.5)\n",
        fmt_duration(t_search),
        fmt_duration(t_guided)
    );
    let mut rows = Vec::new();
    for z_count in [8usize, 32, 128, 512, 2048] {
        let db = hybrid_database_scaled(h, z_count);
        let (n_hy, t_hy) = timed(|| cqcount_core::hybrid::count_hybrid_with(&q, &db, &hd));
        let (n_bf, t_bf) = timed(|| count_brute_force(&q, &db));
        assert_eq!(n_hy, n_bf);
        assert_eq!(n_hy, hybrid_expected_count(h).into());
        rows.push(vec![
            db.total_tuples().to_string(),
            fmt_duration(t_hy),
            fmt_duration(t_bf),
            n_hy.to_string(),
        ]);
    }
    print_table(&["|D|", "t(hybrid count)", "t(brute)", "count"], &rows);
}

/// E7 — Section 5: the #Clique → #CQ reduction in action.
fn e7() {
    banner(
        "E7",
        "#Clique via #CQ (Theorem 1.6 hardness direction, Section 5)",
    );
    let g = random_graph(14, 0.5, 2026);
    println!("G(14, 0.5): {} edges\n", g.edges.len());
    let mut rows = Vec::new();
    for k in 2..=5usize {
        let (direct, t_d) = timed(|| count_cliques_direct(&g, k));
        let (via, t_r) =
            timed(|| cqcount_reductions::count_cliques_via_cq_with(&g, k, count_brute_force));
        assert_eq!(direct, via);
        let q = cqcount_workloads::graphs::clique_query(k);
        let w = WidthReport::analyze(&q, 4);
        rows.push(vec![
            k.to_string(),
            direct.to_string(),
            via.to_string(),
            fmt_duration(t_d),
            fmt_duration(t_r),
            w.sharp_width.map_or("> 4".into(), |x| x.to_string()),
        ]);
    }
    print_table(
        &[
            "k",
            "#cliques",
            "via #CQ",
            "t(direct)",
            "t(reduction)",
            "#-htw of clique query",
        ],
        &rows,
    );
}

/// E8 — Lemma 5.10 (+ Claim 5.16): the counting slice reduction executed.
fn e8() {
    banner(
        "E8",
        "Lemma 5.10 executable: fullcolor counts from a count(Q,·) oracle",
    );
    let cases = [
        "ans(X) :- r(X, Y).",
        "ans(X, Z) :- r(X, Y), r(Y, Z).",
        "ans(X1, X2) :- r(X1, Y), r(X2, Y).",
        "ans(X) :- r(X, Y), r(Y, Z), r(Z, X).",
    ];
    let mut rows = Vec::new();
    for src in cases {
        let q = cqcount_query::parse_query(src).unwrap();
        let qs = q.to_simple();
        let b = random_database(
            &qs,
            &RandomDbConfig {
                domain: 3,
                tuples_per_rel: 6,
            },
            11,
        );
        let (_, bhat) = simple_to_general(&q, &qs, &b).expect("aligned by construction");
        let direct = count_brute_force(&qs, &b);
        let mut oracle = CountOracle::new(count_brute_force);
        let (via, t) = timed(|| count_fullcolor_via_oracle(&q, &bhat, &mut oracle));
        assert_eq!(via, direct);
        rows.push(vec![
            src.into(),
            direct.to_string(),
            via.to_string(),
            oracle.stats().calls.to_string(),
            fmt_duration(t),
        ]);
    }
    print_table(
        &[
            "query Q̂ (counting simple(Q̂))",
            "direct",
            "via oracle",
            "oracle calls",
            "time",
        ],
        &rows,
    );
}

/// E9 — Lemma 4.3 and Theorem C.5: polynomial cores and D-optimal
/// decompositions.
fn e9() {
    banner(
        "E9",
        "Poly-time cores (Lemma 4.3) and D-optimal decompositions (Thm C.5)",
    );
    println!("cores of color(Q) for the chain family — exact vs local-consistency:\n");
    let mut rows = Vec::new();
    for n in 2..=5usize {
        let q = cqcount_query::color(&chain_query(n));
        let (exact, t_e) = timed(|| cqcount_query::core_exact(&q));
        let (lemma, t_c) = timed(|| cqcount_query::core_via_consistency(&q, 2));
        assert_eq!(exact.atoms().len(), lemma.atoms().len());
        rows.push(vec![
            n.to_string(),
            q.atoms().len().to_string(),
            exact.atoms().len().to_string(),
            fmt_duration(t_e),
            fmt_duration(t_c),
        ]);
    }
    print_table(
        &["n", "atoms", "core atoms", "t(exact)", "t(Lemma 4.3)"],
        &rows,
    );

    println!("\nD-optimal decomposition on the star instance (Example C.2):");
    println!("paper: every width-1 HD has bound m; widening to width 2 reaches bound 1\n");
    let mut rows = Vec::new();
    for h in 1..=4usize {
        let q = star_query(h);
        let db = star_database(h);
        let (hd2, _) = star_decompositions(h);
        let fixed = degree_bound(&q, &db, &hd2);
        // Weighted search: minimize Σ (w+1)^{deg} over width-≤2 candidates.
        let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
        let atom_sets: Vec<NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let w = q.atoms().len() as u64;
        let q2 = q.clone();
        let db2 = db.clone();
        // The Theorem C.5 weight: v_D(p) = (w+1)^{deg_D(F, p)}.
        let cost = move |bag: &NodeSet, lam: &[usize]| {
            let mut acc = cqcount_relational::Bindings::unit();
            for &a in lam {
                acc = acc.join(&cqcount_query::canonical::atom_bindings(
                    &q2.atoms()[a],
                    &db2,
                ));
            }
            let view = acc.project(&bag.to_vec());
            let deg = view.degree_wrt(&free_cols) as u32;
            cqcount_arith::Natural::from(w + 1).pow(deg)
        };
        let ((opt_ht, _), t) = timed(|| {
            cqcount_decomp::d_optimal_decomposition(&q.hypergraph(), &atom_sets, 2, cost)
                .expect("decomposition exists")
        });
        let optimal = degree_bound(&q, &db, &opt_ht);
        rows.push(vec![
            h.to_string(),
            (1u64 << h).to_string(),
            fixed.to_string(),
            optimal.to_string(),
            opt_ht.width().to_string(),
            fmt_duration(t),
        ]);
    }
    print_table(
        &[
            "h",
            "m",
            "bound (width-1 HD2)",
            "bound (D-optimal)",
            "opt width",
            "t(search)",
        ],
        &rows,
    );
}

fn combos_upto(sets: &[NodeSet], k: usize) -> Vec<(NodeSet, Vec<usize>)> {
    let mut out = Vec::new();
    for (i, s) in sets.iter().enumerate() {
        out.push((s.clone(), vec![i]));
    }
    if k >= 2 {
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                out.push((sets[i].union(&sets[j]), vec![i, j]));
            }
        }
    }
    out
}

/// E10 — the Theorem 1.3 headline: fixed bounded-#-htw query, growing data.
fn e10() {
    banner(
        "E10",
        "Headline scaling: #-pipeline vs enumeration as |D| grows (Theorem 1.3)",
    );
    let mut rows = Vec::new();
    for factor in [1usize, 2, 4, 8, 16] {
        let scale = IntroScale {
            workers: 25 * factor,
            machines: 10 * factor,
            projects: 6 * factor,
            tasks: 15 * factor,
            subtasks_per_task: 4,
            resources: 8 * factor,
        };
        let (q, db) = intro_instance(&scale, 2026);
        let ((n, _), t_pipe) = timed(|| count_via_sharp_decomposition(&q, &db, 2).unwrap());
        let (n_b, t_brute) = timed(|| count_brute_force(&q, &db));
        let (n_j, t_join) = timed(|| count_via_full_join(&q, &db));
        assert!(n == n_b && n == n_j);
        rows.push(vec![
            db.total_tuples().to_string(),
            n.to_string(),
            fmt_duration(t_pipe),
            fmt_duration(t_brute),
            fmt_duration(t_join),
        ]);
    }
    print_table(
        &[
            "|D| (tuples)",
            "count",
            "t(#-pipeline)",
            "t(brute)",
            "t(full join)",
        ],
        &rows,
    );
}

/// E11 — ablations of design choices called out in DESIGN.md: the
/// connected-λ candidate ordering in the GHW search, and hypertree
/// normalization before evaluation.
fn e11() {
    banner(
        "E11",
        "Ablations: candidate ordering and decomposition normalization",
    );
    // (a) connected-λ-first ordering vs naive ordering: both find a width-2
    // witness for Q0; the witness quality differs, which shows up in the
    // pipeline's evaluation time (bag views built from disconnected λ are
    // cross products).
    let (q, db) = intro_instance(
        &IntroScale {
            workers: 100,
            machines: 40,
            projects: 24,
            tasks: 60,
            subtasks_per_task: 4,
            resources: 32,
        },
        2026,
    );
    let sd = sharp_hypertree_decomposition(&q, 2).expect("width 2");
    let atom_sets: Vec<NodeSet> = sd
        .qprime
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    // naive ordering: big bags first regardless of λ-connectivity
    let cover = {
        let hq = sd.qprime.hypergraph();
        hq.merge(&sd.frontier)
    };
    let combos = combos_upto(&atom_sets, 2);
    let naive_provider = move |conn: &NodeSet, comp: &NodeSet| {
        let allowed = conn.union(comp);
        let mut out = Vec::new();
        for (u, c) in &combos {
            let avail = u.intersection(&allowed);
            if !conn.is_subset(&avail) {
                continue;
            }
            let free: Vec<u32> = avail.difference(conn).to_vec();
            for mask in 1u32..(1 << free.len()) {
                let mut bag = conn.clone();
                for (j, &x) in free.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        bag.insert(x);
                    }
                }
                out.push((bag, c.clone()));
            }
        }
        out.sort_by_key(|(bag, _)| std::cmp::Reverse(bag.len()));
        out
    };
    let naive_ht = cqcount_decomp::decompose(&cover, naive_provider).expect("width 2 naive");
    let (n1, t_tuned) = timed(|| count_with_decomposition(&sd.qprime, &db, &sd.hypertree));
    let (n2, t_naive) = timed(|| {
        let mut qn = sd.clone();
        qn.hypertree = naive_ht.clone();
        count_with_decomposition(&sd.qprime, &db, &qn.hypertree)
    });
    assert_eq!(n1, n2);
    // (b) normalization: fewer vertices, same answer.
    let normalized = sd.hypertree.normalize();
    let (n3, t_norm) = timed(|| count_with_decomposition(&sd.qprime, &db, &normalized));
    assert_eq!(n1, n3);
    print_table(
        &["variant", "decomp vertices", "eval time", "count"],
        &[
            vec![
                "connected-λ ordering (default)".into(),
                sd.hypertree.len().to_string(),
                fmt_duration(t_tuned),
                n1.to_string(),
            ],
            vec![
                "naive size-first ordering".into(),
                naive_ht.len().to_string(),
                fmt_duration(t_naive),
                n2.to_string(),
            ],
            vec![
                "default + normalization".into(),
                normalized.len().to_string(),
                fmt_duration(t_norm),
                n3.to_string(),
            ],
        ],
    );
}

/// E12 — the extension features: answer enumeration with polynomial delay
/// (Section 1.1's companion problem) and union-of-CQ counting (the
/// follow-up line \[18,19\] in the paper's bibliography).
fn e12() {
    banner(
        "E12",
        "Extensions: polynomial-delay enumeration and union counting",
    );
    let (q, db) = intro_instance(&IntroScale::default(), 2026);
    let sd = sharp_hypertree_decomposition(&q, 2).unwrap();
    // Delay measurement: time to the first answer vs total enumeration.
    let mut first = None;
    let mut total_answers = 0u64;
    let (_, t_total) = timed(|| {
        let t0 = std::time::Instant::now();
        cqcount_core::enumerate::for_each_answer_with(&q, &db, &sd, |_| {
            if first.is_none() {
                first = Some(t0.elapsed());
            }
            total_answers += 1;
            true
        });
    });
    println!(
        "enumeration: {total_answers} answers, first after {}, all after {}",
        fmt_duration(first.unwrap_or_default()),
        fmt_duration(t_total)
    );
    let brute = count_brute_force(&q, &db);
    assert_eq!(cqcount_arith::Natural::from(total_answers), brute);
    println!("enumerated count equals brute-force count: {brute} ✓");

    // Union counting with inclusion–exclusion.
    let d1 = cqcount_query::parse_query("ans(B) :- wt(B, D), pt(C, D).").unwrap();
    let d2 = cqcount_query::parse_query("ans(B) :- mw(A, B, I).").unwrap();
    let u = cqcount_core::ucq::UnionQuery::new(vec![d1.clone(), d2.clone()]);
    let (n_union, t_union) = timed(|| cqcount_core::ucq::count_union(&u, &db));
    let c1 = count_brute_force(&d1, &db);
    let c2 = count_brute_force(&d2, &db);
    println!(
        "\nunion counting: |Q1| = {c1}, |Q2| = {c2}, |Q1 ∪ Q2| = {n_union} (in {})",
        fmt_duration(t_union)
    );
    assert!(n_union <= c1.clone() + c2.clone());
    assert!(n_union >= c1.clone().max(c2.clone()));
    println!("inclusion–exclusion bounds hold ✓");
}

/// E13 — the three classes of the trichotomy (Theorem 1.6), side by side:
/// (1) bounded #-htw (FPT/poly counting), (2) unbounded #-htw with bounded
/// frontier width (W[1]-equivalent — counting collapses to the decision
/// problem), (3) unbounded frontier width (#W[1]-hard).
fn e13() {
    banner(
        "E13",
        "The trichotomy's three classes side by side (Theorem 1.6)",
    );
    let g = random_graph(13, 0.5, 99);
    let db = g.to_database();
    println!("class 1 — chains Q1^n (bounded #-htw = 1): poly counting\n");
    let mut rows = Vec::new();
    for k in 2..=4usize {
        // class 1 representative: chain query (bounded #-htw)
        let q1 = chain_query(k);
        let w1 = sharp_hypertree_width(&q1, 2);
        // class 2 representative: BOOLEAN clique query (free = ∅): core is
        // the clique itself, frontier hypergraph is empty → bounded; #-htw
        // grows with k. Counting = deciding clique existence (0/1).
        let mut q2 = cqcount_workloads::graphs::clique_query(k);
        q2.set_free([]);
        let w2 = sharp_hypertree_width(&q2, k);
        let fh2 = cqcount_hypergraph::frontier_hypergraph(&q2.hypergraph(), &q2.free_nodes());
        // class 3 representative: free clique query: frontier hypergraph =
        // the clique itself → unbounded width; counting is #W[1]-hard.
        let q3 = cqcount_workloads::graphs::clique_query(k);
        let fh3 = cqcount_hypergraph::frontier_hypergraph(&q3.hypergraph(), &q3.free_nodes());
        let fh3_tw = cqcount_decomp::treewidth_exact(&fh3, k).map(|(w, _)| w);
        let (c2, t2) = timed(|| count_brute_force(&q2, &db));
        let (c3, t3) = timed(|| count_brute_force(&q3, &db));
        rows.push(vec![
            k.to_string(),
            format!("{w1:?}"),
            format!("{w2:?}"),
            fh2.num_edges().to_string(),
            format!("{c2} ({})", fmt_duration(t2)),
            format!("{fh3_tw:?}"),
            format!("{c3} ({})", fmt_duration(t3)),
        ]);
    }
    print_table(
        &[
            "k",
            "#-htw chain (cls 1)",
            "#-htw bool-clique (cls 2)",
            "frontier edges (cls 2)",
            "bool count (cls 2)",
            "frontier tw (cls 3)",
            "#answers (cls 3)",
        ],
        &rows,
    );
    println!(
        "\nclass 2's counts are always 0/1 (the decision problem); class 3's grow —\n\
         exactly the qualitative split the trichotomy proves."
    );
}
