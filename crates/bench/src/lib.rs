//! Shared helpers for the experiment harness and the benchmark binaries.

use std::time::{Duration, Instant};

/// One measured benchmark case.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Algorithm / variant label.
    pub algo: String,
    /// Scale parameter (rows, factor, …) as shown in the table.
    pub param: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
}

/// Measures a closure's median ns/op: calibrates the iteration count until
/// one batch takes ≳20 ms (cap 2²⁰ iterations), then takes the median of
/// five batches. Wrap benchmark results in [`std::hint::black_box`] inside
/// the closure to keep the optimizer honest.
pub fn bench_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up (fills caches, triggers lazy init)
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(20) || iters >= 1 << 20 {
            let mut samples = vec![dt.as_nanos() as f64 / iters as f64];
            for _ in 0..4 {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
            }
            samples.sort_by(f64::total_cmp);
            return samples[samples.len() / 2];
        }
        iters = iters.saturating_mul(2);
    }
}

/// A named group of benchmark cases, printed as a markdown table when
/// finished (the dependency-free replacement for a Criterion group).
pub struct BenchGroup {
    name: String,
    records: Vec<BenchRecord>,
}

impl BenchGroup {
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            records: Vec::new(),
        }
    }

    /// Runs one case and records its median ns/op.
    pub fn bench<T>(
        &mut self,
        algo: &str,
        param: impl std::fmt::Display,
        mut f: impl FnMut() -> T,
    ) {
        let ns = bench_ns(|| {
            std::hint::black_box(f());
        });
        self.records.push(BenchRecord {
            algo: algo.to_string(),
            param: param.to_string(),
            ns_per_op: ns,
        });
    }

    /// Prints the results table and hands back the raw records.
    pub fn finish(self) -> Vec<BenchRecord> {
        banner("bench", &self.name);
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    r.param.clone(),
                    fmt_duration(Duration::from_nanos(r.ns_per_op as u64)),
                    format!("{:.0}", r.ns_per_op),
                ]
            })
            .collect();
        print_table(&["algorithm", "param", "time/op", "ns/op"], &rows);
        self.records
    }
}

/// Times a closure once, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Formats a duration compactly for the experiment tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else if d.as_micros() >= 10 {
        format!("{}µs", d.as_micros())
    } else {
        format!("{}ns", d.as_nanos())
    }
}

/// Prints a markdown table: header row + separator + rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Section banner for experiment output.
pub fn banner(id: &str, title: &str) {
    println!("\n### {id}: {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn bench_group_records_cases() {
        let mut g = BenchGroup::new("smoke");
        g.bench("noop", 1, || std::hint::black_box(21 * 2));
        let records = g.finish();
        assert_eq!(records.len(), 1);
        assert!(records[0].ns_per_op >= 0.0);
    }
}
