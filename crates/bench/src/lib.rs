//! Shared helpers for the experiment harness and the Criterion benches.

use std::time::{Duration, Instant};

/// Times a closure once, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Formats a duration compactly for the experiment tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 10 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 10 {
        format!("{}ms", d.as_millis())
    } else if d.as_micros() >= 10 {
        format!("{}µs", d.as_micros())
    } else {
        format!("{}ns", d.as_nanos())
    }
}

/// Prints a markdown table: header row + separator + rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let body: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", body.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Section banner for experiment output.
pub fn banner(id: &str, title: &str) {
    println!("\n### {id}: {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
