//! Query and database families: every worked example of the paper as a
//! generator, a realistic rendition of the introduction's
//! machines/workers/projects scenario, random instances, and the graph
//! workloads behind the Section 5 reductions.

pub mod graphs;
pub mod intro;
pub mod paper;
pub mod random;

pub use graphs::{clique_query, count_cliques_direct, random_graph, Graph};
pub use intro::intro_instance;
pub use paper::{
    biclique_query, chain_query, hybrid_database, hybrid_query, q0_query, q1_cycle_query,
    star_database, star_query,
};
pub use random::{random_database, random_query, RandomCqConfig, RandomDbConfig};

/// The workspace PRNG (re-exported from `cqcount-arith` so workload users
/// can seed their own deterministic streams without another import).
pub use cqcount_arith::prng;
