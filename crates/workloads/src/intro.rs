//! A realistic rendition of the introduction's scenario (Example 1.1 /
//! Example 1.5): machines assigned to workers, workers on tasks, projects
//! made of tasks, subtasks and shared resources — with the degree profile
//! the paper motivates (each worker on few tasks, each project with few
//! main tasks, but many subtasks and resources).

use crate::paper::q0_query;
use cqcount_arith::prng::Rng;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::Database;

/// Scale knobs for [`intro_instance`].
#[derive(Clone, Debug)]
pub struct IntroScale {
    /// Number of workers.
    pub workers: usize,
    /// Number of machines.
    pub machines: usize,
    /// Number of projects.
    pub projects: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Subtasks per task.
    pub subtasks_per_task: usize,
    /// Resources per task (shared pool).
    pub resources: usize,
}

impl Default for IntroScale {
    fn default() -> Self {
        IntroScale {
            workers: 30,
            machines: 12,
            projects: 8,
            tasks: 20,
            subtasks_per_task: 5,
            resources: 10,
        }
    }
}

/// Generates `(Q0, D)`: the Example 1.1 query over a plausible instance.
/// Degree profile per Example 1.5: `deg(B, wt)` and `deg(C, pt)` stay small
/// (1–2 tasks per worker, 1–3 tasks per project) while subtasks and
/// resource requirements fan out.
pub fn intro_instance(scale: &IntroScale, seed: u64) -> (ConjunctiveQuery, Database) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new();

    // Machine assignments: each machine to 1..3 workers, with hours.
    for m in 0..scale.machines {
        let k = rng.range_usize(1, 4);
        for _ in 0..k {
            let w = rng.range_usize(0, scale.workers);
            let hours = rng.range_u32(1, 200);
            let row = vec![
                db.value(&format!("machine{m}")),
                db.value(&format!("worker{w}")),
                db.value(&format!("h{hours}")),
            ];
            db.add_tuple("mw", row);
        }
    }
    // Worker info (a key: one info row per worker).
    for w in 0..scale.workers {
        let row = vec![
            db.value(&format!("worker{w}")),
            db.value(&format!("info{w}")),
        ];
        db.add_tuple("wi", row);
    }
    // Worker→task: 1..2 tasks per worker (quasi-key, Example 1.5).
    for w in 0..scale.workers {
        let k = rng.range_usize(1, 3);
        for _ in 0..k {
            let t = rng.range_usize(0, scale.tasks);
            let row = vec![
                db.value(&format!("worker{w}")),
                db.value(&format!("task{t}")),
            ];
            db.add_tuple("wt", row);
        }
    }
    // Project→task: 1..3 main tasks per project.
    for p in 0..scale.projects {
        let k = rng.range_usize(1, 4);
        for _ in 0..k {
            let t = rng.range_usize(0, scale.tasks);
            let row = vec![
                db.value(&format!("project{p}")),
                db.value(&format!("task{t}")),
            ];
            db.add_tuple("pt", row);
        }
    }
    // Task→subtask: fan-out; subtasks are tasks too (st, and they require
    // resources via rr).
    for t in 0..scale.tasks {
        for s in 0..scale.subtasks_per_task {
            let row = vec![
                db.value(&format!("task{t}")),
                db.value(&format!("sub{t}_{s}")),
            ];
            db.add_tuple("st", row);
        }
    }
    // Resource requirements: every task and subtask requires 1..3 resources;
    // to give Q0 solutions, a task and its subtasks share one resource.
    for t in 0..scale.tasks {
        let shared = rng.range_usize(0, scale.resources);
        let task = format!("task{t}");
        let res = format!("res{shared}");
        let row = vec![db.value(&task), db.value(&res)];
        db.add_tuple("rr", row);
        for s in 0..scale.subtasks_per_task {
            let sub = format!("sub{t}_{s}");
            let row = vec![db.value(&sub), db.value(&res)];
            db.add_tuple("rr", row);
            // plus some noise resources
            if rng.chance(0.4) {
                let extra = rng.range_usize(0, scale.resources);
                let row = vec![db.value(&sub), db.value(&format!("res{extra}"))];
                db.add_tuple("rr", row);
            }
        }
    }

    (q0_query(), db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_is_deterministic_and_nonempty() {
        let (q, db) = intro_instance(&IntroScale::default(), 7);
        let (_, db2) = intro_instance(&IntroScale::default(), 7);
        assert_eq!(db.total_tuples(), db2.total_tuples());
        assert_eq!(q.atoms().len(), 9);
        for rel in ["mw", "wt", "wi", "pt", "st", "rr"] {
            assert!(
                db.relation(rel).is_some_and(|r| !r.is_empty()),
                "{rel} empty"
            );
        }
    }

    #[test]
    fn degree_profile_matches_example_1_5() {
        let (_, db) = intro_instance(&IntroScale::default(), 7);
        // wt: ≤ 2 tasks per worker; pt: ≤ 3 tasks per project.
        use cqcount_relational::{Bindings, ColTerm};
        let wt = Bindings::from_atom(
            db.relation("wt").unwrap(),
            &[ColTerm::Var(0), ColTerm::Var(1)],
        );
        assert!(wt.degree_wrt(&[0]) <= 2);
        let pt = Bindings::from_atom(
            db.relation("pt").unwrap(),
            &[ColTerm::Var(0), ColTerm::Var(1)],
        );
        assert!(pt.degree_wrt(&[0]) <= 3);
    }

    #[test]
    fn instance_has_solutions() {
        let (q, db) = intro_instance(&IntroScale::default(), 7);
        let mut found = false;
        cqcount_query::hom::for_each_homomorphism_to_db(&q, &db, |_| {
            found = true;
            false
        });
        assert!(found, "the generated instance should admit solutions");
    }
}
