//! The paper's worked-example families, as parameterized generators.

use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::Database;

fn t(v: Var) -> Term {
    Term::Var(v)
}

/// Example 1.1: the running query `Q0` over the machines/workers/projects
/// schema, with `free(Q0) = {A, B, C}`.
pub fn q0_query() -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let (a, b, c) = (q.var("A"), q.var("B"), q.var("C"));
    let (d, e, f) = (q.var("D"), q.var("E"), q.var("F"));
    let (g, h, i) = (q.var("G"), q.var("H"), q.var("I"));
    q.add_atom("mw", vec![t(a), t(b), t(i)]);
    q.add_atom("wt", vec![t(b), t(d)]);
    q.add_atom("wi", vec![t(b), t(e)]);
    q.add_atom("pt", vec![t(c), t(d)]);
    q.add_atom("st", vec![t(d), t(f)]);
    q.add_atom("st", vec![t(d), t(g)]);
    q.add_atom("rr", vec![t(g), t(h)]);
    q.add_atom("rr", vec![t(f), t(h)]);
    q.add_atom("rr", vec![t(d), t(h)]);
    q.set_free([a, b, c]);
    q
}

/// Example 4.1: the 4-cycle `Q1 = ∃B,D s1(A,B) ∧ s2(B,C) ∧ s3(C,D) ∧
/// s4(D,A)` with `free = {A, C}`. Its `#`-hypertree width is 2 (Figure 8).
pub fn q1_cycle_query() -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let (a, b, c, d) = (q.var("A"), q.var("B"), q.var("C"), q.var("D"));
    q.add_atom("s1", vec![t(a), t(b)]);
    q.add_atom("s2", vec![t(b), t(c)]);
    q.add_atom("s3", vec![t(c), t(d)]);
    q.add_atom("s4", vec![t(d), t(a)]);
    q.set_free([a, c]);
    q
}

/// Example A.2: the chain family `Q1ⁿ` with atoms `r(Xᵢ,Yᵢ)`,
/// `r(Xᵢ,Xᵢ₊₁)`, `r(Yᵢ,Yᵢ₊₁)` and `free = {X₁..Xₙ}`. Quantified star size
/// `⌈n/2⌉` (unbounded in `n`) yet `#`-hypertree width 1 after coring.
pub fn chain_query(n: usize) -> ConjunctiveQuery {
    assert!(n >= 1);
    let mut q = ConjunctiveQuery::new();
    let xs: Vec<Var> = (1..=n).map(|i| q.var(&format!("X{i}"))).collect();
    let ys: Vec<Var> = (1..=n).map(|i| q.var(&format!("Y{i}"))).collect();
    for i in 0..n {
        q.add_atom("r", vec![t(xs[i]), t(ys[i])]);
    }
    for i in 0..n - 1 {
        q.add_atom("r", vec![t(xs[i]), t(xs[i + 1])]);
        q.add_atom("r", vec![t(ys[i]), t(ys[i + 1])]);
    }
    q.set_free(xs);
    q
}

/// Appendix A: the biclique family `Q2ⁿ = ∃X̄,Ȳ ⋀ᵢⱼ r(Xᵢ, Yⱼ)` with no free
/// variables. Generalized hypertree width `n`, `#`-hypertree width 1 (the
/// core is a single atom).
pub fn biclique_query(n: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let xs: Vec<Var> = (0..n).map(|i| q.var(&format!("X{i}"))).collect();
    let ys: Vec<Var> = (0..n).map(|i| q.var(&format!("Y{i}"))).collect();
    for &x in &xs {
        for &y in &ys {
            q.add_atom("r", vec![t(x), t(y)]);
        }
    }
    q.set_free([]);
    q
}

/// Example C.1: the star query
/// `Q2ʰ = ∃Ȳ r(X₀,Y₁..Yₕ) ∧ s(Y₀,Y₁..Yₕ) ∧ ⋀ᵢ wᵢ(Xᵢ,Yᵢ)` with
/// `free = {X₀..Xₕ}`. Acyclic (hypertree width 1), `#`-hypertree width
/// `h+1` (the frontier is the full set of free variables).
pub fn star_query(h: usize) -> ConjunctiveQuery {
    assert!(h >= 1);
    let mut q = ConjunctiveQuery::new();
    let x0 = q.var("X0");
    let xs: Vec<Var> = (1..=h).map(|i| q.var(&format!("X{i}"))).collect();
    let y0 = q.var("Y0");
    let ys: Vec<Var> = (1..=h).map(|i| q.var(&format!("Y{i}"))).collect();
    let mut r_terms = vec![t(x0)];
    r_terms.extend(ys.iter().map(|&y| t(y)));
    q.add_atom("r", r_terms);
    let mut s_terms = vec![t(y0)];
    s_terms.extend(ys.iter().map(|&y| t(y)));
    q.add_atom("s", s_terms);
    for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        q.add_atom(&format!("w{}", i + 1), vec![t(x), t(y)]);
    }
    let mut free = vec![x0];
    free.extend(xs);
    q.set_free(free);
    q
}

/// The database `D₂` of Example C.1/C.2 (Figure 12(b)): the `Y` columns
/// enumerate the binary encodings of `0..2ʰ`, `X₀` keys `r`, and each `wᵢ`
/// maps two constants onto the two bit values. `bound(D₂, HD₂) = 2ʰ` for
/// the width-1 decomposition rooted at `r` (relation `s` has `2ʰ`
/// extensions of the empty free tuple), yet merging `r` and `s` into one
/// vertex drops the degree to 1 (Example C.2).
pub fn star_database(h: usize) -> Database {
    let m = 1usize << h;
    let mut db = Database::new();
    for i in 0..m {
        let bits: Vec<_> = (0..h)
            .map(|j| db.value(&format!("b{}", (i >> j) & 1)))
            .collect();
        let mut r_row = vec![db.value(&format!("x{i}"))];
        r_row.extend(bits.iter().copied());
        db.add_tuple("r", r_row);
        let mut s_row = vec![db.value(&format!("y{i}"))];
        s_row.extend(bits);
        db.add_tuple("s", s_row);
    }
    for j in 1..=h {
        for bit in 0..2u32 {
            let row = vec![
                db.value(&format!("u{j}_{bit}")),
                db.value(&format!("b{bit}")),
            ];
            db.add_tuple(&format!("w{j}"), row);
        }
    }
    db
}

/// The number of answers of `star_query(h)` on `star_database(h)`: each of
/// the `2ʰ` values of `X₀` extends uniquely.
pub fn star_expected_count(h: usize) -> u64 {
    1u64 << h
}

/// Example 6.3: the hybrid family
/// `Q̄2ʰ = ∃Ȳ,Z r̄(X₀,Y₁..Yₕ,Z) ∧ s(Y₀..Yₕ) ∧ ⋀ᵢ wᵢ(Xᵢ,Yᵢ) ∧ v(Z,X₁)`.
/// Unbounded `#`-generalized hypertree width as a class (the frontier is a
/// clique on all free variables) and degree value `m` for every plain
/// decomposition — yet a width-2 `#₁`-hypertree decomposition exists with
/// `S̄ = free ∪ {Y₀..Yₕ}` (Example 6.5).
pub fn hybrid_query(h: usize) -> ConjunctiveQuery {
    assert!(h >= 1);
    let mut q = ConjunctiveQuery::new();
    let x0 = q.var("X0");
    let xs: Vec<Var> = (1..=h).map(|i| q.var(&format!("X{i}"))).collect();
    let y0 = q.var("Y0");
    let ys: Vec<Var> = (1..=h).map(|i| q.var(&format!("Y{i}"))).collect();
    let z = q.var("Z");
    let mut r_terms = vec![t(x0)];
    r_terms.extend(ys.iter().map(|&y| t(y)));
    r_terms.push(t(z));
    q.add_atom("rbar", r_terms);
    let mut s_terms = vec![t(y0)];
    s_terms.extend(ys.iter().map(|&y| t(y)));
    q.add_atom("s", s_terms);
    for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        q.add_atom(&format!("w{}", i + 1), vec![t(x), t(y)]);
    }
    q.add_atom("v", vec![t(z), t(xs[0])]);
    let mut free = vec![x0];
    free.extend(xs);
    q.set_free(free);
    q
}

/// The database `D̄2ᵐ` of Example 6.3 with `m = 2ʰ` values for `Z`.
pub fn hybrid_database(h: usize) -> Database {
    hybrid_database_scaled(h, 1usize << h)
}

/// Example 6.3 decoupled: `D̄2` with an independent `Z`-domain size
/// (the example's class ranges over all pairs `(h, m)`). Like
/// [`star_database`], but `r̄` carries an extra `Z` column ranging over all
/// `z_count` values (so every answer has `z_count` extensions to `Z`), and
/// `v(Z, X₁)` pairs every `Z` with every `X₁`-value. Growing `z_count`
/// grows the data — and the cost of enumeration — while the number of
/// answers stays `2ʰ`.
pub fn hybrid_database_scaled(h: usize, z_count: usize) -> Database {
    let m = 1usize << h;
    let mut db = Database::new();
    for i in 0..m {
        let bits: Vec<_> = (0..h)
            .map(|j| db.value(&format!("b{}", (i >> j) & 1)))
            .collect();
        for zj in 0..z_count {
            let mut row = vec![db.value(&format!("x{i}"))];
            row.extend(bits.iter().copied());
            row.push(db.value(&format!("z{zj}")));
            db.add_tuple("rbar", row);
        }
        let mut s_row = vec![db.value(&format!("y{i}"))];
        s_row.extend(bits);
        db.add_tuple("s", s_row);
    }
    for j in 1..=h {
        for bit in 0..2u32 {
            let row = vec![
                db.value(&format!("u{j}_{bit}")),
                db.value(&format!("b{bit}")),
            ];
            db.add_tuple(&format!("w{j}"), row);
        }
    }
    for zj in 0..z_count {
        for bit in 0..2u32 {
            let row = vec![db.value(&format!("z{zj}")), db.value(&format!("u1_{bit}"))];
            db.add_tuple("v", row);
        }
    }
    db
}

/// The number of answers of `hybrid_query(h)` on `hybrid_database(h)`:
/// `2ʰ` (each `X₀` forces the bits; `Z` is projected away).
pub fn hybrid_expected_count(h: usize) -> u64 {
    1u64 << h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q0_shape() {
        let q = q0_query();
        assert_eq!(q.atoms().len(), 9);
        assert_eq!(q.free().len(), 3);
    }

    #[test]
    fn chain_shapes() {
        for n in 1..=4 {
            let q = chain_query(n);
            assert_eq!(q.atoms().len(), n + 2 * (n - 1));
            assert_eq!(q.free().len(), n);
        }
    }

    #[test]
    fn biclique_shape() {
        let q = biclique_query(3);
        assert_eq!(q.atoms().len(), 9);
        assert!(q.free().is_empty());
    }

    #[test]
    fn star_instances_count_correctly() {
        use cqcount_query::hom::enumerate_homomorphisms_to_db;
        for h in 1..=3 {
            let q = star_query(h);
            let db = star_database(h);
            // distinct free projections == homomorphism count here
            // (extensions are unique), both equal 2^h.
            let homs = enumerate_homomorphisms_to_db(&q, &db);
            assert_eq!(homs.len() as u64, star_expected_count(h), "h = {h}");
        }
    }

    #[test]
    fn hybrid_instances_have_m_answers_with_m_z_extensions() {
        use cqcount_query::hom::enumerate_homomorphisms_to_db;
        let h = 2;
        let q = hybrid_query(h);
        let db = hybrid_database(h);
        let homs = enumerate_homomorphisms_to_db(&q, &db);
        let m = 1usize << h;
        // every answer has exactly m extensions to Z
        assert_eq!(homs.len(), m * m);
        let free: Vec<_> = q.free().into_iter().collect();
        let distinct: std::collections::HashSet<Vec<_>> = homs
            .iter()
            .map(|hm| free.iter().map(|v| hm[v]).collect())
            .collect();
        assert_eq!(distinct.len() as u64, hybrid_expected_count(h));
    }
}
