//! Seeded random conjunctive queries and databases (for sweeps, benches,
//! and the headline scaling experiment).

use cqcount_arith::prng::Rng;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;

/// Shape of a random conjunctive query.
#[derive(Clone, Debug)]
pub struct RandomCqConfig {
    /// Number of atoms.
    pub atoms: usize,
    /// Number of variables to draw from.
    pub vars: usize,
    /// Maximum atom arity (min 1).
    pub max_arity: usize,
    /// Number of distinct relation symbols per arity bucket.
    pub rels: usize,
    /// Probability that a variable is free.
    pub free_prob: f64,
}

impl Default for RandomCqConfig {
    fn default() -> Self {
        RandomCqConfig {
            atoms: 5,
            vars: 6,
            max_arity: 3,
            rels: 3,
            free_prob: 0.5,
        }
    }
}

/// Shape of a random database for a query.
#[derive(Clone, Debug)]
pub struct RandomDbConfig {
    /// Domain size.
    pub domain: usize,
    /// Tuples per relation.
    pub tuples_per_rel: usize,
}

impl Default for RandomDbConfig {
    fn default() -> Self {
        RandomDbConfig {
            domain: 6,
            tuples_per_rel: 12,
        }
    }
}

/// Generates a random connected-ish query. Relation names are
/// arity-qualified (`r<idx>a<arity>`) so symbols repeat across atoms of the
/// same shape (exercising the non-simple-query machinery) without arity
/// conflicts.
pub fn random_query(cfg: &RandomCqConfig, seed: u64) -> ConjunctiveQuery {
    let mut rng = Rng::seed_from_u64(seed);
    let mut q = ConjunctiveQuery::new();
    let vars: Vec<_> = (0..cfg.vars).map(|i| q.var(&format!("V{i}"))).collect();
    for _ in 0..cfg.atoms {
        let arity = rng.range_usize(1, cfg.max_arity + 1);
        let rel = rng.range_usize(0, cfg.rels);
        let terms: Vec<Term> = (0..arity)
            .map(|_| Term::Var(vars[rng.range_usize(0, vars.len())]))
            .collect();
        q.add_atom(&format!("r{rel}a{arity}"), terms);
    }
    let free: Vec<_> = vars
        .iter()
        .filter(|_| rng.chance(cfg.free_prob))
        .copied()
        .collect();
    q.set_free(free);
    q
}

/// Generates a seeded cyclic query with exactly `atoms` atoms, sized for
/// planner stress tests: a binary-atom 4-cycle backbone (so the
/// hypergraph is cyclic and the width is ≥ 2) plus `atoms - 4` wide
/// "satellite" atoms — each anchored on two adjacent cycle variables and
/// carrying 4–6 private existential variables, the star-schema shape
/// where fact tables fan out from a small set of shared dimensions. Every
/// other cycle variable is free, so the frontier hypergraph is
/// non-trivial. The private variables make the satellites' pairwise
/// unions large *and* distinct, which is the regime where a planner that
/// materializes every candidate bag per block does combinatorially more
/// work than one that streams them. Relation symbols are pairwise
/// distinct, which makes the query rigid — its core is the whole query —
/// so a width-search benchmark over these measures the decomposition
/// engine, not the core computation.
pub fn random_cyclic_query(atoms: usize, seed: u64) -> ConjunctiveQuery {
    const CYCLE: usize = 4;
    assert!(atoms > CYCLE, "need more than {CYCLE} atoms, got {atoms}");
    let mut rng = Rng::seed_from_u64(seed);
    let mut q = ConjunctiveQuery::new();
    let cyc: Vec<_> = (0..CYCLE).map(|i| q.var(&format!("X{i}"))).collect();
    for i in 0..CYCLE {
        q.add_atom(
            &format!("e{i}"),
            vec![Term::Var(cyc[i]), Term::Var(cyc[(i + 1) % CYCLE])],
        );
    }
    for t in 0..atoms - CYCLE {
        let a = rng.range_usize(0, CYCLE);
        let arity = 6 + rng.range_usize(0, 3);
        let mut terms = vec![Term::Var(cyc[a]), Term::Var(cyc[(a + 1) % CYCLE])];
        for j in 0..arity - 2 {
            terms.push(Term::Var(q.var(&format!("P{t}_{j}"))));
        }
        q.add_atom(&format!("t{t}"), terms);
    }
    q.set_free(cyc.iter().copied().step_by(2));
    q
}

/// Generates a database matching `q`'s relations, with `tuples_per_rel`
/// random tuples each over a domain of the given size.
pub fn random_database(q: &ConjunctiveQuery, cfg: &RandomDbConfig, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::BTreeSet::new();
    for a in q.atoms() {
        if !seen.insert(a.rel.clone()) {
            continue;
        }
        db.ensure_relation(&a.rel, a.terms.len());
        for _ in 0..cfg.tuples_per_rel {
            let row: Vec<_> = (0..a.terms.len())
                .map(|_| db.value(&format!("c{}", rng.range_usize(0, cfg.domain))))
                .collect();
            db.add_tuple(&a.rel, row);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = RandomCqConfig::default();
        let a = random_query(&cfg, 5);
        let b = random_query(&cfg, 5);
        assert_eq!(a.atoms(), b.atoms());
        assert_eq!(a.free(), b.free());
        let c = random_query(&cfg, 6);
        assert!(a.atoms() != c.atoms() || a.free() != c.free());
    }

    #[test]
    fn database_aligns_with_query() {
        let q = random_query(&RandomCqConfig::default(), 5);
        let db = random_database(&q, &RandomDbConfig::default(), 9);
        for a in q.atoms() {
            let rel = db.relation(&a.rel).expect("relation exists");
            assert_eq!(rel.arity(), a.terms.len());
            assert!(!rel.is_empty());
        }
    }

    #[test]
    fn cyclic_queries_are_cyclic_and_deterministic() {
        for atoms in [8usize, 12, 16] {
            let q = random_cyclic_query(atoms, 7);
            assert_eq!(q.atoms().len(), atoms);
            assert!(!cqcount_hypergraph::is_acyclic(&q.hypergraph()), "{atoms}");
            assert!(!q.free().is_empty());
            let again = random_cyclic_query(atoms, 7);
            assert_eq!(q.atoms(), again.atoms());
            assert_eq!(q.free(), again.free());
        }
    }

    #[test]
    fn arity_qualified_names_never_conflict() {
        for seed in 0..20 {
            let q = random_query(&RandomCqConfig::default(), seed);
            let _ = random_database(&q, &RandomDbConfig::default(), seed);
        }
    }
}
