//! Seeded random conjunctive queries and databases (for sweeps, benches,
//! and the headline scaling experiment).

use cqcount_arith::prng::Rng;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;

/// Shape of a random conjunctive query.
#[derive(Clone, Debug)]
pub struct RandomCqConfig {
    /// Number of atoms.
    pub atoms: usize,
    /// Number of variables to draw from.
    pub vars: usize,
    /// Maximum atom arity (min 1).
    pub max_arity: usize,
    /// Number of distinct relation symbols per arity bucket.
    pub rels: usize,
    /// Probability that a variable is free.
    pub free_prob: f64,
}

impl Default for RandomCqConfig {
    fn default() -> Self {
        RandomCqConfig {
            atoms: 5,
            vars: 6,
            max_arity: 3,
            rels: 3,
            free_prob: 0.5,
        }
    }
}

/// Shape of a random database for a query.
#[derive(Clone, Debug)]
pub struct RandomDbConfig {
    /// Domain size.
    pub domain: usize,
    /// Tuples per relation.
    pub tuples_per_rel: usize,
}

impl Default for RandomDbConfig {
    fn default() -> Self {
        RandomDbConfig {
            domain: 6,
            tuples_per_rel: 12,
        }
    }
}

/// Generates a random connected-ish query. Relation names are
/// arity-qualified (`r<idx>a<arity>`) so symbols repeat across atoms of the
/// same shape (exercising the non-simple-query machinery) without arity
/// conflicts.
pub fn random_query(cfg: &RandomCqConfig, seed: u64) -> ConjunctiveQuery {
    let mut rng = Rng::seed_from_u64(seed);
    let mut q = ConjunctiveQuery::new();
    let vars: Vec<_> = (0..cfg.vars).map(|i| q.var(&format!("V{i}"))).collect();
    for _ in 0..cfg.atoms {
        let arity = rng.range_usize(1, cfg.max_arity + 1);
        let rel = rng.range_usize(0, cfg.rels);
        let terms: Vec<Term> = (0..arity)
            .map(|_| Term::Var(vars[rng.range_usize(0, vars.len())]))
            .collect();
        q.add_atom(&format!("r{rel}a{arity}"), terms);
    }
    let free: Vec<_> = vars
        .iter()
        .filter(|_| rng.chance(cfg.free_prob))
        .copied()
        .collect();
    q.set_free(free);
    q
}

/// Generates a database matching `q`'s relations, with `tuples_per_rel`
/// random tuples each over a domain of the given size.
pub fn random_database(q: &ConjunctiveQuery, cfg: &RandomDbConfig, seed: u64) -> Database {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut seen = std::collections::BTreeSet::new();
    for a in q.atoms() {
        if !seen.insert(a.rel.clone()) {
            continue;
        }
        db.ensure_relation(&a.rel, a.terms.len());
        for _ in 0..cfg.tuples_per_rel {
            let row: Vec<_> = (0..a.terms.len())
                .map(|_| db.value(&format!("c{}", rng.range_usize(0, cfg.domain))))
                .collect();
            db.add_tuple(&a.rel, row);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = RandomCqConfig::default();
        let a = random_query(&cfg, 5);
        let b = random_query(&cfg, 5);
        assert_eq!(a.atoms(), b.atoms());
        assert_eq!(a.free(), b.free());
        let c = random_query(&cfg, 6);
        assert!(a.atoms() != c.atoms() || a.free() != c.free());
    }

    #[test]
    fn database_aligns_with_query() {
        let q = random_query(&RandomCqConfig::default(), 5);
        let db = random_database(&q, &RandomDbConfig::default(), 9);
        for a in q.atoms() {
            let rel = db.relation(&a.rel).expect("relation exists");
            assert_eq!(rel.arity(), a.terms.len());
            assert!(!rel.is_empty());
        }
    }

    #[test]
    fn arity_qualified_names_never_conflict() {
        for seed in 0..20 {
            let q = random_query(&RandomCqConfig::default(), seed);
            let _ = random_database(&q, &RandomDbConfig::default(), seed);
        }
    }
}
