//! Graph workloads for the Section 5 reductions: random graphs, clique
//! queries and direct clique counting (the ground truth for
//! `#Clique → #CQ`).

use cqcount_arith::prng::Rng;
use cqcount_arith::Natural;
use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::Database;

/// A simple undirected graph on `0..n`.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges `u < v`, deduplicated.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Adjacency test.
    pub fn adjacent(&self, u: u32, v: u32) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&(a, b))
    }

    /// The symmetric edge relation as a database (`e(u,v)` and `e(v,u)`).
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        db.ensure_relation("e", 2);
        for &(u, v) in &self.edges {
            let a = db.value(&format!("n{u}"));
            let b = db.value(&format!("n{v}"));
            db.add_tuple("e", vec![a, b]);
            db.add_tuple("e", vec![b, a]);
        }
        db
    }
}

/// An Erdős–Rényi graph `G(n, p)`, seeded.
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            if rng.chance(p) {
                edges.push((u, v));
            }
        }
    }
    Graph { n, edges }
}

/// The clique query: `ans(X₁..Xₖ) :- ⋀_{i<j} e(Xᵢ, Xⱼ)`. On a loop-free
/// symmetric edge relation its answers are exactly the ordered `k`-cliques,
/// so `count = (#cliques) · k!`. This is the query family of the Section 5
/// hardness reductions (unbounded treewidth as `k` grows).
pub fn clique_query(k: usize) -> ConjunctiveQuery {
    assert!(k >= 2);
    let mut q = ConjunctiveQuery::new();
    let xs: Vec<Var> = (1..=k).map(|i| q.var(&format!("X{i}"))).collect();
    for i in 0..k {
        for j in i + 1..k {
            q.add_atom("e", vec![Term::Var(xs[i]), Term::Var(xs[j])]);
        }
    }
    q.set_free(xs);
    q
}

/// Counts `k`-cliques directly by ordered backtracking over ascending
/// vertex tuples — the independent ground truth.
pub fn count_cliques_direct(g: &Graph, k: usize) -> Natural {
    fn extend(g: &Graph, clique: &mut Vec<u32>, k: usize, count: &mut u64) {
        if clique.len() == k {
            *count += 1;
            return;
        }
        let start = clique.last().map_or(0, |&l| l + 1);
        for v in start..g.n as u32 {
            if clique.iter().all(|&u| g.adjacent(u, v)) {
                clique.push(v);
                extend(g, clique, k, count);
                clique.pop();
            }
        }
    }
    let mut count = 0;
    extend(g, &mut Vec::new(), k, &mut count);
    Natural::from(count)
}

/// `k!` as a [`Natural`] (ordered vs unordered clique conversion).
pub fn factorial(k: usize) -> Natural {
    (1..=k as u64).map(Natural::from).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph {
            n: 4,
            edges: vec![(0, 1), (0, 2), (1, 2), (2, 3)],
        }
    }

    #[test]
    fn direct_clique_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(count_cliques_direct(&g, 2), Natural::from(4u64)); // edges
        assert_eq!(count_cliques_direct(&g, 3), Natural::from(1u64)); // triangle
        assert_eq!(count_cliques_direct(&g, 4), Natural::ZERO);
    }

    #[test]
    fn clique_query_counts_ordered_cliques() {
        use cqcount_query::hom::enumerate_homomorphisms_to_db;
        let g = triangle_plus_pendant();
        let db = g.to_database();
        for k in 2..=3 {
            let q = clique_query(k);
            let homs = enumerate_homomorphisms_to_db(&q, &db);
            let expected = count_cliques_direct(&g, k) * factorial(k);
            assert_eq!(Natural::from(homs.len()), expected, "k = {k}");
        }
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph(10, 0.5, 42);
        let b = random_graph(10, 0.5, 42);
        assert_eq!(a.edges, b.edges);
        let c = random_graph(10, 0.5, 43);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn density_extremes() {
        assert!(random_graph(8, 0.0, 1).edges.is_empty());
        assert_eq!(random_graph(8, 1.0, 1).edges.len(), 28);
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), Natural::ONE);
        assert_eq!(factorial(4), Natural::from(24u64));
    }
}
