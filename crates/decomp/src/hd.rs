//! *Hypertree decompositions* proper (\[36\]; Appendix C of the paper):
//! generalized hypertree decompositions that additionally satisfy the
//! descendant condition `vars(λ(p)) ∩ χ(T_p) ⊆ χ(p)` — the class for which
//! width-`k` membership is decidable in polynomial time and over whose
//! normal forms D-optimal decompositions are computable (Theorem C.5).
//!
//! The search is det-k-decomp-style: in the block recursion, the bag of a
//! vertex handling block `(C, conn)` is *forced* to
//! `χ(p) = vars(λ(p)) ∩ (conn ∪ C)` for a guard `λ(p)` of at most `k`
//! resource edges with `conn ⊆ χ(p)`. Because every bag below the vertex
//! stays inside `C ∪ conn`, the descendant condition holds by construction;
//! normal-form completeness is the classical result of \[36\].

use crate::ghw::combinations_upto;
use crate::tp::{decompose, Candidate};
use crate::weighted::decompose_min_cost;
use crate::Hypertree;
use cqcount_arith::Natural;
use cqcount_hypergraph::{Hypergraph, NodeSet};

fn hd_candidates(
    resources: Vec<NodeSet>,
    k: usize,
) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
    let combos: Vec<(NodeSet, Vec<usize>)> = combinations_upto(resources.len(), k)
        .into_iter()
        .map(|combo| {
            let mut u = NodeSet::new();
            for &i in &combo {
                u.union_with(&resources[i]);
            }
            (u, combo)
        })
        .collect();
    move |conn, comp| {
        let allowed = conn.union(comp);
        let mut out: Vec<Candidate> = Vec::new();
        for (u, combo) in &combos {
            // Normal form: the bag is exactly the guard's variables inside
            // the block.
            let bag = u.intersection(&allowed);
            if !conn.is_subset(&bag) || !bag.intersects(comp) {
                continue;
            }
            out.push((bag, combo.clone()));
        }
        // Fewer guard atoms first (cheaper bags), then larger coverage.
        out.sort_by_key(|(bag, lam)| (lam.len(), std::cmp::Reverse(bag.len())));
        out
    }
}

/// Searches for a width-`k` hypertree decomposition (normal form, with the
/// descendant condition) of `cover` using `resources` as guards.
pub fn hypertree_width_at_most(
    cover: &Hypergraph,
    resources: &[NodeSet],
    k: usize,
) -> Option<Hypertree> {
    let ht = decompose(cover, hd_candidates(resources.to_vec(), k))?;
    debug_assert!(ht.satisfies_descendant_condition(resources));
    Some(ht)
}

/// The exact hypertree width of `cover` w.r.t. `resources`, searched up to
/// `max_k`, with a witness.
pub fn hypertree_width_exact(
    cover: &Hypergraph,
    resources: &[NodeSet],
    max_k: usize,
) -> Option<(usize, Hypertree)> {
    (1..=max_k).find_map(|k| hypertree_width_at_most(cover, resources, k).map(|ht| (k, ht)))
}

/// D-optimal decompositions over the normal-form class `C_k^nf`
/// (Theorem C.5): finds the width-≤`k` normal-form hypertree decomposition
/// minimizing the additive vertex cost `cost(χ(p), λ(p))` — with the
/// paper's weight `v_D(p) = (w+1)^{deg_D(F, p)}`, the result minimizes the
/// maximum degree `bound(D, HD)`.
pub fn d_optimal_decomposition<G>(
    cover: &Hypergraph,
    resources: &[NodeSet],
    k: usize,
    cost: G,
) -> Option<(Hypertree, Natural)>
where
    G: FnMut(&NodeSet, &[usize]) -> Natural,
{
    decompose_min_cost(cover, hd_candidates(resources.to_vec(), k), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghw::ghw_exact;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn acyclic_has_hw_1() {
        let g = h(&[&[0, 1], &[1, 2], &[1, 3, 4]]);
        let (w, ht) = hypertree_width_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 1);
        assert!(ht.verify_ghd(&g, g.edges()));
        assert!(ht.satisfies_descendant_condition(g.edges()));
    }

    #[test]
    fn cycle_has_hw_2() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let (w, ht) = hypertree_width_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.satisfies_descendant_condition(g.edges()));
    }

    #[test]
    fn q0_has_hw_2() {
        let g = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[3, 6],
            &[6, 7],
            &[5, 7],
            &[3, 7],
        ]);
        let (w, ht) = hypertree_width_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.verify_ghd(&g, g.edges()));
        assert!(ht.satisfies_descendant_condition(g.edges()));
    }

    #[test]
    fn hw_at_least_ghw() {
        // hw ≥ ghw on a batch of deterministic hypergraphs.
        let cases = [
            h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0], &[0, 2]]),
            h(&[&[0, 1, 2], &[2, 3, 4], &[4, 5, 0]]),
            h(&[&[0, 1], &[1, 2], &[2, 0], &[2, 3], &[3, 4], &[4, 2]]),
        ];
        for (i, g) in cases.iter().enumerate() {
            let (ghw, _) = ghw_exact(g, g.edges(), 6).unwrap();
            let (hw, ht) = hypertree_width_exact(g, g.edges(), 6).unwrap();
            assert!(hw >= ghw, "case {i}: hw {hw} < ghw {ghw}");
            assert!(hw <= 3 * ghw + 1, "case {i}: hw way beyond the 3k+1 bound");
            assert!(ht.satisfies_descendant_condition(g.edges()));
        }
    }

    #[test]
    fn d_optimal_prefers_cheap_guards() {
        // Path 0-1-2: cost = index of the guard atom + 1 summed; minimizing
        // prefers single-atom guards.
        let g = h(&[&[0, 1], &[1, 2]]);
        let (ht, cost) = d_optimal_decomposition(&g, g.edges(), 2, |_, lam| {
            lam.iter().map(|&i| Natural::from(i as u64 + 1)).sum()
        })
        .unwrap();
        assert!(ht.covers_all_edges(&g));
        // best: one vertex guarded by atom0 + one by atom1 = 1 + 2 = 3,
        // or a single vertex guarded by both = 3; either way cost 3.
        assert_eq!(cost, Natural::from(3u64));
    }

    #[test]
    fn infeasible_bound() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 0]]);
        assert!(hypertree_width_at_most(&g, g.edges(), 1).is_none());
    }
}
