//! Minimum-cost decompositions (weighted hypertree decompositions, \[60\]),
//! the engine behind D-optimal decompositions (Theorem C.5).
//!
//! The cost model is additive over decomposition vertices: the caller
//! supplies `cost(χ(p), λ(p))` and the search minimizes the sum. With the
//! paper's weight `v_D(p) = (w+1)^{deg_D(F, p)}`, the minimizer is a
//! D-optimal decomposition over the normal-form class realized by the block
//! recursion (Theorem C.5): minimizing the sum of those exponentials
//! minimizes the maximum degree.

use crate::tp::Candidate;
use crate::Hypertree;
use cqcount_arith::Natural;
use cqcount_hypergraph::primal::PrimalGraph;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct CostedTree {
    bag: NodeSet,
    lambda: Vec<usize>,
    children: Vec<CostedTree>,
    cost: Natural,
}

struct Ctx<F, G>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>,
    G: FnMut(&NodeSet, &[usize]) -> Natural,
{
    primal: PrimalGraph,
    candidates: F,
    cost: G,
    memo: HashMap<NodeSet, Option<CostedTree>>,
}

impl<F, G> Ctx<F, G>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>,
    G: FnMut(&NodeSet, &[usize]) -> Natural,
{
    fn neighborhood(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new();
        for x in set.iter() {
            out.union_with(self.primal.neighbours(x));
        }
        out.difference(set)
    }

    fn components_within(&self, nodes: &NodeSet) -> Vec<NodeSet> {
        let mut remaining = nodes.clone();
        let mut out = Vec::new();
        while let Some(start) = remaining.first() {
            let mut comp = NodeSet::singleton(start);
            let mut frontier = vec![start];
            remaining.remove(start);
            while let Some(v) = frontier.pop() {
                for u in self.primal.neighbours(v).intersection(&remaining).iter() {
                    comp.insert(u);
                    remaining.remove(u);
                    frontier.push(u);
                }
            }
            out.push(comp);
        }
        out
    }

    fn solve(&mut self, comp: &NodeSet) -> Option<CostedTree> {
        if let Some(hit) = self.memo.get(comp) {
            return hit.clone();
        }
        // Mark in-progress as failure to cut (impossible) cycles; the final
        // value overwrites this below.
        self.memo.insert(comp.clone(), None);
        let conn = self.neighborhood(comp);
        let allowed = comp.union(&conn);
        let mut best: Option<CostedTree> = None;
        let cands = (self.candidates)(&conn, comp);
        'cand: for (bag, lambda) in cands {
            if !conn.is_subset(&bag) || !bag.is_subset(&allowed) || !bag.intersects(comp) {
                continue;
            }
            let mut total = (self.cost)(&bag, &lambda);
            if let Some(b) = &best {
                if total >= b.cost {
                    continue; // cannot improve
                }
            }
            let rest = comp.difference(&bag);
            let mut children = Vec::new();
            for sub in self.components_within(&rest) {
                match self.solve(&sub) {
                    Some(t) => {
                        total += &t.cost;
                        children.push(t);
                    }
                    None => continue 'cand,
                }
            }
            if best.as_ref().is_none_or(|b| total < b.cost) {
                best = Some(CostedTree {
                    bag,
                    lambda,
                    children,
                    cost: total,
                });
            }
        }
        self.memo.insert(comp.clone(), best.clone());
        best
    }
}

/// Searches for a decomposition of `h1` (bags from `candidates`) minimizing
/// the sum of `cost(χ(p), λ(p))` over the vertices. Returns the witness and
/// its total cost.
pub fn decompose_min_cost<F, G>(
    h1: &Hypergraph,
    candidates: F,
    cost: G,
) -> Option<(Hypertree, Natural)>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>,
    G: FnMut(&NodeSet, &[usize]) -> Natural,
{
    let mut ctx = Ctx {
        primal: PrimalGraph::of(h1),
        candidates,
        cost,
        memo: HashMap::new(),
    };
    let mut forest = Vec::new();
    let mut total = Natural::ZERO;
    for comp in ctx.components_within(&h1.nodes().clone()) {
        let t = ctx.solve(&comp)?;
        total += &t.cost;
        forest.push(t);
    }
    // Flatten.
    let mut chi = Vec::new();
    let mut lambda = Vec::new();
    let mut parent = Vec::new();
    let mut stack: Vec<(CostedTree, Option<usize>)> =
        forest.into_iter().map(|t| (t, None)).collect();
    while let Some((node, par)) = stack.pop() {
        let idx = chi.len();
        chi.push(node.bag);
        lambda.push(node.lambda);
        parent.push(par);
        for c in node.children {
            stack.push((c, Some(idx)));
        }
    }
    Some((Hypertree::from_parts(chi, lambda, parent), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghw::combinations_upto;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    /// Provider over subsets of unions of ≤ k resource edges (same as ghw).
    fn union_provider(
        resources: Vec<NodeSet>,
        k: usize,
    ) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
        let combos: Vec<(NodeSet, Vec<usize>)> = combinations_upto(resources.len(), k)
            .into_iter()
            .map(|c| {
                let mut u = NodeSet::new();
                for &i in &c {
                    u.union_with(&resources[i]);
                }
                (u, c)
            })
            .collect();
        move |conn, comp| {
            let allowed = conn.union(comp);
            let mut out = Vec::new();
            for (u, c) in &combos {
                let avail = u.intersection(&allowed);
                if !conn.is_subset(&avail) {
                    continue;
                }
                let free: Vec<u32> = avail.difference(conn).to_vec();
                for mask in 1u32..(1 << free.len()) {
                    let mut bag = conn.clone();
                    for (j, &x) in free.iter().enumerate() {
                        if mask & (1 << j) != 0 {
                            bag.insert(x);
                        }
                    }
                    out.push((bag, c.clone()));
                }
            }
            out
        }
    }

    #[test]
    fn min_cost_prefers_cheap_bags() {
        // Path 0-1-2; cost = 100 for bags containing node 1 together with
        // both neighbours, else |bag|. The minimizer avoids the big bag.
        let g = h(&[&[0, 1], &[1, 2]]);
        let (ht, cost) = decompose_min_cost(&g, union_provider(g.edges().to_vec(), 2), |bag, _| {
            if bag.len() == 3 {
                Natural::from(100u64)
            } else {
                Natural::from(bag.len() as u64)
            }
        })
        .unwrap();
        assert!(ht.covers_all_edges(&g));
        assert!(ht.is_connected());
        // Two bags of size 2 = cost 4.
        assert_eq!(cost, Natural::from(4u64));
    }

    #[test]
    fn min_cost_uses_big_bag_when_cheaper() {
        let g = h(&[&[0, 1], &[1, 2]]);
        let (ht, cost) = decompose_min_cost(&g, union_provider(g.edges().to_vec(), 2), |_, lam| {
            Natural::from(10u64 * lam.len() as u64)
        })
        .unwrap();
        // Cheapest: single-atom bags cost 10 each. One bag can't cover both
        // edges (λ of one atom), so expect ≥ 2 vertices, total 20.
        assert_eq!(cost, Natural::from(20u64));
        assert!(ht.covers_all_edges(&g));
    }

    #[test]
    fn infeasible_returns_none() {
        let g = h(&[&[0, 1, 2]]);
        let resources: Vec<NodeSet> = vec![[0, 1].into()];
        assert!(
            decompose_min_cost(&g, union_provider(resources, 1), |_, _| Natural::ONE).is_none()
        );
    }

    #[test]
    fn exhaustive_on_cycle_finds_minimum() {
        // 4-cycle with k=2: a single bag {0,1,2,3} (union of two opposite
        // edges) covers everything, so the vertex-count minimum is 1.
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let (ht, cost) = decompose_min_cost(&g, union_provider(g.edges().to_vec(), 2), |_, _| {
            Natural::ONE
        })
        .unwrap();
        assert_eq!(cost, Natural::ONE);
        assert!(ht.covers_all_edges(&g));
    }
}
