//! Plain tree decompositions / treewidth, via the same block recursion with
//! size-bounded candidate bags.
//!
//! For bounded-arity classes, bounded (generalized) hypertree width and
//! bounded treewidth coincide (Section 5.6), so the Section 5 machinery is
//! phrased in terms of treewidth; this module provides it directly.

use crate::tp::{decompose, Candidate};
use crate::Hypertree;
use cqcount_hypergraph::{Hypergraph, NodeSet};

fn sized_candidates(k: usize) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
    move |conn, comp| {
        let max_bag = k + 1;
        if conn.len() > max_bag {
            return Vec::new();
        }
        let room = max_bag - conn.len();
        let free: Vec<u32> = comp.to_vec();
        // All non-empty subsets of `comp` of size ≤ room, unioned with conn.
        let mut out = Vec::new();
        let mut stack: Vec<(usize, NodeSet, usize)> = vec![(0, conn.clone(), 0)];
        while let Some((start, bag, used)) = stack.pop() {
            if used > 0 {
                out.push((bag.clone(), Vec::new()));
            }
            if used == room {
                continue;
            }
            for (i, &node) in free.iter().enumerate().skip(start) {
                let mut next = bag.clone();
                next.insert(node);
                stack.push((i + 1, next, used + 1));
            }
        }
        // Larger bags first: they absorb more and succeed sooner.
        out.sort_by_key(|(bag, _)| std::cmp::Reverse(bag.len()));
        out
    }
}

/// Searches for a tree decomposition of `h` (equivalently, of its primal
/// graph) of width at most `k` (bags of at most `k+1` nodes). Every
/// hyperedge of `h` ends up inside some bag (clique containment).
pub fn treewidth_at_most(h: &Hypergraph, k: usize) -> Option<Hypertree> {
    decompose(h, sized_candidates(k))
}

/// The exact treewidth of `h`, with a witness decomposition. Returns `None`
/// only for the empty hypergraph semantics edge case... in fact an empty
/// hypergraph has treewidth 0 with an empty decomposition, so this always
/// returns a value for `max_k ≥ |nodes| - 1`; `None` means the bound was
/// too small.
pub fn treewidth_exact(h: &Hypergraph, max_k: usize) -> Option<(usize, Hypertree)> {
    (0..=max_k).find_map(|k| treewidth_at_most(h, k).map(|ht| (k, ht)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn tree_has_treewidth_1() {
        let g = h(&[&[0, 1], &[1, 2], &[1, 3], &[3, 4]]);
        let (w, ht) = treewidth_exact(&g, 4).unwrap();
        assert_eq!(w, 1);
        assert!(ht.covers_all_edges(&g));
        assert!(ht.is_connected());
    }

    #[test]
    fn cycle_has_treewidth_2() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 0]]);
        let (w, _) = treewidth_exact(&g, 4).unwrap();
        assert_eq!(w, 2);
    }

    #[test]
    fn clique_has_treewidth_n_minus_1() {
        for n in 2..=5u32 {
            let mut edges = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    edges.push(vec![i, j]);
                }
            }
            let g = Hypergraph::from_edges(edges);
            let (w, _) = treewidth_exact(&g, n as usize).unwrap();
            assert_eq!(w, n as usize - 1, "K{n}");
        }
    }

    #[test]
    fn grid_3x3_has_treewidth_3() {
        let mut edges = Vec::new();
        let id = |r: u32, c: u32| r * 3 + c;
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push(vec![id(r, c), id(r, c + 1)]);
                }
                if r + 1 < 3 {
                    edges.push(vec![id(r, c), id(r + 1, c)]);
                }
            }
        }
        let g = Hypergraph::from_edges(edges);
        let (w, ht) = treewidth_exact(&g, 5).unwrap();
        assert_eq!(w, 3);
        assert!(ht.covers_all_edges(&g));
    }

    #[test]
    fn hyperedges_force_width() {
        // A single 4-ary hyperedge forces a bag of 4 nodes: width 3.
        let g = h(&[&[0, 1, 2, 3]]);
        let (w, _) = treewidth_exact(&g, 5).unwrap();
        assert_eq!(w, 3);
    }

    #[test]
    fn k4_minus_edge() {
        let g = h(&[&[0, 1], &[0, 2], &[1, 2], &[1, 3], &[2, 3]]);
        let (w, _) = treewidth_exact(&g, 4).unwrap();
        assert_eq!(w, 2);
    }

    #[test]
    fn bound_too_small_returns_none() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 0]]);
        assert!(treewidth_at_most(&g, 1).is_none());
        assert!(treewidth_exact(&g, 1).is_none());
    }
}
