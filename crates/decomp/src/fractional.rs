//! Fractional edge covers and fractional hypertree width (Remark 4.4, \[49\]).
//!
//! The fractional edge cover number `ρ*(S)` of a node set `S` w.r.t. a set
//! of hyperedges is the optimum of the LP
//! `min Σ_e x_e  s.t.  Σ_{e ∋ v} x_e ≥ 1 (v ∈ S), x ≥ 0`.
//! We solve its dual `max Σ_v y_v  s.t.  Σ_{v ∈ e} y_v ≤ 1 (e), y ≥ 0`,
//! which is in standard form with a feasible origin, by an exact
//! rational-arithmetic simplex with Bland's rule (no cycling, no floating
//! point tolerances). Strong duality gives `ρ*` directly.

use crate::tp::{decompose, Candidate};
use crate::Hypertree;
use cqcount_arith::Rational;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::HashMap;

/// Maximizes `c·x` subject to `A x ≤ b`, `x ≥ 0` with `b ≥ 0`, by the
/// primal simplex method with Bland's anti-cycling rule over exact
/// rationals. Returns `None` if the LP is unbounded.
pub fn simplex_max(a: &[Vec<Rational>], b: &[Rational], c: &[Rational]) -> Option<Rational> {
    let m = a.len();
    let n = c.len();
    assert!(a.iter().all(|row| row.len() == n));
    assert_eq!(b.len(), m);
    assert!(b.iter().all(|v| !v.is_negative()), "b must be nonnegative");

    // Tableau: rows 0..m are constraints (with slack basis), row m is -z.
    // Columns: 0..n structural, n..n+m slack, last = rhs.
    let cols = n + m + 1;
    let mut t = vec![vec![Rational::ZERO; cols]; m + 1];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = a[i][j].clone();
        }
        t[i][n + i] = Rational::ONE;
        t[i][cols - 1] = b[i].clone();
    }
    for j in 0..n {
        t[m][j] = -&c[j];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    loop {
        // Bland: entering = smallest column with negative reduced cost.
        let Some(enter) = (0..n + m).find(|&j| t[m][j].is_negative()) else {
            let z = t[m][cols - 1].clone();
            return Some(z);
        };
        // Ratio test; Bland: smallest basis index on ties.
        let mut leave: Option<(usize, Rational)> = None;
        for i in 0..m {
            if t[i][enter] > Rational::ZERO {
                let ratio = &t[i][cols - 1] / &t[i][enter];
                let better = match &leave {
                    None => true,
                    Some((li, lr)) => ratio < *lr || (ratio == *lr && basis[i] < basis[*li]),
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((pivot_row, _)) = leave else {
            return None; // unbounded
        };
        // Pivot.
        let inv = t[pivot_row][enter].recip();
        for cell in &mut t[pivot_row][..cols] {
            *cell = &*cell * &inv;
        }
        for i in 0..=m {
            if i != pivot_row && !t[i][enter].is_zero() {
                let factor = t[i][enter].clone();
                let pivot = t[pivot_row][..cols].to_vec();
                for (cell, p) in t[i][..cols].iter_mut().zip(&pivot) {
                    *cell = &*cell - &(&factor * p);
                }
            }
        }
        basis[pivot_row] = enter;
    }
}

/// The fractional edge cover number `ρ*(target)` w.r.t. `edges`. Returns
/// `None` if some node of `target` lies in no edge (no cover exists).
pub fn fractional_edge_cover_number(target: &NodeSet, edges: &[NodeSet]) -> Option<Rational> {
    if target.is_empty() {
        return Some(Rational::ZERO);
    }
    let nodes: Vec<u32> = target.to_vec();
    if nodes.iter().any(|&v| !edges.iter().any(|e| e.contains(v))) {
        return None;
    }
    // Dual: max Σ y_v s.t. for each edge e: Σ_{v ∈ e ∩ target} y_v ≤ 1.
    let a: Vec<Vec<Rational>> = edges
        .iter()
        .map(|e| {
            nodes
                .iter()
                .map(|&v| {
                    if e.contains(v) {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    }
                })
                .collect()
        })
        .collect();
    let b = vec![Rational::ONE; edges.len()];
    let c = vec![Rational::ONE; nodes.len()];
    // Bounded: y_v ≤ 1 via the (v ∈ some edge) constraints; simplex returns
    // the optimum, which by strong duality equals ρ*.
    simplex_max(&a, &b, &c)
}

/// Candidate provider for fractional hypertree width: every subset of
/// `conn ∪ comp` whose fractional edge cover number is at most `k`.
/// Exponential in the block size; intended for the small queries of the
/// paper's examples (Remark 4.4).
fn fractional_candidates(
    edges: Vec<NodeSet>,
    k: Rational,
) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
    let mut rho_cache: HashMap<NodeSet, Option<Rational>> = HashMap::new();
    move |conn, comp| {
        let free: Vec<u32> = comp.to_vec();
        assert!(
            free.len() < 26,
            "fractional candidate enumeration too large"
        );
        let mut out = Vec::new();
        for mask in 1u64..(1u64 << free.len()) {
            let mut bag = conn.clone();
            for (j, &x) in free.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    bag.insert(x);
                }
            }
            let rho = rho_cache
                .entry(bag.clone())
                .or_insert_with(|| fractional_edge_cover_number(&bag, &edges))
                .clone();
            if rho.is_some_and(|r| r <= k) {
                out.push((bag, Vec::new()));
            }
        }
        out.sort_by_key(|(bag, _)| std::cmp::Reverse(bag.len()));
        out
    }
}

/// Searches for a fractional hypertree decomposition of `h` of width ≤ `k`
/// (every bag has `ρ*` at most `k` w.r.t. the hyperedges of `h`).
pub fn fractional_hypertree_width_at_most(h: &Hypergraph, k: Rational) -> Option<Hypertree> {
    decompose(h, fractional_candidates(h.edges().to_vec(), k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_arith::Int;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn simplex_small_lp() {
        // max x + y s.t. x ≤ 2, y ≤ 3, x + y ≤ 4 → 4.
        let a = vec![
            vec![Rational::ONE, Rational::ZERO],
            vec![Rational::ZERO, Rational::ONE],
            vec![Rational::ONE, Rational::ONE],
        ];
        let b = vec![q(2, 1), q(3, 1), q(4, 1)];
        let c = vec![Rational::ONE, Rational::ONE];
        assert_eq!(simplex_max(&a, &b, &c), Some(q(4, 1)));
    }

    #[test]
    fn simplex_unbounded() {
        // max x s.t. -x ≤ 1 — wait, need b ≥ 0 and coefficient negative:
        let a = vec![vec![-&Rational::ONE]];
        let b = vec![Rational::ONE];
        let c = vec![Rational::ONE];
        assert_eq!(simplex_max(&a, &b, &c), None);
    }

    #[test]
    fn simplex_fractional_optimum() {
        // max x + y s.t. 2x + y ≤ 1, x + 2y ≤ 1 → x = y = 1/3, opt 2/3.
        let a = vec![vec![q(2, 1), q(1, 1)], vec![q(1, 1), q(2, 1)]];
        let b = vec![Rational::ONE, Rational::ONE];
        let c = vec![Rational::ONE, Rational::ONE];
        assert_eq!(simplex_max(&a, &b, &c), Some(q(2, 3)));
    }

    #[test]
    fn triangle_fractional_cover_is_three_halves() {
        // The classic: covering the triangle's 3 vertices with its 3 edges
        // costs 3/2 fractionally (1/2 each), 2 integrally.
        let edges: Vec<NodeSet> = vec![[0, 1].into(), [1, 2].into(), [0, 2].into()];
        let target: NodeSet = [0, 1, 2].into();
        assert_eq!(fractional_edge_cover_number(&target, &edges), Some(q(3, 2)));
    }

    #[test]
    fn cover_with_big_edge_is_one() {
        let edges: Vec<NodeSet> = vec![[0, 1, 2].into()];
        assert_eq!(
            fractional_edge_cover_number(&[0, 1, 2].into(), &edges),
            Some(Rational::ONE)
        );
        assert_eq!(
            fractional_edge_cover_number(&NodeSet::new(), &edges),
            Some(Rational::ZERO)
        );
    }

    #[test]
    fn uncoverable_node() {
        let edges: Vec<NodeSet> = vec![[0, 1].into()];
        assert_eq!(fractional_edge_cover_number(&[0, 5].into(), &edges), None);
    }

    #[test]
    fn fhw_of_triangle_query() {
        // Triangle as 3 binary atoms: fhw = 3/2 — a single bag {0,1,2} has
        // ρ* = 3/2, and no decomposition does better than ghw ≥ ... check
        // both bounds.
        let h = Hypergraph::from_edges([vec![0u32, 1], vec![1, 2], vec![0, 2]]);
        assert!(fractional_hypertree_width_at_most(&h, q(3, 2)).is_some());
        assert!(fractional_hypertree_width_at_most(&h, q(4, 3)).is_none());
    }

    #[test]
    fn fhw_of_acyclic_is_one() {
        let h = Hypergraph::from_edges([vec![0u32, 1], vec![1, 2]]);
        let ht = fractional_hypertree_width_at_most(&h, Rational::ONE).unwrap();
        assert!(ht.covers_all_edges(&h));
    }
}
