//! Hypertrees `⟨T, χ, λ⟩` (Appendix C of the paper; \[36\]).

use cqcount_hypergraph::{is_acyclic, Hypergraph, NodeSet};

/// A rooted hypertree (forest) `⟨T, χ, λ⟩` for a hypergraph / query.
///
/// Vertex `p` carries a bag `χ(p)` of variables and a label `λ(p)` listing
/// the resources (atom indices, view indices — interpretation is up to the
/// producer) that cover the bag. The structure stores parent/children links
/// and a bottom-up order (children before parents), which is what every
/// counting pass traverses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypertree {
    /// The bag `χ(p)` of each vertex.
    pub chi: Vec<NodeSet>,
    /// The cover label `λ(p)` of each vertex (resource indices).
    pub lambda: Vec<Vec<usize>>,
    /// Parent links (`None` for roots).
    pub parent: Vec<Option<usize>>,
    /// Children lists.
    pub children: Vec<Vec<usize>>,
    /// Roots (one per connected component of the decomposition forest).
    pub roots: Vec<usize>,
    /// Bottom-up order: children before parents.
    pub order: Vec<usize>,
}

impl Hypertree {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.chi.len()
    }

    /// Returns `true` iff the hypertree has no vertices.
    pub fn is_empty(&self) -> bool {
        self.chi.is_empty()
    }

    /// The width `max_p |λ(p)|`.
    pub fn width(&self) -> usize {
        self.lambda.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The decomposition hypergraph: one hyperedge per bag (the acyclic
    /// hypergraph `Hₐ` witnessing a tree projection).
    pub fn to_hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for bag in &self.chi {
            h.add_edge(bag.clone());
        }
        h
    }

    /// All variables mentioned by some bag.
    pub fn all_nodes(&self) -> NodeSet {
        let mut out = NodeSet::new();
        for bag in &self.chi {
            out.union_with(bag);
        }
        out
    }

    /// Builds parent/children/roots/order from a parent array.
    pub fn from_parts(
        chi: Vec<NodeSet>,
        lambda: Vec<Vec<usize>>,
        parent: Vec<Option<usize>>,
    ) -> Hypertree {
        let n = chi.len();
        assert_eq!(lambda.len(), n);
        assert_eq!(parent.len(), n);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (v, p) in parent.iter().enumerate() {
            match p {
                Some(p) => children[*p].push(v),
                None => roots.push(v),
            }
        }
        // Bottom-up order via DFS from the roots.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(usize, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for &c in &children[v] {
                    stack.push((c, false));
                }
            }
        }
        assert_eq!(order.len(), n, "parent array must be a forest");
        Hypertree {
            chi,
            lambda,
            parent,
            children,
            roots,
            order,
        }
    }

    /// Checks the structural conditions of a *generalized* hypertree
    /// decomposition of `h` (conditions (1)–(2); condition (3)
    /// `χ(p) ⊆ vars(λ(p))` is checked against `resource_nodes`, the node set
    /// of each resource referenced by `λ`):
    ///
    /// 1. every hyperedge of `h` is contained in some bag;
    /// 2. for every node, the vertices whose bag contains it induce a
    ///    connected subtree;
    /// 3. every bag is covered by the union of its `λ` resources.
    pub fn verify_ghd(&self, h: &Hypergraph, resource_nodes: &[NodeSet]) -> bool {
        self.covers_all_edges(h) && self.is_connected() && self.lambda_covers_chi(resource_nodes)
    }

    /// Condition (1): every hyperedge of `h` inside some bag.
    pub fn covers_all_edges(&self, h: &Hypergraph) -> bool {
        h.edges()
            .iter()
            .all(|e| self.chi.iter().any(|bag| e.is_subset(bag)))
    }

    /// Condition (2): connectedness of every node's occurrence set.
    pub fn is_connected(&self) -> bool {
        for x in self.all_nodes().iter() {
            let holders: Vec<usize> = (0..self.len())
                .filter(|&p| self.chi[p].contains(x))
                .collect();
            let internal = holders
                .iter()
                .filter(|&&p| self.parent[p].is_some_and(|q| self.chi[q].contains(x)))
                .count();
            if internal != holders.len() - 1 {
                return false;
            }
        }
        true
    }

    /// Condition (3): `χ(p) ⊆ nodes(λ(p))`.
    pub fn lambda_covers_chi(&self, resource_nodes: &[NodeSet]) -> bool {
        self.chi.iter().zip(&self.lambda).all(|(bag, lam)| {
            let mut covered = NodeSet::new();
            for &r in lam {
                covered.union_with(&resource_nodes[r]);
            }
            bag.is_subset(&covered)
        })
    }

    /// Condition (4) of full hypertree decompositions (the *descendant
    /// condition*): `vars(λ(p)) ∩ χ(T_p) ⊆ χ(p)`.
    pub fn satisfies_descendant_condition(&self, resource_nodes: &[NodeSet]) -> bool {
        // χ(T_p) bottom-up.
        let mut subtree = self.chi.clone();
        for &v in &self.order {
            for &c in &self.children[v] {
                let child_nodes = subtree[c].clone();
                subtree[v].union_with(&child_nodes);
            }
        }
        (0..self.len()).all(|p| {
            let mut lam_nodes = NodeSet::new();
            for &r in &self.lambda[p] {
                lam_nodes.union_with(&resource_nodes[r]);
            }
            lam_nodes.intersection(&subtree[p]).is_subset(&self.chi[p])
        })
    }

    /// Returns `true` iff the bag hypergraph is acyclic (it always is for
    /// trees produced by the solvers; exposed for verification in tests).
    pub fn bags_acyclic(&self) -> bool {
        is_acyclic(&self.to_hypergraph())
    }

    /// Normalizes the hypertree by repeatedly merging any vertex whose bag
    /// is a subset of its parent's (or a child whose bag subsumes the
    /// parent's) — the basic normalization step of normal-form hypertree
    /// decompositions (\[60\], \[45\]): the result has at most as many vertices,
    /// covers the same hyperedges, keeps connectedness, and its width never
    /// increases beyond `max(|λ(p)| ∪ |λ(q)|)` of merged pairs (we keep the
    /// *covering* vertex's `λ`, which stays sufficient because the surviving
    /// bag is unchanged).
    pub fn normalize(&self) -> Hypertree {
        let mut chi = self.chi.clone();
        let mut lambda = self.lambda.clone();
        let mut parent = self.parent.clone();
        let mut alive = vec![true; chi.len()];
        loop {
            let mut merged = false;
            for v in 0..chi.len() {
                if !alive[v] {
                    continue;
                }
                let Some(mut p) = parent[v] else { continue };
                while !alive[p] {
                    p = parent[p].expect("dead vertex keeps a parent chain");
                }
                parent[v] = Some(p);
                if chi[v].is_subset(&chi[p]) {
                    // fold v into its parent: children re-attach to p
                    alive[v] = false;
                    merged = true;
                } else if chi[p].is_subset(&chi[v]) {
                    // v subsumes its parent: v takes p's place
                    chi[p] = chi[v].clone();
                    lambda[p] = lambda[v].clone();
                    alive[v] = false;
                    merged = true;
                }
            }
            if !merged {
                break;
            }
        }
        // compact
        let mut remap = vec![usize::MAX; chi.len()];
        let mut new_chi = Vec::new();
        let mut new_lambda = Vec::new();
        for v in 0..chi.len() {
            if alive[v] {
                remap[v] = new_chi.len();
                new_chi.push(chi[v].clone());
                new_lambda.push(lambda[v].clone());
            }
        }
        let new_parent: Vec<Option<usize>> = (0..chi.len())
            .filter(|&v| alive[v])
            .map(|v| {
                let mut p = parent[v];
                while let Some(pp) = p {
                    if alive[pp] {
                        return Some(remap[pp]);
                    }
                    p = parent[pp];
                }
                None
            })
            .collect();
        Hypertree::from_parts(new_chi, new_lambda, new_parent)
    }

    /// Ensures every resource in `needed` appears in some `λ(p)` with
    /// `resource_nodes[r] ⊆ χ(p)`, by attaching a fresh child
    /// `χ = nodes(r), λ = {r}` under a vertex whose bag covers it — the
    /// *completion* step in the proof of Theorem 6.2. Panics if some needed
    /// resource is covered by no bag (not a decomposition of its query).
    pub fn complete(&self, needed: &[usize], resource_nodes: &[NodeSet]) -> Hypertree {
        let mut out = self.clone();
        for &r in needed {
            let present = out
                .lambda
                .iter()
                .zip(&out.chi)
                .any(|(lam, chi)| lam.contains(&r) && resource_nodes[r].is_subset(chi));
            if present {
                continue;
            }
            let host = (0..out.len())
                .find(|&p| resource_nodes[r].is_subset(&out.chi[p]))
                .expect("resource not covered by any bag: not a decomposition");
            let new = out.len();
            out.chi.push(resource_nodes[r].clone());
            out.lambda.push(vec![r]);
            out.parent.push(Some(host));
            out.children.push(Vec::new());
            out.children[host].push(new);
        }
        Hypertree::from_parts(out.chi, out.lambda, out.parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's width-2 hypertree decomposition of Q0, transcribed.
    /// Atom order: mw=0, wt=1, wi=2, pt=3, st(D,F)=4, st(D,G)=5,
    /// rr(G,H)=6, rr(F,H)=7, rr(D,H)=8.
    /// Vars: A=0,B=1,C=2,D=3,E=4,F=5,G=6,H=7,I=8.
    fn q0_hd() -> (Hypertree, Hypergraph, Vec<NodeSet>) {
        let atoms: Vec<NodeSet> = vec![
            [0, 1, 8].into(),
            [1, 3].into(),
            [1, 4].into(),
            [2, 3].into(),
            [3, 5].into(),
            [3, 6].into(),
            [6, 7].into(),
            [5, 7].into(),
            [3, 7].into(),
        ];
        let h = Hypergraph::from_edges(atoms.iter().map(|e| e.iter()));
        // root {mw}: {A,B,I}; children {wi}: {B,E} and {wt,pt}: {B,C,D};
        // below the latter {rr(D,H), rr(F,H)}: {D,F,H} (also covers st(D,F))
        // and below that {rr(D,H), rr(G,H)}: {D,G,H} (also covers st(D,G)).
        let chi: Vec<NodeSet> = vec![
            [0, 1, 8].into(), // 0 root mw
            [1, 4].into(),    // 1 wi
            [1, 2, 3].into(), // 2 wt+pt
            [3, 5, 7].into(), // 3 rr(D,H)+rr(F,H)
            [3, 6, 7].into(), // 4 rr(D,H)+rr(G,H)
        ];
        let lambda = vec![vec![0], vec![2], vec![1, 3], vec![8, 7], vec![8, 6]];
        let parent = vec![None, Some(0), Some(0), Some(2), Some(3)];
        (Hypertree::from_parts(chi, lambda, parent), h, atoms)
    }

    #[test]
    fn q0_figure2_decomposition_verifies() {
        let (ht, h, atoms) = q0_hd();
        assert_eq!(ht.width(), 2);
        assert!(ht.covers_all_edges(&h));
        assert!(ht.is_connected());
        assert!(ht.lambda_covers_chi(&atoms));
        assert!(ht.verify_ghd(&h, &atoms));
        assert!(ht.bags_acyclic());
    }

    #[test]
    fn bottom_up_order() {
        let (ht, _, _) = q0_hd();
        let pos: Vec<usize> = {
            let mut p = vec![0; ht.len()];
            for (i, &v) in ht.order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for v in 0..ht.len() {
            if let Some(p) = ht.parent[v] {
                assert!(pos[v] < pos[p]);
            }
        }
        assert_eq!(ht.roots, vec![0]);
    }

    #[test]
    fn connectedness_violation_detected() {
        // Bag 0 and bag 2 share node 9 but bag 1 between them lacks it.
        let chi: Vec<NodeSet> = vec![[9, 1].into(), [1, 2].into(), [2, 9].into()];
        let lambda = vec![vec![0], vec![0], vec![0]];
        let parent = vec![None, Some(0), Some(1)];
        let ht = Hypertree::from_parts(chi, lambda, parent);
        assert!(!ht.is_connected());
    }

    #[test]
    fn edge_cover_violation_detected() {
        let (ht, _, _) = q0_hd();
        let mut h2 = Hypergraph::new();
        h2.add_edge([0, 7].into()); // {A, H} is inside no bag
        assert!(!ht.covers_all_edges(&h2));
    }

    #[test]
    fn completion_adds_missing_atoms() {
        let (ht, h, atoms) = q0_hd();
        // wt (atom 1) appears in λ of vertex 2; rr(D,H)=8 appears at 4.
        // Ask for completion of all atoms: nothing covered-but-absent...
        let complete = ht.complete(&(0..atoms.len()).collect::<Vec<_>>(), &atoms);
        assert!(complete.covers_all_edges(&h));
        assert!(complete.is_connected());
        // every atom now sits in some λ with its vars inside χ
        for (i, a) in atoms.iter().enumerate() {
            assert!(
                complete
                    .lambda
                    .iter()
                    .zip(&complete.chi)
                    .any(|(lam, chi)| lam.contains(&i) && a.is_subset(chi)),
                "atom {i} not λ-placed"
            );
        }
    }

    #[test]
    fn normalize_merges_subset_bags() {
        // child bag ⊆ parent bag: merged away.
        let chi: Vec<NodeSet> = vec![[0, 1, 2].into(), [1, 2].into(), [2, 3].into()];
        let lambda = vec![vec![0], vec![0], vec![1]];
        let parent = vec![None, Some(0), Some(1)];
        let ht = Hypertree::from_parts(chi, lambda, parent);
        let n = ht.normalize();
        assert_eq!(n.len(), 2);
        assert!(n.is_connected());
        assert!(n.chi.contains(&[0, 1, 2].into()));
        assert!(n.chi.contains(&[2, 3].into()));
        // grandchild reattached to the root
        assert_eq!(n.roots.len(), 1);
    }

    #[test]
    fn normalize_child_subsumes_parent() {
        let chi: Vec<NodeSet> = vec![[1, 2].into(), [0, 1, 2].into()];
        let lambda = vec![vec![0], vec![1]];
        let parent = vec![None, Some(0)];
        let ht = Hypertree::from_parts(chi, lambda, parent);
        let n = ht.normalize();
        assert_eq!(n.len(), 1);
        assert_eq!(n.chi[0], [0, 1, 2].into());
        assert_eq!(n.lambda[0], vec![1]);
    }

    #[test]
    fn normalize_preserves_validity_on_q0() {
        let (ht, h, atoms) = q0_hd();
        let n = ht.normalize();
        assert!(n.covers_all_edges(&h));
        assert!(n.is_connected());
        assert!(n.lambda_covers_chi(&atoms));
        assert!(n.len() <= ht.len());
    }

    #[test]
    fn normalize_is_idempotent() {
        let (ht, _, _) = q0_hd();
        let n = ht.normalize();
        assert_eq!(n.normalize().len(), n.len());
    }

    #[test]
    fn descendant_condition() {
        let (ht, _, atoms) = q0_hd();
        // This particular transcription happens to satisfy it.
        assert!(ht.satisfies_descendant_condition(&atoms));
        // A designed violation: λ mentions an atom whose vars appear
        // below but not in χ(p).
        let chi: Vec<NodeSet> = vec![[1].into(), [1, 2].into()];
        let lambda = vec![vec![1], vec![1]]; // resource 1 = {1,2}
        let resources: Vec<NodeSet> = vec![[1].into(), [1, 2].into()];
        let parent = vec![None, Some(0)];
        let ht2 = Hypertree::from_parts(chi, lambda, parent);
        // vars(λ(root)) = {1,2}; χ(T_root) = {1,2}; χ(root) = {1}: violated.
        assert!(!ht2.satisfies_descendant_condition(&resources));
    }
}
