//! The tree-projection search engine (Theorem 3.6's FPT computation).
//!
//! A tree projection of `(H₁, H₂)` exists iff the primal graph of `H₁` has a
//! tree decomposition whose bags each fit inside a hyperedge of `H₂`: every
//! hyperedge of `H₁` is a clique of the primal graph, and any tree
//! decomposition puts every clique inside some bag (the clique-containment
//! lemma), so covering `H₁` comes for free.
//!
//! The search is the classical block recursion over connected components:
//! `solve(C)` asks whether the block `(C, N(C))` can be decomposed; it tries
//! every candidate bag `B` with `N(C) ⊆ B ⊆ C ∪ N(C)` and `B ∩ C ≠ ∅`, and
//! recurses into the connected components of `C \ B`. Results are memoized
//! per component, so the search is fixed-parameter tractable in
//! `|nodes(H₁)|` — exactly the guarantee of Theorem 3.6.
//!
//! Candidate bags are supplied by a closure, which is how the same engine
//! serves tree projections w.r.t. arbitrary view sets ([`crate::ghw`]),
//! plain treewidth ([`crate::treedec`]) and fractional hypertree width
//! ([`crate::fractional`]).

use crate::Hypertree;
use cqcount_hypergraph::primal::PrimalGraph;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::HashMap;

/// A candidate bag: the bag node set plus an opaque payload (resource
/// indices) recorded into `λ` of the produced [`Hypertree`].
pub type Candidate = (NodeSet, Vec<usize>);

/// A subtree of bags (pre-flattening).
#[derive(Clone, Debug)]
struct BagTree {
    bag: NodeSet,
    lambda: Vec<usize>,
    children: Vec<BagTree>,
}

struct Ctx<'a, F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>> {
    primal: PrimalGraph,
    candidates: F,
    memo: HashMap<NodeSet, Option<BagTree>>,
    _h1: &'a Hypergraph,
}

impl<F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>> Ctx<'_, F> {
    /// Open neighborhood of `set` in the primal graph.
    fn neighborhood(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new();
        for x in set.iter() {
            out.union_with(self.primal.neighbours(x));
        }
        out.difference(set)
    }

    /// Connected components of the primal graph induced on `nodes`.
    fn components_within(&self, nodes: &NodeSet) -> Vec<NodeSet> {
        let mut remaining = nodes.clone();
        let mut out = Vec::new();
        while let Some(start) = remaining.first() {
            let mut comp = NodeSet::singleton(start);
            let mut frontier = vec![start];
            remaining.remove(start);
            while let Some(v) = frontier.pop() {
                for u in self.primal.neighbours(v).intersection(&remaining).iter() {
                    comp.insert(u);
                    remaining.remove(u);
                    frontier.push(u);
                }
            }
            out.push(comp);
        }
        out
    }

    /// Decides decomposability of the block `(comp, N(comp))`.
    fn solve(&mut self, comp: &NodeSet) -> Option<BagTree> {
        if let Some(hit) = self.memo.get(comp) {
            return hit.clone();
        }
        let conn = self.neighborhood(comp);
        let allowed = comp.union(&conn);
        let mut result = None;
        let cands = (self.candidates)(&conn, comp);
        'cand: for (bag, lambda) in cands {
            if !conn.is_subset(&bag) || !bag.is_subset(&allowed) || !bag.intersects(comp) {
                continue;
            }
            let rest = comp.difference(&bag);
            let mut children = Vec::new();
            for sub in self.components_within(&rest) {
                match self.solve(&sub) {
                    Some(t) => children.push(t),
                    None => continue 'cand,
                }
            }
            result = Some(BagTree {
                bag,
                lambda,
                children,
            });
            break;
        }
        self.memo.insert(comp.clone(), result.clone());
        result
    }
}

fn flatten(forest: Vec<BagTree>) -> Hypertree {
    let mut chi = Vec::new();
    let mut lambda = Vec::new();
    let mut parent = Vec::new();
    let mut stack: Vec<(BagTree, Option<usize>)> = forest.into_iter().map(|t| (t, None)).collect();
    while let Some((node, par)) = stack.pop() {
        let idx = chi.len();
        chi.push(node.bag);
        lambda.push(node.lambda);
        parent.push(par);
        for c in node.children {
            stack.push((c, Some(idx)));
        }
    }
    Hypertree::from_parts(chi, lambda, parent)
}

/// Searches for a tree projection / constrained tree decomposition of `h1`
/// with bags drawn from `candidates(conn, comp)`.
///
/// The candidate closure receives the connector `conn` (which the bag must
/// contain) and the current component `comp` (the bag must stay within
/// `conn ∪ comp` and intersect `comp`); it may return candidates violating
/// these side conditions — they are filtered — but returning fewer saves
/// work. Returns a [`Hypertree`] whose `λ` holds the candidate payloads, or
/// `None` if no decomposition exists.
pub fn decompose<F>(h1: &Hypergraph, candidates: F) -> Option<Hypertree>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate>,
{
    let mut ctx = Ctx {
        primal: PrimalGraph::of(h1),
        candidates,
        memo: HashMap::new(),
        _h1: h1,
    };
    let mut forest = Vec::new();
    for comp in ctx.components_within(&h1.nodes().clone()) {
        forest.push(ctx.solve(&comp)?);
    }
    let ht = flatten(forest);
    debug_assert!(ht.covers_all_edges(h1), "clique lemma violated: bug");
    debug_assert!(ht.is_connected(), "connectedness violated: bug");
    Some(ht)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    /// Candidate provider: all subsets of the given resource edges that
    /// contain `conn` (the generic "tree projection w.r.t. H2" provider).
    fn subsets_of(resources: Vec<NodeSet>) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
        move |conn, comp| {
            let allowed = conn.union(comp);
            let mut out = Vec::new();
            for (i, r) in resources.iter().enumerate() {
                let avail = r.intersection(&allowed);
                if !conn.is_subset(&avail) {
                    continue;
                }
                // enumerate conn ∪ X for X ⊆ (avail ∩ comp), X ≠ ∅
                let free: Vec<u32> = avail.intersection(comp).to_vec();
                for mask in 1u32..(1 << free.len()) {
                    let mut bag = conn.clone();
                    for (j, &x) in free.iter().enumerate() {
                        if mask & (1 << j) != 0 {
                            bag.insert(x);
                        }
                    }
                    out.push((bag, vec![i]));
                }
            }
            out
        }
    }

    #[test]
    fn acyclic_hypergraph_projects_onto_itself() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3]]);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn cycle_needs_bigger_resources() {
        // 4-cycle: no tree projection onto its own edges…
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(decompose(&g, subsets_of(g.edges().to_vec())).is_none());
        // …but adding pairwise unions (width 2) suffices.
        let mut resources = g.edges().to_vec();
        for i in 0..4 {
            for j in i + 1..4 {
                resources.push(g.edges()[i].union(&g.edges()[j]));
            }
        }
        let ht = decompose(&g, subsets_of(resources.clone())).unwrap();
        assert!(ht.covers_all_edges(&g));
        assert!(ht.is_connected());
        assert!(ht.bags_acyclic());
    }

    #[test]
    fn triangle_with_big_edge() {
        let g = h(&[&[0, 1], &[1, 2], &[0, 2]]);
        // resource {0,1,2} covers the whole triangle
        let resources: Vec<NodeSet> = vec![[0, 1, 2].into()];
        let ht = decompose(&g, subsets_of(resources)).unwrap();
        assert!(ht.covers_all_edges(&g));
    }

    #[test]
    fn disconnected_components() {
        let g = h(&[&[0, 1], &[5, 6]]);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert_eq!(ht.roots.len(), 2);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn infeasible_when_an_edge_is_uncoverable() {
        let g = h(&[&[0, 1, 2]]);
        let resources: Vec<NodeSet> = vec![[0, 1].into(), [1, 2].into()];
        assert!(decompose(&g, subsets_of(resources)).is_none());
    }

    #[test]
    fn q0_example_3_5_views() {
        // Figure 7(d): views over {A,B,I}, {B,E}, {B,C,D}, {D,F,H},
        // {D,G,H} … we use the view set V0 of Example 3.5 — check the core
        // hypergraph H_{Q0'} has a tree projection w.r.t. it (Figure 7(c)).
        // Q0' (core): mw{A,B,I}, wt{B,D}, wi{B,E}, pt{C,D}, st{D,F},
        // rr{F,H}, rr{D,H}; A=0,B=1,C=2,D=3,E=4,F=5,H=7,I=8.
        let q0_core = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[5, 7],
            &[3, 7],
        ]);
        let views: Vec<NodeSet> = vec![
            [0, 1, 8].into(),
            [1, 4].into(),
            [1, 2, 3].into(),
            [3, 5, 7].into(),
        ];
        let ht = decompose(&q0_core, subsets_of(views.clone())).unwrap();
        assert!(ht.verify_ghd(&q0_core, &views));
    }

    #[test]
    fn memoization_handles_repeated_blocks() {
        // A long path reuses many identical sub-blocks when resources allow
        // multiple decompositions; this is a smoke test that it stays fast.
        let edges: Vec<Vec<u32>> = (0..16u32).map(|i| vec![i, i + 1]).collect();
        let g = Hypergraph::from_edges(edges);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert!(ht.verify_ghd(&g, g.edges()));
    }
}
