//! The tree-projection search engine (Theorem 3.6's FPT computation).
//!
//! A tree projection of `(H₁, H₂)` exists iff the primal graph of `H₁` has a
//! tree decomposition whose bags each fit inside a hyperedge of `H₂`: every
//! hyperedge of `H₁` is a clique of the primal graph, and any tree
//! decomposition puts every clique inside some bag (the clique-containment
//! lemma), so covering `H₁` comes for free.
//!
//! The search is the classical block recursion over connected components:
//! `solve(C)` asks whether the block `(C, N(C))` can be decomposed; it tries
//! every candidate bag `B` with `N(C) ⊆ B ⊆ C ∪ N(C)` and `B ∩ C ≠ ∅`, and
//! recurses into the connected components of `C \ B`. Results are memoized
//! per component, so the search is fixed-parameter tractable in
//! `|nodes(H₁)|` — exactly the guarantee of Theorem 3.6.
//!
//! # Parallel search, deterministic witnesses
//!
//! The engine parallelizes two independent axes over [`cqcount_exec`]'s
//! pool: sibling components of `C \ B` are solved concurrently, and small
//! *speculative batches* of candidates are attempted concurrently. The memo
//! is a sharded map shared by all workers, with three slot states:
//! `InFlight` (someone is computing this block — share their verdict
//! instead of re-refuting it), `Solved`, and `Refuted`. A worker that finds
//! a block in flight spins briefly for the owner's verdict, then falls back
//! to computing the block independently (first write wins); the fallback is
//! what keeps the engine deadlock-free — the pool's help-while-waiting
//! stealing can park an in-flight block's owner underneath a task that
//! waits on that very block, so no wait may be unbounded.
//!
//! Determinism: at a fixed width, `solve(C)` is a *pure function* of `C`
//! (candidates derive from the block alone), so concurrency only changes
//! *which* memo entries get computed — never their values — and the witness
//! is always the first success in candidate order at every level, exactly
//! what the sequential reference (`CQCOUNT_THREADS=1`) produces.
//!
//! # Cross-width negative reuse
//!
//! The engine survives across widths (see [`crate::ghw::GhwSearch`]).
//! Between widths every *positive* entry is invalidated (an epoch bump —
//! wider searches must rediscover witnesses in their own candidate order),
//! but *negative* verdicts persist together with a fingerprint of the
//! block's candidate universe. If the universe is unchanged at `k+1` the
//! whole subtree search would replay verbatim, so the block is refuted
//! without expanding a single bag. The soundness argument lives in
//! DESIGN.md §Planner.
//!
//! Candidate bags are supplied by a [`CandidateSource`] (or a plain closure
//! through [`decompose`]), which is how the same engine serves tree
//! projections w.r.t. arbitrary view sets ([`crate::ghw`]), plain treewidth
//! ([`crate::treedec`]) and fractional hypertree width
//! ([`crate::fractional`]).

use crate::Hypertree;
use cqcount_hypergraph::primal::PrimalGraph;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A candidate bag: the bag node set plus an opaque payload (resource
/// indices) recorded into `λ` of the produced [`Hypertree`].
pub type Candidate = (NodeSet, Vec<usize>);

/// The candidates for one block, opened by a [`CandidateSource`].
pub struct BlockCandidates<'a> {
    /// Fingerprint of the block's candidate universe, if the source can
    /// compute one cheaply (without expanding the stream). Blocks refuted
    /// at a previous width with the same fingerprint are refuted without
    /// touching `stream`. `None` disables cross-width reuse.
    pub universe_hash: Option<u128>,
    /// Candidate bags in decreasing priority order; pulled lazily.
    pub stream: Box<dyn Iterator<Item = Candidate> + Send + 'a>,
}

/// Supplies candidate bags for blocks `(comp, conn = N(comp))`.
///
/// `open` must be a pure function of the block: the engine calls it from
/// multiple workers and in an order that depends on scheduling, and the
/// determinism guarantee relies on every call for the same block yielding
/// the same candidates in the same order.
pub trait CandidateSource: Sync {
    fn open<'a>(&'a self, conn: &NodeSet, comp: &NodeSet) -> BlockCandidates<'a>;
}

/// A subtree of bags (pre-flattening). Shared, not cloned: sibling blocks
/// frequently reuse identical memoized subtrees.
#[derive(Debug)]
struct BagNode {
    bag: NodeSet,
    lambda: Vec<usize>,
    children: Vec<Arc<BagNode>>,
}

/// Memo slot for one block, tagged with the epoch (width level) that wrote
/// it. Stale `Solved` entries are dead; stale `Refuted` entries seed
/// cross-width reuse via their universe fingerprint.
#[derive(Clone)]
enum Slot {
    InFlight {
        epoch: u64,
    },
    Solved {
        epoch: u64,
        tree: Arc<BagNode>,
    },
    Refuted {
        epoch: u64,
        universe_hash: Option<u128>,
    },
}

enum Claim {
    /// Current-epoch verdict already present.
    Hit(Option<Arc<BagNode>>),
    /// Another worker is computing this block right now.
    Busy,
    /// We own the block. Carries the stale refutation fingerprint, if any.
    Mine(Option<u128>),
}

/// Counters for one engine instance. Snapshot-diffed around each width so
/// callers can attribute work to spans and global metrics.
#[derive(Default)]
struct EngineStats {
    blocks_solved: AtomicU64,
    memo_hits: AtomicU64,
    negative_reuse: AtomicU64,
    candidates_tried: AtomicU64,
}

/// A point-in-time copy of the engine's search counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Blocks actually computed (memo fills, positive or negative).
    pub blocks_solved: u64,
    /// Memo hits, including verdicts shared between concurrent workers.
    pub memo_hits: u64,
    /// Blocks refuted by an unchanged-universe transfer from a previous
    /// width, skipping candidate expansion entirely.
    pub negative_reuse: u64,
    /// Candidate bags pulled from streams and attempted.
    pub candidates_tried: u64,
}

/// FxHash — the multiply-xor hash FxHashMap uses; `NodeSet` keys are short
/// `u64` block vectors, where this beats SipHash by a wide margin. Local
/// because this workspace takes no external crates.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// Number of memo shards. Shard choice hashes the block, so concurrent
/// solves of distinct blocks almost never contend on a lock.
const MEMO_SHARDS: usize = 16;

/// Candidates attempted speculatively per batch when running parallel.
/// Batch attempts run to completion (no cancellation), so this bounds the
/// wasted work when an early candidate succeeds; the first-in-order success
/// is always the one kept.
const SPEC_BATCH: usize = 4;

/// The block-search engine. One instance persists across width levels so
/// that negative verdicts (and their universe fingerprints) carry over;
/// see [`Engine::decompose`].
pub struct Engine {
    h1: Hypergraph,
    primal: PrimalGraph,
    shards: Vec<Mutex<HashMap<NodeSet, Slot, FxBuild>>>,
    epoch: u64,
    stats: EngineStats,
}

impl Engine {
    pub fn new(h1: &Hypergraph) -> Engine {
        Engine {
            h1: h1.clone(),
            primal: PrimalGraph::of(h1),
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            epoch: 0,
            stats: EngineStats::default(),
        }
    }

    /// Runs one full decomposition search over the current candidate
    /// source. Call again (same engine, typically a widened source) to
    /// reuse negative block verdicts; positive entries are invalidated
    /// between calls so witnesses stay deterministic.
    pub fn decompose<S: CandidateSource>(&mut self, source: &S) -> Option<Hypertree> {
        self.epoch += 1;
        let this = &*self;
        let roots = this.components_within(&this.h1.nodes().clone());
        let forest = this.solve_all(&roots, source)?;
        let ht = flatten(&forest);
        debug_assert!(ht.covers_all_edges(&this.h1), "clique lemma violated: bug");
        debug_assert!(ht.is_connected(), "connectedness violated: bug");
        Some(ht)
    }

    /// Snapshot the engine's cumulative search counters.
    pub fn stats(&self) -> SearchStats {
        SearchStats {
            blocks_solved: self.stats.blocks_solved.load(Ordering::Relaxed),
            memo_hits: self.stats.memo_hits.load(Ordering::Relaxed),
            negative_reuse: self.stats.negative_reuse.load(Ordering::Relaxed),
            candidates_tried: self.stats.candidates_tried.load(Ordering::Relaxed),
        }
    }

    /// Open neighborhood of `set` in the primal graph.
    fn neighborhood(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new();
        for x in set.iter() {
            out.union_with(self.primal.neighbours(x));
        }
        out.difference_with(set);
        out
    }

    /// Connected components of the primal graph induced on `nodes`,
    /// ascending by smallest node. This sits on the innermost loop of the
    /// search (once per candidate attempt), so the BFS works a whole
    /// frontier *set* per round through two reused buffers instead of
    /// allocating per visited vertex.
    fn components_within(&self, nodes: &NodeSet) -> Vec<NodeSet> {
        let mut remaining = nodes.clone();
        let mut out = Vec::new();
        let mut frontier = NodeSet::new();
        let mut next = NodeSet::new();
        while let Some(start) = remaining.first() {
            let mut comp = NodeSet::singleton(start);
            remaining.remove(start);
            frontier.copy_from(&comp);
            while !frontier.is_empty() {
                next.clear();
                for v in frontier.iter() {
                    next.union_with(self.primal.neighbours(v));
                }
                next.intersect_with(&remaining);
                remaining.difference_with(&next);
                comp.union_with(&next);
                std::mem::swap(&mut frontier, &mut next);
            }
            out.push(comp);
        }
        out
    }

    fn shard_of(&self, comp: &NodeSet) -> &Mutex<HashMap<NodeSet, Slot, FxBuild>> {
        let mut h = FxHasher::default();
        comp.hash(&mut h);
        &self.shards[(h.finish() as usize) % MEMO_SHARDS]
    }

    /// Memo-claim the block: hit, wait for its in-flight owner, or own it.
    fn claim(&self, comp: &NodeSet) -> Claim {
        let mut map = self.shard_of(comp).lock().unwrap();
        let prior = match map.get(comp) {
            Some(Slot::Solved { epoch, tree }) if *epoch == self.epoch => {
                return Claim::Hit(Some(tree.clone()));
            }
            Some(Slot::Refuted { epoch, .. }) if *epoch == self.epoch => {
                return Claim::Hit(None);
            }
            Some(Slot::InFlight { epoch }) if *epoch == self.epoch => return Claim::Busy,
            Some(Slot::Refuted { universe_hash, .. }) => *universe_hash,
            _ => None,
        };
        map.insert(comp.clone(), Slot::InFlight { epoch: self.epoch });
        Claim::Mine(prior)
    }

    fn finish(&self, comp: &NodeSet, result: Option<Arc<BagNode>>, universe_hash: Option<u128>) {
        self.stats.blocks_solved.fetch_add(1, Ordering::Relaxed);
        let slot = match result {
            Some(tree) => Slot::Solved {
                epoch: self.epoch,
                tree,
            },
            None => Slot::Refuted {
                epoch: self.epoch,
                universe_hash,
            },
        };
        let mut map = self.shard_of(comp).lock().unwrap();
        // First write wins: if a racing duplicate computation already
        // published a verdict (it is the same value — `solve` is pure),
        // keep it.
        match map.get(comp) {
            Some(Slot::Solved { epoch, .. }) | Some(Slot::Refuted { epoch, .. })
                if *epoch == self.epoch => {}
            _ => {
                map.insert(comp.clone(), slot);
            }
        }
    }

    /// Decides decomposability of the block `(comp, N(comp))`.
    fn solve<S: CandidateSource>(&self, comp: &NodeSet, source: &S) -> Option<Arc<BagNode>> {
        let mut spins = 0u32;
        let prior = loop {
            match self.claim(comp) {
                Claim::Hit(r) => {
                    self.stats.memo_hits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                // Another worker is solving this exact block. Spin briefly
                // — it usually publishes its verdict within microseconds,
                // and sharing it avoids re-refuting the block. The spin
                // must be bounded: the pool's help-while-waiting stealing
                // can park the *owner* underneath a task that waits on its
                // block, so an unbounded wait would livelock. Past the
                // bound, compute the block independently — `solve` is a
                // pure function of the block, so the duplicate arrives at
                // the identical verdict and the first write wins.
                Claim::Busy => {
                    if spins < 256 {
                        spins += 1;
                        std::thread::yield_now();
                    } else {
                        break None;
                    }
                }
                Claim::Mine(prior) => break prior,
            }
        };
        let conn = self.neighborhood(comp);
        let opened = source.open(&conn, comp);
        let universe_hash = opened.universe_hash;
        if let (Some(h), Some(p)) = (universe_hash, prior) {
            if h == p {
                // Refuted at a previous width over the identical candidate
                // universe: the whole subtree search would replay verbatim.
                self.stats.negative_reuse.fetch_add(1, Ordering::Relaxed);
                self.finish(comp, None, universe_hash);
                return None;
            }
        }
        let result = self.search_block(comp, &conn, opened.stream, source);
        self.finish(comp, result.clone(), universe_hash);
        result
    }

    /// Pulls candidates (speculatively batched when parallel) until one
    /// decomposes the block or the stream runs dry.
    fn search_block<S: CandidateSource>(
        &self,
        comp: &NodeSet,
        conn: &NodeSet,
        stream: Box<dyn Iterator<Item = Candidate> + Send + '_>,
        source: &S,
    ) -> Option<Arc<BagNode>> {
        let allowed = conn.union(comp);
        let mut stream = stream.filter(|(bag, _)| {
            conn.is_subset(bag) && bag.is_subset(&allowed) && bag.intersects(comp)
        });
        let batch_n = if cqcount_exec::current_threads() == 1 {
            1
        } else {
            SPEC_BATCH
        };
        loop {
            let batch: Vec<Candidate> = stream.by_ref().take(batch_n).collect();
            if batch.is_empty() {
                return None;
            }
            self.stats
                .candidates_tried
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let attempts = cqcount_exec::par_map(&batch, |(bag, lambda)| {
                self.attempt(comp, bag, lambda, source)
            });
            // First-in-candidate-order success wins, same as sequential.
            if let Some(tree) = attempts.into_iter().flatten().next() {
                return Some(tree);
            }
        }
    }

    /// Tries one candidate bag: all components of `comp \ bag` must solve.
    fn attempt<S: CandidateSource>(
        &self,
        comp: &NodeSet,
        bag: &NodeSet,
        lambda: &[usize],
        source: &S,
    ) -> Option<Arc<BagNode>> {
        let rest = comp.difference(bag);
        let subs = self.components_within(&rest);
        let children = self.solve_all(&subs, source)?;
        Some(Arc::new(BagNode {
            bag: bag.clone(),
            lambda: lambda.to_vec(),
            children,
        }))
    }

    /// Solves sibling blocks, fanning them over the pool when parallel;
    /// `None` as soon as any block is undecomposable.
    fn solve_all<S: CandidateSource>(
        &self,
        comps: &[NodeSet],
        source: &S,
    ) -> Option<Vec<Arc<BagNode>>> {
        if comps.len() <= 1 || cqcount_exec::current_threads() == 1 {
            // Sequential reference path: short-circuit on the first failure.
            let mut out = Vec::with_capacity(comps.len());
            for sub in comps {
                out.push(self.solve(sub, source)?);
            }
            return Some(out);
        }
        cqcount_exec::par_map(comps, |sub| self.solve(sub, source))
            .into_iter()
            .collect()
    }
}

fn flatten(forest: &[Arc<BagNode>]) -> Hypertree {
    let mut chi = Vec::new();
    let mut lambda = Vec::new();
    let mut parent = Vec::new();
    let mut stack: Vec<(&BagNode, Option<usize>)> =
        forest.iter().map(|t| (t.as_ref(), None)).collect();
    while let Some((node, par)) = stack.pop() {
        let idx = chi.len();
        chi.push(node.bag.clone());
        lambda.push(node.lambda.clone());
        parent.push(par);
        for c in &node.children {
            stack.push((c.as_ref(), Some(idx)));
        }
    }
    Hypertree::from_parts(chi, lambda, parent)
}

/// Adapts a (possibly stateful) candidate closure to [`CandidateSource`]
/// by serializing calls through a mutex. Stateless closures keep full
/// block-level parallelism; only candidate *generation* serializes.
struct ClosureSource<F>(Mutex<F>);

impl<F> CandidateSource for ClosureSource<F>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> + Send,
{
    fn open<'a>(&'a self, conn: &NodeSet, comp: &NodeSet) -> BlockCandidates<'a> {
        let cands = (self.0.lock().unwrap())(conn, comp);
        BlockCandidates {
            universe_hash: None,
            stream: Box::new(cands.into_iter()),
        }
    }
}

/// Searches for a tree projection / constrained tree decomposition of `h1`
/// with bags drawn from `candidates(conn, comp)`.
///
/// The candidate closure receives the connector `conn` (which the bag must
/// contain) and the current component `comp` (the bag must stay within
/// `conn ∪ comp` and intersect `comp`); it may return candidates violating
/// these side conditions — they are filtered — but returning fewer saves
/// work. Returns a [`Hypertree`] whose `λ` holds the candidate payloads, or
/// `None` if no decomposition exists.
pub fn decompose<F>(h1: &Hypergraph, candidates: F) -> Option<Hypertree>
where
    F: FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> + Send,
{
    Engine::new(h1).decompose(&ClosureSource(Mutex::new(candidates)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    /// Candidate provider: all subsets of the given resource edges that
    /// contain `conn` (the generic "tree projection w.r.t. H2" provider).
    fn subsets_of(resources: Vec<NodeSet>) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
        move |conn, comp| {
            let allowed = conn.union(comp);
            let mut out = Vec::new();
            for (i, r) in resources.iter().enumerate() {
                let avail = r.intersection(&allowed);
                if !conn.is_subset(&avail) {
                    continue;
                }
                // enumerate conn ∪ X for X ⊆ (avail ∩ comp), X ≠ ∅
                let free: Vec<u32> = avail.intersection(comp).to_vec();
                for mask in 1u32..(1 << free.len()) {
                    let mut bag = conn.clone();
                    for (j, &x) in free.iter().enumerate() {
                        if mask & (1 << j) != 0 {
                            bag.insert(x);
                        }
                    }
                    out.push((bag, vec![i]));
                }
            }
            out
        }
    }

    #[test]
    fn acyclic_hypergraph_projects_onto_itself() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3]]);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn cycle_needs_bigger_resources() {
        // 4-cycle: no tree projection onto its own edges…
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(decompose(&g, subsets_of(g.edges().to_vec())).is_none());
        // …but adding pairwise unions (width 2) suffices.
        let mut resources = g.edges().to_vec();
        for i in 0..4 {
            for j in i + 1..4 {
                resources.push(g.edges()[i].union(&g.edges()[j]));
            }
        }
        let ht = decompose(&g, subsets_of(resources.clone())).unwrap();
        assert!(ht.covers_all_edges(&g));
        assert!(ht.is_connected());
        assert!(ht.bags_acyclic());
    }

    #[test]
    fn triangle_with_big_edge() {
        let g = h(&[&[0, 1], &[1, 2], &[0, 2]]);
        // resource {0,1,2} covers the whole triangle
        let resources: Vec<NodeSet> = vec![[0, 1, 2].into()];
        let ht = decompose(&g, subsets_of(resources)).unwrap();
        assert!(ht.covers_all_edges(&g));
    }

    #[test]
    fn disconnected_components() {
        let g = h(&[&[0, 1], &[5, 6]]);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert_eq!(ht.roots.len(), 2);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn infeasible_when_an_edge_is_uncoverable() {
        let g = h(&[&[0, 1, 2]]);
        let resources: Vec<NodeSet> = vec![[0, 1].into(), [1, 2].into()];
        assert!(decompose(&g, subsets_of(resources)).is_none());
    }

    #[test]
    fn q0_example_3_5_views() {
        // Figure 7(d): views over {A,B,I}, {B,E}, {B,C,D}, {D,F,H},
        // {D,G,H} … we use the view set V0 of Example 3.5 — check the core
        // hypergraph H_{Q0'} has a tree projection w.r.t. it (Figure 7(c)).
        // Q0' (core): mw{A,B,I}, wt{B,D}, wi{B,E}, pt{C,D}, st{D,F},
        // rr{F,H}, rr{D,H}; A=0,B=1,C=2,D=3,E=4,F=5,H=7,I=8.
        let q0_core = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[5, 7],
            &[3, 7],
        ]);
        let views: Vec<NodeSet> = vec![
            [0, 1, 8].into(),
            [1, 4].into(),
            [1, 2, 3].into(),
            [3, 5, 7].into(),
        ];
        let ht = decompose(&q0_core, subsets_of(views.clone())).unwrap();
        assert!(ht.verify_ghd(&q0_core, &views));
    }

    #[test]
    fn memoization_handles_repeated_blocks() {
        // A long path reuses many identical sub-blocks when resources allow
        // multiple decompositions; this is a smoke test that it stays fast.
        let edges: Vec<Vec<u32>> = (0..16u32).map(|i| vec![i, i + 1]).collect();
        let g = Hypergraph::from_edges(edges);
        let ht = decompose(&g, subsets_of(g.edges().to_vec())).unwrap();
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn parallel_engine_matches_sequential_witness() {
        // The same search at 1 and many threads must produce the *same*
        // hypertree, bag for bag — determinism is part of the engine's
        // contract, not a best-effort property.
        let g = h(&[
            &[0, 1],
            &[1, 2],
            &[2, 3],
            &[3, 0],
            &[1, 3],
            &[2, 4],
            &[4, 5],
        ]);
        let mut resources = g.edges().to_vec();
        for i in 0..g.edges().len() {
            for j in i + 1..g.edges().len() {
                resources.push(g.edges()[i].union(&g.edges()[j]));
            }
        }
        let seq =
            cqcount_exec::with_threads(1, || decompose(&g, subsets_of(resources.clone())).unwrap());
        let par =
            cqcount_exec::with_threads(8, || decompose(&g, subsets_of(resources.clone())).unwrap());
        assert_eq!(seq.chi, par.chi);
        assert_eq!(seq.lambda, par.lambda);
    }

    #[test]
    fn engine_reuses_negative_verdicts_across_calls() {
        // A source whose fingerprint says "unchanged": the second search
        // must refute every block via transfer, never touching the stream.
        struct Fixed {
            cands: Vec<Candidate>,
        }
        impl CandidateSource for Fixed {
            fn open<'a>(&'a self, _conn: &NodeSet, _comp: &NodeSet) -> BlockCandidates<'a> {
                BlockCandidates {
                    universe_hash: Some(7),
                    stream: Box::new(self.cands.iter().cloned()),
                }
            }
        }
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let src = Fixed { cands: Vec::new() };
        let mut engine = Engine::new(&g);
        assert!(engine.decompose(&src).is_none());
        let first = engine.stats();
        assert!(first.blocks_solved >= 1);
        assert_eq!(first.negative_reuse, 0);
        assert!(engine.decompose(&src).is_none());
        let second = engine.stats();
        assert!(
            second.negative_reuse >= 1,
            "second sweep must transfer the refutation: {second:?}"
        );
    }
}
