//! Generalized hypertree decompositions and tree projections w.r.t. explicit
//! view sets (Section 4).
//!
//! A width-`k` generalized hypertree decomposition of a hypergraph `H` with
//! resource edges `R` (the atoms of the query) is a tree projection of `H`
//! w.r.t. the view set `V^k` whose hyperedges are the unions of `k` resource
//! edges — the two notions are interchangeable (Section 4). `λ` labels in
//! the produced [`Hypertree`] are resource indices.
//!
//! # Lazy candidate streams
//!
//! Candidates for a block are subsets of *candidate universes*: for each
//! union `U` of ≤ `k` resources, the universe is `U ∩ (conn ∪ comp)`,
//! deduplicated first-wins across combos, and every bag `conn ∪ X` for
//! non-empty `X ⊆ universe \ conn` is a candidate. The search wants them in
//! priority order — connected λ-sets before disconnected, large bags before
//! small, few resources before many — and takes the *first* witness, so
//! materializing and sorting all `Σ 2^f` bags up front (the pre-PR-5
//! engine, kept as [`ghw_at_most_eager`]) wastes almost all of that work.
//! [`UnionSpace`] instead streams each universe's subsets in descending
//! size via Gosper's hack (fixed-popcount masks in ascending numeric
//! order) and merges the per-universe streams through a binary heap whose
//! key reproduces the eager engine's sort exactly — including its
//! stable-sort tie-breaking — so the two engines try candidates in the
//! *identical* order and find identical witnesses.
//!
//! # Cross-width reuse
//!
//! [`GhwSearch`] keeps one [`Engine`] and one [`UnionSpace`] across the
//! whole `k = 1, 2, …` sweep: combo layers extend incrementally, and blocks
//! refuted at width `k` whose candidate-universe fingerprint is unchanged
//! at `k+1` are refuted again without expanding any bags (see
//! `tp`'s module docs and DESIGN.md §Planner for the soundness argument).

use crate::tp::{
    decompose, BlockCandidates, Candidate, CandidateSource, Engine, FxHasher, SearchStats,
};
use crate::Hypertree;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// All `k`-element index combinations of `0..n` for `k ≤ max_k`.
pub(crate) fn combinations_upto(n: usize, max_k: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![vec![]];
    let mut result = Vec::new();
    for _ in 0..max_k {
        let mut next = Vec::new();
        for combo in &out {
            let start = combo.last().map_or(0, |&l| l + 1);
            for i in start..n {
                let mut c = combo.clone();
                c.push(i);
                next.push(c);
            }
        }
        result.extend(next.iter().cloned());
        out = next;
    }
    result
}

/// Exhaustive sub-bag enumeration is only attempted up to this many free
/// vertices per candidate universe (2^f bags); beyond it, only the maximal
/// bag is emitted so wide atoms degrade gracefully instead of overflowing.
const MAX_ENUM_FREE: usize = 20;

/// Whether the resource edges indexed by `combo` form a connected
/// hypergraph (via pairwise intersections).
fn is_connected_combo(combo: &[usize], resources: &[NodeSet]) -> bool {
    if combo.len() <= 1 {
        return true;
    }
    let mut reached = vec![false; combo.len()];
    reached[0] = true;
    let mut frontier = vec![0usize];
    while let Some(i) = frontier.pop() {
        for j in 0..combo.len() {
            if !reached[j] && resources[combo[i]].intersects(&resources[combo[j]]) {
                reached[j] = true;
                frontier.push(j);
            }
        }
    }
    reached.into_iter().all(|r| r)
}

/// One analyzed resource combination: its union and λ-connectivity.
struct ComboEntry {
    union: NodeSet,
    combo: Vec<usize>,
    connected: bool,
}

/// The incrementally-extended space of resource unions for a `k`-sweep.
///
/// Holds every combo of ≤ `k` resources with its union and connectivity,
/// in two priority groups (connected first), each in ascending combo size
/// — the exact order the eager engine sorted combos into. Extending to
/// `k+1` only analyzes the new size-(k+1) layer.
pub struct UnionSpace {
    resources: Vec<NodeSet>,
    entries: Vec<ComboEntry>,
    /// Indices into `entries`: connected combos, ascending size.
    conn_order: Vec<u32>,
    /// Indices into `entries`: disconnected combos, ascending size.
    disc_order: Vec<u32>,
    /// The size-`k` combos, kept to generate the next layer.
    last_layer: Vec<Vec<usize>>,
    k: usize,
    universes_opened: AtomicU64,
}

impl UnionSpace {
    pub fn new(resources: Vec<NodeSet>) -> UnionSpace {
        UnionSpace {
            resources,
            entries: Vec::new(),
            conn_order: Vec::new(),
            disc_order: Vec::new(),
            last_layer: vec![Vec::new()],
            k: 0,
            universes_opened: AtomicU64::new(0),
        }
    }

    /// Number of combos analyzed so far.
    pub fn combos(&self) -> usize {
        self.entries.len()
    }

    /// Candidate universes opened (deduped per-block avail sets), total.
    pub fn universes_opened(&self) -> u64 {
        self.universes_opened.load(Ordering::Relaxed)
    }

    /// Extends the space with combo layers up to size `k`. The per-combo
    /// union + connectivity analysis is embarrassingly parallel and pays
    /// for itself once `C(n, k)` gets into the thousands.
    pub fn extend_to(&mut self, k: usize) {
        let n = self.resources.len();
        while self.k < k {
            let layer: Vec<Vec<usize>> = self
                .last_layer
                .iter()
                .flat_map(|combo| {
                    let start = combo.last().map_or(0, |&l| l + 1);
                    (start..n).map(move |i| {
                        let mut c = combo.clone();
                        c.push(i);
                        c
                    })
                })
                .collect();
            let analyzed: Vec<(NodeSet, bool)> = cqcount_exec::par_map(&layer, |combo| {
                let mut u = NodeSet::new();
                for &i in combo {
                    u.union_with(&self.resources[i]);
                }
                // Connected λ-sets materialize as joins with shared
                // columns; disconnected ones are cross products. Preferring
                // connected combos does not affect completeness, only which
                // witness is found first — and its evaluation cost.
                (u, is_connected_combo(combo, &self.resources))
            });
            for (combo, (union, connected)) in layer.iter().zip(analyzed) {
                let idx = self.entries.len() as u32;
                self.entries.push(ComboEntry {
                    union,
                    combo: combo.clone(),
                    connected,
                });
                if connected {
                    self.conn_order.push(idx);
                } else {
                    self.disc_order.push(idx);
                }
            }
            self.last_layer = layer;
            self.k += 1;
        }
    }
}

/// The lazy per-universe subset stream: yields the masks of one candidate
/// universe in descending popcount, ascending numeric order within a
/// popcount (Gosper's hack) — the same order the eager engine's stable
/// sort produced.
struct UniState<'a> {
    combo: &'a [usize],
    combo_len: usize,
    connected: bool,
    free: Vec<u32>,
    /// Current subset size (popcount), descending from `free.len()` to 1.
    size: usize,
    /// Current mask over `free`, popcount == `size`.
    mask: u64,
    /// `free.len() > MAX_ENUM_FREE`: emit only the maximal bag.
    capped: bool,
    done: bool,
}

/// Next mask with the same popcount (Gosper's hack); caller checks overflow.
fn next_same_popcount(v: u64) -> u64 {
    let c = v & v.wrapping_neg();
    let r = v + c;
    (((r ^ v) >> 2) / c) | r
}

impl UniState<'_> {
    fn bag(&self, conn: &NodeSet) -> NodeSet {
        let mut bag = conn.clone();
        if self.capped {
            for &x in &self.free {
                bag.insert(x);
            }
            return bag;
        }
        for (j, &x) in self.free.iter().enumerate() {
            if self.mask & (1 << j) != 0 {
                bag.insert(x);
            }
        }
        bag
    }

    /// Move to the next mask; `false` when the stream is exhausted.
    fn advance(&mut self) -> bool {
        if self.capped {
            self.done = true;
            return false;
        }
        let next = next_same_popcount(self.mask);
        if next < (1u64 << self.free.len()) {
            self.mask = next;
            return true;
        }
        if self.size > 1 {
            self.size -= 1;
            self.mask = (1u64 << self.size) - 1;
            return true;
        }
        self.done = true;
        false
    }
}

/// Heap key for the candidate merge, matching the eager sort key
/// `(!connected, Reverse(bag.len()), combo.len())` plus the universe's
/// kept-index as the stable-sort tie-break. `BinaryHeap` is a max-heap, so
/// items are wrapped in `Reverse`.
type MergeKey = (bool, Reverse<usize>, usize, usize);

struct LazyCandidates<'a> {
    conn: NodeSet,
    unis: Vec<UniState<'a>>,
    heap: BinaryHeap<Reverse<MergeKey>>,
}

impl LazyCandidates<'_> {
    fn key(&self, idx: usize) -> MergeKey {
        let u = &self.unis[idx];
        (
            !u.connected,
            Reverse(self.conn.len() + u.size),
            u.combo_len,
            idx,
        )
    }
}

impl Iterator for LazyCandidates<'_> {
    type Item = Candidate;

    fn next(&mut self) -> Option<Candidate> {
        let Reverse((_, _, _, idx)) = self.heap.pop()?;
        let bag = self.unis[idx].bag(&self.conn);
        let lambda = self.unis[idx].combo.to_vec();
        if self.unis[idx].advance() {
            let key = self.key(idx);
            self.heap.push(Reverse(key));
        }
        Some((bag, lambda))
    }
}

/// Order-independent 128-bit fingerprint of a block's deduped universe
/// collection. Refutations transfer across widths only on exact match, so
/// this must identify the *set* of avail sets, not their discovery order
/// (which shifts as combo layers are appended).
fn universe_fingerprint(mut avails: Vec<NodeSet>) -> u128 {
    avails.sort();
    let mut lo = FxHasher::default();
    let mut hi = FxHasher::default();
    lo.write_u64(0x9e37_79b9_7f4a_7c15);
    hi.write_u64(0x6a09_e667_f3bc_c909);
    for a in &avails {
        a.hash(&mut lo);
        a.hash(&mut hi);
    }
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

impl CandidateSource for UnionSpace {
    fn open<'a>(&'a self, conn: &NodeSet, comp: &NodeSet) -> BlockCandidates<'a> {
        let allowed = conn.union(comp);
        // Dedup the available-universe sets sequentially (the `seen` state
        // is order-dependent by design: first — most connected — wins).
        let mut seen: HashSet<NodeSet> = HashSet::new();
        let mut unis: Vec<UniState<'a>> = Vec::new();
        let mut avails: Vec<NodeSet> = Vec::new();
        for &idx in self.conn_order.iter().chain(self.disc_order.iter()) {
            let e = &self.entries[idx as usize];
            // Zero-alloc pre-filter: most combos fail the connector test,
            // so don't materialize their available sets at all.
            if !conn.subset_of_intersection(&e.union, &allowed) {
                continue;
            }
            let avail = e.union.intersection(&allowed);
            if !seen.insert(avail.clone()) {
                continue;
            }
            let free: Vec<u32> = avail.difference(conn).to_vec();
            if free.is_empty() {
                // The universe is exactly `conn`: no bag intersects `comp`.
                continue;
            }
            let capped = free.len() > MAX_ENUM_FREE;
            let size = free.len();
            unis.push(UniState {
                combo: &e.combo,
                combo_len: e.combo.len(),
                connected: e.connected,
                mask: if capped { 0 } else { (1u64 << size) - 1 },
                size,
                free,
                capped,
                done: false,
            });
            avails.push(avail);
        }
        self.universes_opened
            .fetch_add(unis.len() as u64, Ordering::Relaxed);
        let universe_hash = Some(universe_fingerprint(avails));
        let mut stream = LazyCandidates {
            conn: conn.clone(),
            unis,
            heap: BinaryHeap::new(),
        };
        for idx in 0..stream.unis.len() {
            let key = stream.key(idx);
            stream.heap.push(Reverse(key));
        }
        BlockCandidates {
            universe_hash,
            stream: Box::new(stream),
        }
    }
}

/// An incremental width sweep: one [`Engine`] and one [`UnionSpace`]
/// shared across `at_most(1), at_most(2), …`, so combo analysis extends
/// instead of restarting and negative block verdicts carry forward.
pub struct GhwSearch {
    space: UnionSpace,
    engine: Engine,
}

impl GhwSearch {
    pub fn new(cover: &Hypergraph, resources: &[NodeSet]) -> GhwSearch {
        GhwSearch {
            space: UnionSpace::new(resources.to_vec()),
            engine: Engine::new(cover),
        }
    }

    /// Searches for a width-`k` decomposition, reusing everything learned
    /// at smaller widths.
    pub fn at_most(&mut self, k: usize) -> Option<Hypertree> {
        let counters = cqcount_obs::planner::counters();
        counters.widths_searched.inc();
        {
            let sp = cqcount_obs::trace::span("plan.candidates");
            let before = self.space.combos();
            self.space.extend_to(k);
            if sp.is_armed() {
                sp.add("combos_new", (self.space.combos() - before) as u64);
                sp.add("combos_total", self.space.combos() as u64);
                sp.add("width", k as u64);
            }
        }
        let sp = cqcount_obs::trace::span("plan.blocks");
        let before = self.engine.stats();
        let before_unis = self.space.universes_opened();
        let ht = self.engine.decompose(&self.space);
        let after = self.engine.stats();
        let unis = self.space.universes_opened() - before_unis;
        counters
            .blocks_solved
            .add(after.blocks_solved - before.blocks_solved);
        counters.memo_hits.add(after.memo_hits - before.memo_hits);
        counters
            .negative_reuse
            .add(after.negative_reuse - before.negative_reuse);
        counters
            .candidates_yielded
            .add(after.candidates_tried - before.candidates_tried);
        counters.universes_opened.add(unis);
        if sp.is_armed() {
            sp.add("width", k as u64);
            sp.add("blocks_solved", after.blocks_solved - before.blocks_solved);
            sp.add("memo_hits", after.memo_hits - before.memo_hits);
            sp.add(
                "negative_reuse",
                after.negative_reuse - before.negative_reuse,
            );
            sp.add(
                "candidates",
                after.candidates_tried - before.candidates_tried,
            );
            sp.add("universes", unis);
            sp.tag("found", if ht.is_some() { "yes" } else { "no" });
        }
        ht
    }

    /// Cumulative engine counters for this sweep.
    pub fn stats(&self) -> SearchStats {
        self.engine.stats()
    }
}

/// Builds the pre-PR-5 eager candidate provider: materializes every
/// candidate bag of every universe and sorts them globally. Kept as the
/// benchmark baseline and as the ordering oracle for the lazy stream.
fn eager_union_candidates(
    resources: Vec<NodeSet>,
    k: usize,
) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
    let all_combos = combinations_upto(resources.len(), k);
    let mut combos: Vec<(NodeSet, Vec<usize>, bool)> =
        cqcount_exec::par_map(&all_combos, |combo| {
            let mut u = NodeSet::new();
            for &i in combo {
                u.union_with(&resources[i]);
            }
            let connected = is_connected_combo(combo, &resources);
            (u, combo.clone(), connected)
        });
    combos.sort_by_key(|(_, combo, connected)| (!connected, combo.len()));
    move |conn, comp| {
        let allowed = conn.union(comp);
        let mut seen: HashSet<NodeSet> = HashSet::new();
        let mut kept: Vec<(NodeSet, &Vec<usize>, bool)> = Vec::new();
        for (union, combo, connected) in &combos {
            let avail = union.intersection(&allowed);
            if !conn.is_subset(&avail) || !seen.insert(avail.clone()) {
                continue;
            }
            kept.push((avail, combo, *connected));
        }
        let expanded = cqcount_exec::par_map(&kept, |(avail, combo, connected)| {
            let free: Vec<u32> = avail.difference(conn).to_vec();
            let mut out = Vec::new();
            let mut keys = Vec::new();
            if free.len() > MAX_ENUM_FREE {
                let mut bag = conn.clone();
                bag.union_with(avail);
                keys.push((!*connected, Reverse(bag.len()), combo.len()));
                out.push((bag, (*combo).clone()));
                return (out, keys);
            }
            for mask in 1u32..(1u32 << free.len()) {
                let mut bag = conn.clone();
                for (j, &x) in free.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        bag.insert(x);
                    }
                }
                keys.push((!*connected, Reverse(bag.len()), combo.len()));
                out.push((bag, (*combo).clone()));
            }
            (out, keys)
        });
        let mut out = Vec::new();
        let mut keys = Vec::new();
        for (o, k) in expanded {
            out.extend(o);
            keys.extend(k);
        }
        let mut idx: Vec<usize> = (0..out.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        idx.into_iter().map(|i| out[i].clone()).collect()
    }
}

/// Searches for a width-`k` generalized hypertree decomposition of `cover`
/// using `resources` as the `λ`-candidates.
///
/// `cover` may contain *more* hyperedges than the resources generate (e.g.
/// the frontier hyperedges of a #-hypertree decomposition, Definition 1.2):
/// every hyperedge of `cover` must fit in some bag, while bags must be
/// covered by at most `k` resources.
pub fn ghw_at_most(cover: &Hypergraph, resources: &[NodeSet], k: usize) -> Option<Hypertree> {
    GhwSearch::new(cover, resources).at_most(k)
}

/// The eager (materialize-and-sort) engine `ghw_at_most` used before the
/// lazy streams landed. Identical witnesses, asymptotically more work per
/// block; benchmark baseline only.
pub fn ghw_at_most_eager(cover: &Hypergraph, resources: &[NodeSet], k: usize) -> Option<Hypertree> {
    decompose(cover, eager_union_candidates(resources.to_vec(), k))
}

/// The exact generalized hypertree width of `cover` w.r.t. `resources`,
/// bounded by `max_k`. Returns the width and a witness. The sweep shares
/// one [`GhwSearch`], so each width extends — rather than restarts — the
/// last.
pub fn ghw_exact(
    cover: &Hypergraph,
    resources: &[NodeSet],
    max_k: usize,
) -> Option<(usize, Hypertree)> {
    let mut search = GhwSearch::new(cover, resources);
    (1..=max_k).find_map(|k| search.at_most(k).map(|ht| (k, ht)))
}

/// Searches for a tree projection of `(h1, h2)`: bags are subsets of single
/// `h2` hyperedges; `λ` holds the covering `h2` edge index.
pub fn tree_projection(h1: &Hypergraph, h2: &Hypergraph) -> Option<Hypertree> {
    let resources: Vec<NodeSet> = h2.edges().to_vec();
    GhwSearch::new(h1, &resources).at_most(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn combinations() {
        assert_eq!(combinations_upto(3, 1), vec![vec![0], vec![1], vec![2]]);
        let c2 = combinations_upto(3, 2);
        assert_eq!(c2.len(), 3 + 3);
        assert!(c2.contains(&vec![0, 2]));
        assert_eq!(combinations_upto(0, 2).len(), 0);
    }

    #[test]
    fn acyclic_has_ghw_1() {
        let g = h(&[&[0, 1], &[1, 2], &[1, 3, 4]]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 1);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn cycle_has_ghw_2() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.verify_ghd(&g, g.edges()));
        assert!(ht.width() <= 2);
    }

    #[test]
    fn q0_has_ghw_2() {
        // Example 1.1 / Figure 2: hypertree width 2.
        let g = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[3, 6],
            &[6, 7],
            &[5, 7],
            &[3, 7],
        ]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn sharp_cover_extra_edges() {
        // Example 4.1 / Figure 8: the 4-cycle Q1 with the frontier edge
        // {A,C} = {0,2} added; still width 2 w.r.t. the cycle's atoms.
        let atoms: Vec<NodeSet> = vec![[0, 1].into(), [1, 2].into(), [2, 3].into(), [3, 0].into()];
        let mut cover = Hypergraph::from_edges(atoms.iter().map(|e| e.iter()));
        cover.add_edge([0, 2].into()); // frontier {A,C}
        let (w, ht) = ghw_exact(&cover, &atoms, 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.covers_all_edges(&cover));
        assert!(ht.lambda_covers_chi(&atoms));
    }

    #[test]
    fn clique_needs_half_width() {
        // K4 as binary edges: ghw(K4) = 2.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push(vec![i, j]);
            }
        }
        let g = Hypergraph::from_edges(edges);
        let (w, _) = ghw_exact(&g, g.edges(), 4).unwrap();
        assert_eq!(w, 2);
    }

    #[test]
    fn width_bound_respected() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(ghw_at_most(&g, g.edges(), 1).is_none());
    }

    #[test]
    fn tree_projection_wrapper() {
        let g = h(&[&[0, 1], &[1, 2], &[0, 2]]);
        let views = h(&[&[0, 1, 2]]);
        let ht = tree_projection(&g, &views).unwrap();
        assert!(ht.covers_all_edges(&g));
        let no_views = h(&[&[0, 1], &[1, 2]]);
        assert!(tree_projection(&g, &no_views).is_none());
    }

    #[test]
    fn biclique_has_ghw_n() {
        // K_{2,2} as binary edges r(x_i, y_j): ghw = 2 (it is the 4-cycle);
        // K_{3,3} has ghw 3 — checked as "not ≤ 2".
        let mut edges = Vec::new();
        for i in 0..3u32 {
            for j in 0..3u32 {
                edges.push(vec![i, 3 + j]);
            }
        }
        let g = Hypergraph::from_edges(edges);
        assert!(ghw_at_most(&g, g.edges(), 2).is_none());
        assert!(ghw_at_most(&g, g.edges(), 3).is_some());
    }

    /// The lazy stream must yield candidates in the *exact* order the eager
    /// engine materialized them — the search witness depends on it.
    #[test]
    fn lazy_stream_matches_eager_order() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0], &[1, 3], &[0, 2, 4]]);
        let resources = g.edges().to_vec();
        for k in 1..=3 {
            let mut eager = eager_union_candidates(resources.clone(), k);
            let mut space = UnionSpace::new(resources.clone());
            space.extend_to(k);
            // Representative blocks: the whole graph, a sub-component with
            // a non-trivial connector, and a singleton.
            let blocks: Vec<(NodeSet, NodeSet)> = vec![
                (NodeSet::new(), g.nodes().clone()),
                ([1, 3].into(), [2, 4].into()),
                ([0, 2].into(), NodeSet::singleton(1)),
            ];
            for (conn, comp) in &blocks {
                let want = eager(conn, comp);
                let got: Vec<Candidate> = space.open(conn, comp).stream.collect();
                assert_eq!(got, want, "k={k} conn={conn:?} comp={comp:?}");
            }
        }
    }

    /// Re-searching the same width transfers every refutation: the second
    /// sweep expands no candidate universes at all.
    #[test]
    fn unchanged_universe_refutes_without_expansion() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let mut s = GhwSearch::new(&g, g.edges());
        assert!(s.at_most(1).is_none());
        let first = s.stats();
        assert_eq!(first.negative_reuse, 0);
        assert!(s.at_most(1).is_none());
        let second = s.stats();
        assert!(
            second.negative_reuse > 0,
            "repeat sweep should reuse negatives: {second:?}"
        );
        assert_eq!(
            second.candidates_tried, first.candidates_tried,
            "no candidate may be re-expanded on an unchanged universe"
        );
        // And the sweep still finds the width-2 witness afterwards.
        assert!(s.at_most(2).is_some());
    }

    /// Parallel and sequential sweeps agree bag-for-bag on the paper's Q0.
    #[test]
    fn parallel_sweep_is_deterministic() {
        let g = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[3, 6],
            &[6, 7],
            &[5, 7],
            &[3, 7],
        ]);
        let seq = cqcount_exec::with_threads(1, || ghw_exact(&g, g.edges(), 3)).unwrap();
        let par = cqcount_exec::with_threads(8, || ghw_exact(&g, g.edges(), 3)).unwrap();
        assert_eq!(seq.0, par.0);
        assert_eq!(seq.1.chi, par.1.chi);
        assert_eq!(seq.1.lambda, par.1.lambda);
        // …and both match the eager oracle's witness.
        let eager = ghw_at_most_eager(&g, g.edges(), seq.0).unwrap();
        assert_eq!(seq.1.chi, eager.chi);
        assert_eq!(seq.1.lambda, eager.lambda);
    }
}
