//! Generalized hypertree decompositions and tree projections w.r.t. explicit
//! view sets (Section 4).
//!
//! A width-`k` generalized hypertree decomposition of a hypergraph `H` with
//! resource edges `R` (the atoms of the query) is a tree projection of `H`
//! w.r.t. the view set `V^k` whose hyperedges are the unions of `k` resource
//! edges — the two notions are interchangeable (Section 4). `λ` labels in
//! the produced [`Hypertree`] are resource indices.

use crate::tp::{decompose, Candidate};
use crate::Hypertree;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::HashSet;

/// All `k`-element index combinations of `0..n` for `k ≤ max_k`.
pub(crate) fn combinations_upto(n: usize, max_k: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![vec![]];
    let mut result = Vec::new();
    for _ in 0..max_k {
        let mut next = Vec::new();
        for combo in &out {
            let start = combo.last().map_or(0, |&l| l + 1);
            for i in start..n {
                let mut c = combo.clone();
                c.push(i);
                next.push(c);
            }
        }
        result.extend(next.iter().cloned());
        out = next;
    }
    result
}

/// Exhaustive sub-bag enumeration is only attempted up to this many free
/// vertices per candidate universe (2^f bags); beyond it, only the maximal
/// bag is emitted so wide atoms degrade gracefully instead of overflowing.
const MAX_ENUM_FREE: usize = 20;

/// Builds a candidate provider whose bags are subsets of unions of at most
/// `k` of the given resource edges.
fn union_candidates(
    resources: Vec<NodeSet>,
    k: usize,
) -> impl FnMut(&NodeSet, &NodeSet) -> Vec<Candidate> {
    // The per-combo union + connectivity analysis is embarrassingly
    // parallel and pays for itself once `C(n, k)` gets into the thousands.
    let all_combos = combinations_upto(resources.len(), k);
    let mut combos: Vec<(NodeSet, Vec<usize>, bool)> =
        cqcount_exec::par_map(&all_combos, |combo| {
            let mut u = NodeSet::new();
            for &i in combo {
                u.union_with(&resources[i]);
            }
            // Connected λ-sets materialize as joins with shared columns;
            // disconnected ones are cross products. Preferring connected
            // combos does not affect completeness, only which witness is
            // found first — and the witness's evaluation cost.
            let connected = is_connected_combo(combo, &resources);
            (u, combo.clone(), connected)
        });
    // Connected combos first, so the per-`avail` dedup below keeps a
    // connected witness whenever one generates the same bag universe.
    combos.sort_by_key(|(_, combo, connected)| (!connected, combo.len()));
    move |conn, comp| {
        let allowed = conn.union(comp);
        // Dedup the available-universe sets sequentially (the `seen` state
        // is order-dependent by design: first — most connected — wins) ...
        let mut seen: HashSet<NodeSet> = HashSet::new();
        let mut kept: Vec<(NodeSet, &Vec<usize>, bool)> = Vec::new();
        for (union, combo, connected) in &combos {
            let avail = union.intersection(&allowed);
            if !conn.is_subset(&avail) || !seen.insert(avail.clone()) {
                continue;
            }
            kept.push((avail, combo, *connected));
        }
        // ... then expand every kept universe into its candidate bags in
        // parallel; flattening in `kept` order keeps the result (and hence
        // the decomposition search) deterministic.
        let expanded = cqcount_exec::par_map(&kept, |(avail, combo, connected)| {
            let free: Vec<u32> = avail.difference(conn).to_vec();
            let mut out = Vec::new();
            let mut keys = Vec::new();
            if free.len() > MAX_ENUM_FREE {
                // 2^f sub-bags is infeasible here; fall back to the maximal
                // bag, which is always a valid candidate (it is what the
                // reduced normal form of det-k-decomp uses). The search
                // stays sound — witnesses are verified downstream — it just
                // no longer explores strict sub-bags of enormous universes.
                let mut bag = conn.clone();
                bag.union_with(avail);
                keys.push((!*connected, std::cmp::Reverse(bag.len()), combo.len()));
                out.push((bag, (*combo).clone()));
                return (out, keys);
            }
            for mask in 1u32..(1u32 << free.len()) {
                let mut bag = conn.clone();
                for (j, &x) in free.iter().enumerate() {
                    if mask & (1 << j) != 0 {
                        bag.insert(x);
                    }
                }
                keys.push((!*connected, std::cmp::Reverse(bag.len()), combo.len()));
                out.push((bag, (*combo).clone()));
            }
            (out, keys)
        });
        let mut out = Vec::new();
        let mut keys = Vec::new();
        for (o, k) in expanded {
            out.extend(o);
            keys.extend(k);
        }
        // Try connected-λ, large bags first: they absorb more edges and
        // evaluate cheaply; completeness does not depend on the order.
        let mut idx: Vec<usize> = (0..out.len()).collect();
        idx.sort_by_key(|&i| keys[i]);
        idx.into_iter().map(|i| out[i].clone()).collect()
    }
}

/// Whether the resource edges indexed by `combo` form a connected
/// hypergraph (via pairwise intersections).
fn is_connected_combo(combo: &[usize], resources: &[NodeSet]) -> bool {
    if combo.len() <= 1 {
        return true;
    }
    let mut reached = vec![false; combo.len()];
    reached[0] = true;
    let mut frontier = vec![0usize];
    while let Some(i) = frontier.pop() {
        for j in 0..combo.len() {
            if !reached[j] && resources[combo[i]].intersects(&resources[combo[j]]) {
                reached[j] = true;
                frontier.push(j);
            }
        }
    }
    reached.into_iter().all(|r| r)
}

/// Searches for a width-`k` generalized hypertree decomposition of `cover`
/// using `resources` as the `λ`-candidates.
///
/// `cover` may contain *more* hyperedges than the resources generate (e.g.
/// the frontier hyperedges of a #-hypertree decomposition, Definition 1.2):
/// every hyperedge of `cover` must fit in some bag, while bags must be
/// covered by at most `k` resources.
pub fn ghw_at_most(cover: &Hypergraph, resources: &[NodeSet], k: usize) -> Option<Hypertree> {
    decompose(cover, union_candidates(resources.to_vec(), k))
}

/// The exact generalized hypertree width of `cover` w.r.t. `resources`,
/// bounded by `max_k`. Returns the width and a witness.
pub fn ghw_exact(
    cover: &Hypergraph,
    resources: &[NodeSet],
    max_k: usize,
) -> Option<(usize, Hypertree)> {
    (1..=max_k).find_map(|k| ghw_at_most(cover, resources, k).map(|ht| (k, ht)))
}

/// Searches for a tree projection of `(h1, h2)`: bags are subsets of single
/// `h2` hyperedges; `λ` holds the covering `h2` edge index.
pub fn tree_projection(h1: &Hypergraph, h2: &Hypergraph) -> Option<Hypertree> {
    let resources: Vec<NodeSet> = h2.edges().to_vec();
    decompose(h1, union_candidates(resources, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn combinations() {
        assert_eq!(combinations_upto(3, 1), vec![vec![0], vec![1], vec![2]]);
        let c2 = combinations_upto(3, 2);
        assert_eq!(c2.len(), 3 + 3);
        assert!(c2.contains(&vec![0, 2]));
        assert_eq!(combinations_upto(0, 2).len(), 0);
    }

    #[test]
    fn acyclic_has_ghw_1() {
        let g = h(&[&[0, 1], &[1, 2], &[1, 3, 4]]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 1);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn cycle_has_ghw_2() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.verify_ghd(&g, g.edges()));
        assert!(ht.width() <= 2);
    }

    #[test]
    fn q0_has_ghw_2() {
        // Example 1.1 / Figure 2: hypertree width 2.
        let g = h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[3, 6],
            &[6, 7],
            &[5, 7],
            &[3, 7],
        ]);
        let (w, ht) = ghw_exact(&g, g.edges(), 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.verify_ghd(&g, g.edges()));
    }

    #[test]
    fn sharp_cover_extra_edges() {
        // Example 4.1 / Figure 8: the 4-cycle Q1 with the frontier edge
        // {A,C} = {0,2} added; still width 2 w.r.t. the cycle's atoms.
        let atoms: Vec<NodeSet> = vec![[0, 1].into(), [1, 2].into(), [2, 3].into(), [3, 0].into()];
        let mut cover = Hypergraph::from_edges(atoms.iter().map(|e| e.iter()));
        cover.add_edge([0, 2].into()); // frontier {A,C}
        let (w, ht) = ghw_exact(&cover, &atoms, 3).unwrap();
        assert_eq!(w, 2);
        assert!(ht.covers_all_edges(&cover));
        assert!(ht.lambda_covers_chi(&atoms));
    }

    #[test]
    fn clique_needs_half_width() {
        // K4 as binary edges: ghw(K4) = 2.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push(vec![i, j]);
            }
        }
        let g = Hypergraph::from_edges(edges);
        let (w, _) = ghw_exact(&g, g.edges(), 4).unwrap();
        assert_eq!(w, 2);
    }

    #[test]
    fn width_bound_respected() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(ghw_at_most(&g, g.edges(), 1).is_none());
    }

    #[test]
    fn tree_projection_wrapper() {
        let g = h(&[&[0, 1], &[1, 2], &[0, 2]]);
        let views = h(&[&[0, 1, 2]]);
        let ht = tree_projection(&g, &views).unwrap();
        assert!(ht.covers_all_edges(&g));
        let no_views = h(&[&[0, 1], &[1, 2]]);
        assert!(tree_projection(&g, &no_views).is_none());
    }

    #[test]
    fn biclique_has_ghw_n() {
        // K_{2,2} as binary edges r(x_i, y_j): ghw = 2 (it is the 4-cycle);
        // K_{3,3} has ghw 3 — checked as "not ≤ 2".
        let mut edges = Vec::new();
        for i in 0..3u32 {
            for j in 0..3u32 {
                edges.push(vec![i, 3 + j]);
            }
        }
        let g = Hypergraph::from_edges(edges);
        assert!(ghw_at_most(&g, g.edges(), 2).is_none());
        assert!(ghw_at_most(&g, g.edges(), 3).is_some());
    }
}
