//! Structural decomposition solvers: tree projections, (generalized)
//! hypertree decompositions, tree decompositions, weighted (D-optimal)
//! decompositions and fractional edge covers.
//!
//! The central engine ([`tp`]) decides the existence of a *tree projection*
//! of a pair `(H₁, H₂)` (Section 2 of the paper): an acyclic hypergraph `Hₐ`
//! with `H₁ ≤ Hₐ ≤ H₂`. It exploits a classical reduction: `Hₐ` exists iff
//! the primal graph of `H₁` admits a tree decomposition all of whose bags
//! fit inside a hyperedge of `H₂` — hyperedges of `H₁` are cliques of the
//! primal graph, so the clique-containment lemma covers them automatically.
//! The search is the standard component/connector recursion, memoized per
//! component, FPT in `|nodes(H₁)|` exactly as Theorem 3.6 requires.
//!
//! On top of the engine:
//!
//! * [`ghw`] — width-`k` generalized hypertree decompositions (the view set
//!   `V_Q^k` of Section 4: resources are unions of `k` hyperedges);
//! * [`treedec`] — plain tree decompositions / treewidth (resources are all
//!   node sets of size `k+1`);
//! * [`weighted`] — minimum-cost decompositions for an additive per-vertex
//!   cost, the engine behind D-optimal decompositions (Theorem C.5);
//! * [`fractional`] — fractional edge covers by exact rational simplex and
//!   fractional hypertree width (Remark 4.4);
//! * [`jointree`] — the hypertree type `⟨T, χ, λ⟩` produced by all searches,
//!   with verification of the decomposition conditions.

pub mod fractional;
pub mod ghw;
pub mod hd;
pub mod jointree;
pub mod tp;
pub mod treedec;
pub mod weighted;

pub use fractional::{fractional_edge_cover_number, fractional_hypertree_width_at_most};
pub use ghw::{ghw_at_most, ghw_at_most_eager, ghw_exact, tree_projection, GhwSearch, UnionSpace};
pub use hd::{d_optimal_decomposition, hypertree_width_at_most, hypertree_width_exact};
pub use jointree::Hypertree;
pub use tp::{decompose, BlockCandidates, Candidate, CandidateSource, Engine, SearchStats};
pub use treedec::{treewidth_at_most, treewidth_exact};
