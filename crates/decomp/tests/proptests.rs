//! Property tests for the decomposition solvers.
//!
//! Treewidth is cross-checked against an independent brute-force reference:
//! the minimum over all elimination orderings of the maximum clique created
//! during elimination (exact for the tiny instances generated here).

use cqcount_decomp::{
    ghw_at_most, ghw_exact, hypertree_width_exact, treewidth_at_most, treewidth_exact,
};
use cqcount_hypergraph::{Hypergraph, NodeSet};
use proptest::prelude::*;

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(proptest::collection::vec(0u32..6, 1..4), 1..7)
        .prop_map(Hypergraph::from_edges)
}

/// Reference treewidth: min over elimination orders (exponential, n ≤ 6).
fn treewidth_reference(h: &Hypergraph) -> usize {
    let nodes: Vec<u32> = h.nodes().to_vec();
    let n = nodes.len();
    if n == 0 {
        return 0;
    }
    // adjacency matrix of the primal graph
    let index = |v: u32| nodes.iter().position(|&x| x == v).unwrap();
    let mut adj = vec![vec![false; n]; n];
    for e in h.edges() {
        let vs: Vec<usize> = e.iter().map(index).collect();
        for (i, &a) in vs.iter().enumerate() {
            for &b in &vs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
    }
    let mut best = usize::MAX;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |order| {
        let mut g = adj.clone();
        let mut alive = vec![true; n];
        let mut width = 0usize;
        for &v in order {
            let nbrs: Vec<usize> = (0..n).filter(|&u| alive[u] && g[v][u]).collect();
            width = width.max(nbrs.len());
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    g[a][b] = true;
                    g[b][a] = true;
                }
            }
            alive[v] = false;
        }
        best = best.min(width);
    });
    best
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn treewidth_matches_elimination_reference(h in arb_hypergraph()) {
        let reference = treewidth_reference(&h);
        let (w, ht) = treewidth_exact(&h, 6).expect("treewidth ≤ n always exists");
        prop_assert_eq!(w, reference);
        prop_assert!(ht.covers_all_edges(&h));
        prop_assert!(ht.is_connected());
        prop_assert!(ht.bags_acyclic());
        prop_assert!(ht.chi.iter().all(|b| b.len() <= w + 1));
    }

    #[test]
    fn treewidth_monotone_in_k(h in arb_hypergraph(), k in 0usize..6) {
        if treewidth_at_most(&h, k).is_some() {
            prop_assert!(treewidth_at_most(&h, k + 1).is_some());
        }
    }

    #[test]
    fn ghw_witnesses_verify(h in arb_hypergraph(), k in 1usize..4) {
        if let Some(ht) = ghw_at_most(&h, h.edges(), k) {
            prop_assert!(ht.verify_ghd(&h, h.edges()));
            prop_assert!(ht.width() <= k);
            prop_assert!(ht.bags_acyclic());
        }
    }

    #[test]
    fn ghw_monotone_and_bounded_by_edge_count(h in arb_hypergraph()) {
        let m = h.num_edges();
        let (w, _) = ghw_exact(&h, h.edges(), m.max(1)).expect("ghw ≤ m");
        prop_assert!(w <= m);
        for k in w..m.max(1) {
            prop_assert!(ghw_at_most(&h, h.edges(), k).is_some());
        }
        if w > 1 {
            prop_assert!(ghw_at_most(&h, h.edges(), w - 1).is_none());
        }
    }

    /// ghw ≤ tw + 1 is false in general, but tw ≤ (ghw)·(max edge size) - 1
    /// and ghw = 1 iff acyclic; check the acyclicity characterization.
    #[test]
    fn ghw_one_iff_acyclic(h in arb_hypergraph()) {
        let acyclic = cqcount_hypergraph::is_acyclic(&h);
        let w1 = ghw_at_most(&h, h.edges(), 1).is_some();
        prop_assert_eq!(acyclic, w1);
    }

    /// Hypertree width (descendant condition) dominates generalized
    /// hypertree width, witnesses are genuine HDs, and ghw ≤ hw ≤ 3·ghw+1
    /// ([40]'s approximation bound).
    #[test]
    fn hw_between_ghw_and_3ghw_plus_1(h in arb_hypergraph()) {
        let m = h.num_edges().max(1);
        let (ghw, _) = ghw_exact(&h, h.edges(), m).expect("ghw ≤ m");
        let (hw, ht) = hypertree_width_exact(&h, h.edges(), m).expect("hw ≤ m");
        prop_assert!(hw >= ghw, "hw {hw} < ghw {ghw}");
        prop_assert!(hw <= 3 * ghw + 1, "hw {hw} > 3·{ghw}+1");
        prop_assert!(ht.verify_ghd(&h, h.edges()));
        prop_assert!(ht.satisfies_descendant_condition(h.edges()));
    }

    /// Normalization keeps witnesses valid and never grows them.
    #[test]
    fn normalization_preserves_validity(h in arb_hypergraph(), k in 1usize..4) {
        if let Some(ht) = ghw_at_most(&h, h.edges(), k) {
            let n = ht.normalize();
            prop_assert!(n.len() <= ht.len());
            prop_assert!(n.covers_all_edges(&h));
            prop_assert!(n.is_connected());
            prop_assert!(n.lambda_covers_chi(h.edges()));
            prop_assert!(n.bags_acyclic());
            // idempotent
            prop_assert_eq!(n.normalize().len(), n.len());
        }
    }

    /// The decomposition hypergraph of any witness is a tree projection:
    /// covered by unions of ≤ k edges and covering h.
    #[test]
    fn witness_is_sandwich(h in arb_hypergraph()) {
        if let Some(ht) = ghw_at_most(&h, h.edges(), 2) {
            let ha = ht.to_hypergraph();
            prop_assert!(h.reduced().covered_by(&ha));
            // every bag within the union of its λ edges
            for (bag, lam) in ht.chi.iter().zip(&ht.lambda) {
                let mut u = NodeSet::new();
                for &r in lam {
                    u.union_with(&h.edges()[r]);
                }
                prop_assert!(bag.is_subset(&u));
                prop_assert!(lam.len() <= 2);
            }
        }
    }
}
