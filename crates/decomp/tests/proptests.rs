//! Property tests for the decomposition solvers.
//!
//! Treewidth is cross-checked against an independent brute-force reference:
//! the minimum over all elimination orderings of the maximum clique created
//! during elimination (exact for the tiny instances generated here).
//! Instances come from the workspace PRNG under fixed seeds;
//! `exhaustive-tests` raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_decomp::{
    ghw_at_most, ghw_exact, hypertree_width_exact, treewidth_at_most, treewidth_exact,
};
use cqcount_hypergraph::{Hypergraph, NodeSet};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    512
} else {
    64
};

fn arb_hypergraph(rng: &mut Rng) -> Hypergraph {
    let edges = rng.range_usize(1, 7);
    Hypergraph::from_edges((0..edges).map(|_| {
        let size = rng.range_usize(1, 4);
        (0..size).map(|_| rng.range_u32(0, 6)).collect::<Vec<_>>()
    }))
}

/// Reference treewidth: min over elimination orders (exponential, n ≤ 6).
fn treewidth_reference(h: &Hypergraph) -> usize {
    let nodes: Vec<u32> = h.nodes().to_vec();
    let n = nodes.len();
    if n == 0 {
        return 0;
    }
    // adjacency matrix of the primal graph
    let index = |v: u32| nodes.iter().position(|&x| x == v).unwrap();
    let mut adj = vec![vec![false; n]; n];
    for e in h.edges() {
        let vs: Vec<usize> = e.iter().map(index).collect();
        for (i, &a) in vs.iter().enumerate() {
            for &b in &vs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
    }
    let mut best = usize::MAX;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |order| {
        let mut g = adj.clone();
        let mut alive = vec![true; n];
        let mut width = 0usize;
        for &v in order {
            let nbrs: Vec<usize> = (0..n).filter(|&u| alive[u] && g[v][u]).collect();
            width = width.max(nbrs.len());
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    g[a][b] = true;
                    g[b][a] = true;
                }
            }
            alive[v] = false;
        }
        best = best.min(width);
    });
    best
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[test]
fn treewidth_matches_elimination_reference() {
    let mut rng = Rng::seed_from_u64(0x41);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let reference = treewidth_reference(&h);
        let (w, ht) = treewidth_exact(&h, 6).expect("treewidth ≤ n always exists");
        assert_eq!(w, reference);
        assert!(ht.covers_all_edges(&h));
        assert!(ht.is_connected());
        assert!(ht.bags_acyclic());
        assert!(ht.chi.iter().all(|b| b.len() <= w + 1));
    }
}

#[test]
fn treewidth_monotone_in_k() {
    let mut rng = Rng::seed_from_u64(0x42);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let k = rng.range_usize(0, 6);
        if treewidth_at_most(&h, k).is_some() {
            assert!(treewidth_at_most(&h, k + 1).is_some());
        }
    }
}

#[test]
fn ghw_witnesses_verify() {
    let mut rng = Rng::seed_from_u64(0x43);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let k = rng.range_usize(1, 4);
        if let Some(ht) = ghw_at_most(&h, h.edges(), k) {
            assert!(ht.verify_ghd(&h, h.edges()));
            assert!(ht.width() <= k);
            assert!(ht.bags_acyclic());
        }
    }
}

#[test]
fn ghw_monotone_and_bounded_by_edge_count() {
    let mut rng = Rng::seed_from_u64(0x44);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let m = h.num_edges();
        let (w, _) = ghw_exact(&h, h.edges(), m.max(1)).expect("ghw ≤ m");
        assert!(w <= m);
        for k in w..m.max(1) {
            assert!(ghw_at_most(&h, h.edges(), k).is_some());
        }
        if w > 1 {
            assert!(ghw_at_most(&h, h.edges(), w - 1).is_none());
        }
    }
}

/// ghw ≤ tw + 1 is false in general, but tw ≤ (ghw)·(max edge size) - 1
/// and ghw = 1 iff acyclic; check the acyclicity characterization.
#[test]
fn ghw_one_iff_acyclic() {
    let mut rng = Rng::seed_from_u64(0x45);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let acyclic = cqcount_hypergraph::is_acyclic(&h);
        let w1 = ghw_at_most(&h, h.edges(), 1).is_some();
        assert_eq!(acyclic, w1);
    }
}

/// Hypertree width (descendant condition) dominates generalized
/// hypertree width, witnesses are genuine HDs, and ghw ≤ hw ≤ 3·ghw+1
/// ([40]'s approximation bound).
#[test]
fn hw_between_ghw_and_3ghw_plus_1() {
    let mut rng = Rng::seed_from_u64(0x46);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let m = h.num_edges().max(1);
        let (ghw, _) = ghw_exact(&h, h.edges(), m).expect("ghw ≤ m");
        let (hw, ht) = hypertree_width_exact(&h, h.edges(), m).expect("hw ≤ m");
        assert!(hw >= ghw, "hw {hw} < ghw {ghw}");
        assert!(hw <= 3 * ghw + 1, "hw {hw} > 3·{ghw}+1");
        assert!(ht.verify_ghd(&h, h.edges()));
        assert!(ht.satisfies_descendant_condition(h.edges()));
    }
}

/// Normalization keeps witnesses valid and never grows them.
#[test]
fn normalization_preserves_validity() {
    let mut rng = Rng::seed_from_u64(0x47);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let k = rng.range_usize(1, 4);
        if let Some(ht) = ghw_at_most(&h, h.edges(), k) {
            let n = ht.normalize();
            assert!(n.len() <= ht.len());
            assert!(n.covers_all_edges(&h));
            assert!(n.is_connected());
            assert!(n.lambda_covers_chi(h.edges()));
            assert!(n.bags_acyclic());
            // idempotent
            assert_eq!(n.normalize().len(), n.len());
        }
    }
}

/// The decomposition hypergraph of any witness is a tree projection:
/// covered by unions of ≤ k edges and covering h.
#[test]
fn witness_is_sandwich() {
    let mut rng = Rng::seed_from_u64(0x48);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        if let Some(ht) = ghw_at_most(&h, h.edges(), 2) {
            let ha = ht.to_hypergraph();
            assert!(h.reduced().covered_by(&ha));
            // every bag within the union of its λ edges
            for (bag, lam) in ht.chi.iter().zip(&ht.lambda) {
                let mut u = NodeSet::new();
                for &r in lam {
                    u.union_with(&h.edges()[r]);
                }
                assert!(bag.is_subset(&u));
                assert!(lam.len() <= 2);
            }
        }
    }
}

/// Decomposition search is deterministic across thread counts: the
/// parallel candidate-λ exploration must yield the same witness tree as
/// the sequential path.
#[test]
fn ghw_deterministic_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(0x49);
    for _ in 0..CASES.min(24) {
        let h = arb_hypergraph(&mut rng);
        let seq = cqcount_exec::with_threads(1, || ghw_exact(&h, h.edges(), 3));
        let par = cqcount_exec::with_threads(8, || ghw_exact(&h, h.edges(), 3));
        match (seq, par) {
            (Some((ws, hts)), Some((wp, htp))) => {
                assert_eq!(ws, wp);
                assert_eq!(hts.chi, htp.chi);
                assert_eq!(hts.lambda, htp.lambda);
                assert_eq!(hts.parent, htp.parent);
            }
            (None, None) => {}
            (s, p) => panic!("divergent outcomes: seq={s:?} par={p:?}"),
        }
    }
}
