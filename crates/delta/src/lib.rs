//! Incremental maintenance of join-tree counts under single-tuple
//! mutations — the `delta` subsystem.
//!
//! The Yannakakis-style dynamic program of
//! `cqcount_core::acyclic::count_over_tree` computes, per join-tree
//! vertex, a map from the projection of the vertex's rows onto the
//! columns shared with its parent to the summed partial count, and
//! multiplies the root totals. That DP is naturally incrementalizable: a
//! single tuple change perturbs one row of each vertex whose atom
//! mentions the touched relation, and the perturbation propagates only
//! along the path from that vertex to its root — every other partial
//! count is untouched.
//!
//! [`MaterializedCount`] pins that DP state as a first-class value: per
//! vertex, the row → partial-count map, the parent-shared projection
//! (`up_map`), a per-child index from child-shared keys back to the
//! rows carrying them, and the root totals.
//! [`MaterializedCount::apply_delta`] then re-aggregates in
//! O(path · affected rows) instead of recounting from scratch.
//!
//! Two properties make the state cheap to keep *exact*:
//!
//! * **No reduction.** The DP is correct on *unreduced* views: a
//!   dangling row simply finds no key in some child's `up_map` and
//!   contributes a zero partial count. Maintaining semijoin-reduced
//!   bindings under deletion would require counting support; maintaining
//!   the unreduced DP requires nothing but the deltas themselves.
//! * **No division.** A changed row is re-derived by re-multiplying its
//!   child `up_map` lookups (O(#children) hash probes), never by
//!   dividing a stored product — so zero factors cost nothing special
//!   and the arithmetic stays in [`Natural`].
//!
//! **Maintainable shape.** A query qualifies iff it is *full* (every
//! variable occurring in the body is free — projections break the
//! per-tuple delta mapping), every atom binds at least one variable, and
//! the atoms' column sets admit a join forest (α-acyclicity).
//! [`MaterializedCount::build`] returns `None` otherwise; the serving
//! layer's fallback ladder degrades to targeted cache invalidation,
//! never a wrong count.

use cqcount_arith::Natural;
use cqcount_hypergraph::{join_forest, Hypergraph};
use cqcount_query::canonical::atom_bindings;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::{Bindings, Col, Database, FxHashMap, FxHashSet, Tuple, Value};

/// What a single [`MaterializedCount::apply_delta`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Join-tree vertices whose stored state changed (the mutated
    /// vertices plus every ancestor whose partial counts moved).
    pub bags_touched: u64,
}

/// The materialization noticed its stored state disagrees with the
/// mutation stream (a row inserted twice, or deleted while absent). The
/// caller must discard the materialization and fall back to recounting —
/// the invariant "state mirrors the database" no longer holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaFault {
    /// Which relation's delta exposed the inconsistency.
    pub rel: String,
}

impl std::fmt::Display for DeltaFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "materialized state diverged on relation {}", self.rel)
    }
}

impl std::error::Error for DeltaFault {}

/// One join-tree vertex: the atom's matching pattern plus the pinned DP
/// state.
#[derive(Clone, Debug)]
struct Vertex {
    /// The atom's term count (a mutation with a different width cannot
    /// match this atom — `atom_bindings` yields the empty view on arity
    /// mismatch, and the maintained state mirrors that).
    arity: usize,
    /// `(term position, constant name)` filters.
    const_checks: Vec<(usize, String)>,
    /// `(first position, later position)` equalities for repeated
    /// variables.
    eq_checks: Vec<(usize, usize)>,
    /// For each view column (sorted order), the term position that
    /// supplies its value.
    extract: Vec<usize>,
    /// Row positions forming the key shared with the parent.
    up_pos: Vec<usize>,
    /// Per child (aligned with `children[v]`): row positions forming the
    /// key shared with that child.
    child_pos: Vec<Vec<usize>>,
    /// Row → its current partial count (product of child `up_map`
    /// lookups; absent child key ⇒ zero).
    rows: FxHashMap<Tuple, Natural>,
    /// Parent-shared key → Σ partial counts of the rows carrying it.
    /// Entries that sum to zero are dropped (absent ≡ zero).
    up_map: FxHashMap<Tuple, Natural>,
    /// Per child: child-shared key → this vertex's rows carrying it.
    child_index: Vec<FxHashMap<Tuple, Vec<Tuple>>>,
    /// Σ partial counts (roots only; [`Natural::ZERO`] elsewhere).
    total: Natural,
}

impl Vertex {
    /// Maps a base tuple of `rel` through the atom's pattern into a view
    /// row, or `None` when the tuple does not satisfy the atom's
    /// constant/equality filters. The mapping is injective: the row plus
    /// the pattern reconstruct the base tuple, so one base mutation is at
    /// most one row per atom.
    fn map_tuple(&self, db: &Database, tuple: &[Value]) -> Option<Tuple> {
        if tuple.len() != self.arity {
            return None;
        }
        for (pos, name) in &self.const_checks {
            if db.interner().get(name) != Some(tuple[*pos]) {
                return None;
            }
        }
        for &(a, b) in &self.eq_checks {
            if tuple[a] != tuple[b] {
                return None;
            }
        }
        Some(self.extract.iter().map(|&p| tuple[p]).collect())
    }
}

/// A prepared plan's join tree with every bag's partial-count state
/// pinned, maintained exactly under single-tuple mutations.
#[derive(Clone, Debug)]
pub struct MaterializedCount {
    vertices: Vec<Vertex>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Atom (vertex) indices grouped by relation symbol.
    by_rel: FxHashMap<String, Vec<usize>>,
}

impl MaterializedCount {
    /// Builds the materialized DP for `q` over `db`, or `None` when the
    /// query is not delta-maintainable (not full, a variable-free atom,
    /// or a cyclic atom hypergraph).
    pub fn build(q: &ConjunctiveQuery, db: &Database) -> Option<MaterializedCount> {
        if q.atoms().is_empty() || q.free() != q.vars_in_atoms() {
            return None;
        }
        if q.atoms().iter().any(|a| a.vars().is_empty()) {
            return None;
        }
        let views: Vec<Bindings> = q.atoms().iter().map(|a| atom_bindings(a, db)).collect();
        let mut h = Hypergraph::new();
        for v in &views {
            h.add_edge(v.cols().iter().copied().collect());
        }
        let forest = join_forest(&h)?;

        // Static pattern info per atom.
        let mut vertices: Vec<Vertex> = Vec::with_capacity(views.len());
        let mut by_rel: FxHashMap<String, Vec<usize>> = FxHashMap::default();
        for (i, atom) in q.atoms().iter().enumerate() {
            let mut first: FxHashMap<Col, usize> = FxHashMap::default();
            let mut const_checks = Vec::new();
            let mut eq_checks = Vec::new();
            for (pos, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Var(v) => match first.get(&v.node()) {
                        Some(&f) => eq_checks.push((f, pos)),
                        None => {
                            first.insert(v.node(), pos);
                        }
                    },
                    Term::Const(name) => const_checks.push((pos, name.clone())),
                }
            }
            let cols = views[i].cols();
            debug_assert_eq!(cols.len(), first.len());
            let extract: Vec<usize> = cols.iter().map(|c| first[c]).collect();
            let shared_pos = |other: &Bindings| -> Vec<usize> {
                (0..cols.len())
                    .filter(|&p| other.cols().contains(&cols[p]))
                    .collect()
            };
            let up_pos = match forest.parent[i] {
                Some(p) => shared_pos(&views[p]),
                None => Vec::new(),
            };
            let child_pos: Vec<Vec<usize>> = forest.children[i]
                .iter()
                .map(|&c| shared_pos(&views[c]))
                .collect();
            by_rel.entry(atom.rel.clone()).or_default().push(i);
            vertices.push(Vertex {
                arity: atom.terms.len(),
                const_checks,
                eq_checks,
                extract,
                up_pos,
                child_pos,
                rows: FxHashMap::default(),
                up_map: FxHashMap::default(),
                child_index: vec![FxHashMap::default(); forest.children[i].len()],
                total: Natural::ZERO,
            });
        }

        let mut mc = MaterializedCount {
            vertices,
            parent: forest.parent,
            children: forest.children,
            by_rel,
        };

        // Bottom-up initial fill, mirroring `count_over_tree` but keeping
        // every intermediate (rows stay in, even with a zero count — a
        // later insert below them can revive them).
        for &v in &forest.order {
            let mut rows = FxHashMap::default();
            let mut up_map: FxHashMap<Tuple, Natural> = FxHashMap::default();
            let mut child_index: Vec<FxHashMap<Tuple, Vec<Tuple>>> =
                vec![FxHashMap::default(); mc.children[v].len()];
            let mut total = Natural::ZERO;
            let is_root = mc.parent[v].is_none();
            for row in views[v].rows() {
                let cnt = mc.row_count(v, row);
                for (j, pos) in mc.vertices[v].child_pos.iter().enumerate() {
                    let key: Tuple = pos.iter().map(|&p| row[p]).collect();
                    child_index[j].entry(key).or_default().push(row.clone());
                }
                if is_root {
                    total += &cnt;
                } else if !cnt.is_zero() {
                    let key: Tuple = mc.vertices[v].up_pos.iter().map(|&p| row[p]).collect();
                    *up_map.entry(key).or_insert(Natural::ZERO) += &cnt;
                }
                rows.insert(row.clone(), cnt);
            }
            let vert = &mut mc.vertices[v];
            vert.rows = rows;
            vert.up_map = up_map;
            vert.child_index = child_index;
            vert.total = total;
        }
        Some(mc)
    }

    /// The current count — a product of root totals, read in O(#roots).
    pub fn count(&self) -> Natural {
        let mut out = Natural::ONE;
        for (v, p) in self.parent.iter().enumerate() {
            if p.is_none() {
                out *= &self.vertices[v].total;
            }
        }
        out
    }

    /// Does the materialized query mention `rel`? Mutations to other
    /// relations cannot move the count.
    pub fn mentions(&self, rel: &str) -> bool {
        self.by_rel.contains_key(rel)
    }

    /// The distinct relation symbols the query mentions.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.by_rel.keys().map(String::as_str)
    }

    /// Total rows pinned across all bags (diagnostics / memory accounting).
    pub fn pinned_rows(&self) -> usize {
        self.vertices.iter().map(|v| v.rows.len()).sum()
    }

    /// Applies a single-tuple delta: `tuple` was inserted into
    /// (`insert == true`) or deleted from (`insert == false`) relation
    /// `rel` of `db`, which has *already* absorbed the change and
    /// reported it effective. Only bags whose atoms mention `rel` and
    /// their ancestors are re-aggregated.
    ///
    /// Errors with [`DeltaFault`] when the stored state contradicts the
    /// delta (double insert / absent delete) — the caller must discard
    /// the materialization.
    pub fn apply_delta(
        &mut self,
        db: &Database,
        rel: &str,
        tuple: &[Value],
        insert: bool,
    ) -> Result<DeltaOutcome, DeltaFault> {
        let span = cqcount_obs::trace::span("delta.apply");
        let mut outcome = DeltaOutcome::default();
        let verts = match self.by_rel.get(rel) {
            Some(v) => v.clone(),
            None => return Ok(outcome),
        };
        for v in verts {
            let Some(row) = self.vertices[v].map_tuple(db, tuple) else {
                continue;
            };
            outcome.bags_touched +=
                self.apply_row_delta(v, row, insert)
                    .map_err(|()| DeltaFault {
                        rel: rel.to_owned(),
                    })?;
        }
        span.add("bags_touched", outcome.bags_touched);
        Ok(outcome)
    }

    /// The DP partial count of `row` at vertex `v`: the product of its
    /// child `up_map` lookups (absent key ⇒ zero).
    fn row_count(&self, v: usize, row: &[Value]) -> Natural {
        let mut cnt = Natural::ONE;
        for (j, &c) in self.children[v].iter().enumerate() {
            let key: Tuple = self.vertices[v].child_pos[j]
                .iter()
                .map(|&p| row[p])
                .collect();
            match self.vertices[c].up_map.get(&key) {
                Some(m) => cnt *= m,
                None => return Natural::ZERO,
            }
        }
        cnt
    }

    /// Inserts or removes one view row at vertex `v` and propagates the
    /// perturbation up to `v`'s root. Returns the number of bags whose
    /// state changed.
    fn apply_row_delta(&mut self, v: usize, row: Tuple, insert: bool) -> Result<u64, ()> {
        let (old, new) = if insert {
            if self.vertices[v].rows.contains_key(&row) {
                return Err(()); // double insert: state has diverged
            }
            let cnt = self.row_count(v, &row);
            for (j, pos) in self.vertices[v].child_pos.clone().iter().enumerate() {
                let key: Tuple = pos.iter().map(|&p| row[p]).collect();
                self.vertices[v].child_index[j]
                    .entry(key)
                    .or_default()
                    .push(row.clone());
            }
            self.vertices[v].rows.insert(row.clone(), cnt.clone());
            (Natural::ZERO, cnt)
        } else {
            let Some(old) = self.vertices[v].rows.remove(&row) else {
                return Err(()); // absent delete: state has diverged
            };
            for (j, pos) in self.vertices[v].child_pos.clone().iter().enumerate() {
                let key: Tuple = pos.iter().map(|&p| row[p]).collect();
                if let Some(bucket) = self.vertices[v].child_index[j].get_mut(&key) {
                    if let Some(at) = bucket.iter().position(|r| *r == row) {
                        bucket.swap_remove(at);
                    }
                    if bucket.is_empty() {
                        self.vertices[v].child_index[j].remove(&key);
                    }
                }
            }
            (old, Natural::ZERO)
        };

        // Fold the changed rows into each level's aggregate and walk the
        // changed parent-shared keys toward the root.
        let mut touched = 1u64;
        let mut cur = v;
        let mut changed_rows: Vec<(Tuple, Natural, Natural)> = vec![(row, old, new)];
        loop {
            let is_root = self.parent[cur].is_none();
            let mut changed_keys: FxHashSet<Tuple> = FxHashSet::default();
            for (row, old, new) in changed_rows.drain(..) {
                if old == new {
                    continue;
                }
                if is_root {
                    let vert = &mut self.vertices[cur];
                    vert.total += &new;
                    vert.total -= &old;
                } else {
                    let key: Tuple = self.vertices[cur].up_pos.iter().map(|&p| row[p]).collect();
                    let vert = &mut self.vertices[cur];
                    let e = vert.up_map.entry(key.clone()).or_insert(Natural::ZERO);
                    *e += &new;
                    *e -= &old;
                    if e.is_zero() {
                        vert.up_map.remove(&key);
                    }
                    changed_keys.insert(key);
                }
            }
            if is_root || changed_keys.is_empty() {
                break;
            }
            let p = self.parent[cur].expect("non-root has a parent");
            let j = self.children[p]
                .iter()
                .position(|&c| c == cur)
                .expect("child lists mirror parents");
            let mut next: Vec<(Tuple, Natural, Natural)> = Vec::new();
            for key in changed_keys {
                let Some(bucket) = self.vertices[p].child_index[j].get(&key) else {
                    continue;
                };
                for r in bucket.clone() {
                    let new = self.row_count(p, &r);
                    let old = self.vertices[p]
                        .rows
                        .insert(r.clone(), new.clone())
                        .expect("indexed row is stored");
                    if old != new {
                        next.push((r, old, new));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            touched += 1;
            changed_rows = next;
            cur = p;
        }
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_arith::prng::Rng;
    use cqcount_core::acyclic::count_acyclic_full;
    use cqcount_query::parser::parse_program;

    /// Parses a facts+rule program into (db, query).
    fn load(text: &str) -> (Database, ConjunctiveQuery) {
        let (q, db) = parse_program(text).expect("parse");
        (db, q.expect("rule"))
    }

    /// From-scratch reference: rebuild the atom views and recount.
    fn recount(q: &ConjunctiveQuery, db: &Database) -> Natural {
        let views: Vec<Bindings> = q.atoms().iter().map(|a| atom_bindings(a, db)).collect();
        count_acyclic_full(&views).expect("acyclic")
    }

    #[test]
    fn path_query_tracks_mutations() {
        let (mut db, q) = load(
            "r(a, b). r(b, c). s(b, x). s(c, y).\n\
             ans(X, Y, Z) :- r(X, Y), s(Y, Z).",
        );
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        assert_eq!(mc.count(), recount(&q, &db));
        assert!(mc.mentions("r") && mc.mentions("s") && !mc.mentions("t"));

        // Insert a matching tuple: count grows.
        assert_eq!(db.insert_tuple("s", &["b", "z"]), Ok(true));
        let vals: Vec<Value> = ["b", "z"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        let out = mc.apply_delta(&db, "s", &vals, true).unwrap();
        assert!(out.bags_touched >= 1);
        assert_eq!(mc.count(), recount(&q, &db));

        // Delete the r-tuple feeding it: count shrinks.
        assert_eq!(db.delete_tuple("r", &["a", "b"]), Ok(true));
        let vals: Vec<Value> = ["a", "b"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        mc.apply_delta(&db, "r", &vals, false).unwrap();
        assert_eq!(mc.count(), recount(&q, &db));
    }

    #[test]
    fn non_maintainable_shapes_are_rejected() {
        // Projection (existential variable).
        let (db, q) = load("r(a, b).\nans(X) :- r(X, Y).");
        assert!(MaterializedCount::build(&q, &db).is_none());
        // Cyclic hypergraph (triangle).
        let (db, q) = load(
            "r(a, b). s(b, c). t(c, a).\n\
             ans(X, Y, Z) :- r(X, Y), s(Y, Z), t(Z, X).",
        );
        assert!(MaterializedCount::build(&q, &db).is_none());
        // Variable-free atom.
        let (db, q) = load("r(a). s(b).\nans(X) :- r(X), s(b).");
        assert!(MaterializedCount::build(&q, &db).is_none());
    }

    #[test]
    fn constants_and_repeated_vars_filter_deltas() {
        let (mut db, q) = load(
            "e(a, a). e(a, b). f(a, c).\n\
             ans(X, Y) :- e(X, X), f(X, Y).",
        );
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        assert_eq!(mc.count(), recount(&q, &db));
        // e(b, c) fails the X = X filter: no bag should change.
        db.insert_tuple("e", &["b", "c"]).unwrap();
        let vals: Vec<Value> = ["b", "c"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        let out = mc.apply_delta(&db, "e", &vals, true).unwrap();
        assert_eq!(out.bags_touched, 0);
        assert_eq!(mc.count(), recount(&q, &db));
        // e(b, b) passes it.
        db.insert_tuple("e", &["b", "b"]).unwrap();
        let vals: Vec<Value> = ["b", "b"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        mc.apply_delta(&db, "e", &vals, true).unwrap();
        assert_eq!(mc.count(), recount(&q, &db));

        // An atom with a constant: only matching tuples perturb it.
        let (mut db2, q2) = load(
            "g(a, b). h(b, c).\n\
             ans(X, Y) :- g(a, X), h(X, Y).",
        );
        let mut mc2 = MaterializedCount::build(&q2, &db2).expect("maintainable");
        db2.insert_tuple("g", &["z", "b"]).unwrap();
        let vals: Vec<Value> = ["z", "b"]
            .iter()
            .map(|n| db2.interner().get(n).unwrap())
            .collect();
        let out = mc2.apply_delta(&db2, "g", &vals, true).unwrap();
        assert_eq!(out.bags_touched, 0);
        assert_eq!(mc2.count(), recount(&q2, &db2));
    }

    #[test]
    fn same_relation_in_two_atoms() {
        let (mut db, q) = load(
            "r(a, b). r(b, c). r(c, d).\n\
             ans(X, Y, Z) :- r(X, Y), r(Y, Z).",
        );
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        assert_eq!(mc.count(), recount(&q, &db));
        // One base insert perturbs both atom views.
        db.insert_tuple("r", &["d", "a"]).unwrap();
        let vals: Vec<Value> = ["d", "a"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        let out = mc.apply_delta(&db, "r", &vals, true).unwrap();
        assert!(out.bags_touched >= 2);
        assert_eq!(mc.count(), recount(&q, &db));
        db.delete_tuple("r", &["b", "c"]).unwrap();
        let vals: Vec<Value> = ["b", "c"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        mc.apply_delta(&db, "r", &vals, false).unwrap();
        assert_eq!(mc.count(), recount(&q, &db));
    }

    #[test]
    fn relation_created_after_build() {
        // The atom's relation does not exist yet: the view starts empty
        // and the count is zero; a later insert revives it.
        let (mut db, q) = load("r(a, b).\nans(X, Y, Z) :- r(X, Y), s(Y, Z).");
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        assert!(mc.count().is_zero());
        db.insert_tuple("s", &["b", "q"]).unwrap();
        let vals: Vec<Value> = ["b", "q"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        mc.apply_delta(&db, "s", &vals, true).unwrap();
        assert_eq!(mc.count(), recount(&q, &db));
        assert_eq!(mc.count(), Natural::from(1u64));
    }

    #[test]
    fn diverged_state_faults() {
        let (mut db, q) = load("r(a, b).\nans(X, Y) :- r(X, Y).");
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        db.insert_tuple("r", &["c", "d"]).unwrap();
        let vals: Vec<Value> = ["c", "d"]
            .iter()
            .map(|n| db.interner().get(n).unwrap())
            .collect();
        mc.apply_delta(&db, "r", &vals, true).unwrap();
        // Replaying the same insert is a double apply: must fault, not
        // silently double-count.
        assert!(mc.apply_delta(&db, "r", &vals, true).is_err());
        // Deleting a tuple that was never applied also faults.
        let vals: Vec<Value> = ["a", "never"]
            .iter()
            .map(|n| db.interner_mut().intern(n))
            .collect();
        assert!(mc.apply_delta(&db, "r", &vals, false).is_err());
    }

    /// Seeded random mutation stream over a star-shaped full acyclic
    /// query; every step must match a from-scratch recount.
    #[test]
    fn random_stream_matches_recount() {
        let (mut db, q) = load(
            "hub(c0, c0).\n\
             ans(X, Y, Z, W) :- hub(X, Y), sp1(Y, Z), sp2(Y, W).",
        );
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        let mut rng = Rng::seed_from_u64(0xDE17A);
        let rels = ["hub", "sp1", "sp2"];
        let steps = if cfg!(feature = "exhaustive-tests") {
            2_000
        } else {
            400
        };
        for step in 0..steps {
            let rel = rels[rng.range_usize(0, rels.len())];
            let a = format!("c{}", rng.range_usize(0, 6));
            let b = format!("c{}", rng.range_usize(0, 6));
            let insert = rng.chance(0.6);
            let changed = if insert {
                db.insert_tuple(rel, &[&a, &b]).unwrap()
            } else {
                db.delete_tuple(rel, &[&a, &b]).unwrap()
            };
            if !changed {
                continue;
            }
            let vals: Vec<Value> = [&a, &b]
                .iter()
                .map(|n| db.interner().get(n).unwrap())
                .collect();
            mc.apply_delta(&db, rel, &vals, insert).unwrap();
            assert_eq!(mc.count(), recount(&q, &db), "step {step}");
        }
    }

    /// Deeper tree: a 4-node path query under churn, checking that
    /// propagation crosses multiple levels correctly.
    #[test]
    fn path4_stream_matches_recount() {
        let (mut db, q) = load(
            "r1(c0, c1).\n\
             ans(A, B, C, D) :- r1(A, B), r2(B, C), r3(C, D).",
        );
        let mut mc = MaterializedCount::build(&q, &db).expect("maintainable");
        let mut rng = Rng::seed_from_u64(0xBEEF);
        let rels = ["r1", "r2", "r3"];
        for step in 0..300 {
            let rel = rels[rng.range_usize(0, rels.len())];
            let a = format!("c{}", rng.range_usize(0, 4));
            let b = format!("c{}", rng.range_usize(0, 4));
            let insert = rng.chance(0.65);
            let changed = if insert {
                db.insert_tuple(rel, &[&a, &b]).unwrap()
            } else {
                db.delete_tuple(rel, &[&a, &b]).unwrap()
            };
            if !changed {
                continue;
            }
            let vals: Vec<Value> = [&a, &b]
                .iter()
                .map(|n| db.interner().get(n).unwrap())
                .collect();
            mc.apply_delta(&db, rel, &vals, insert).unwrap();
            assert_eq!(mc.count(), recount(&q, &db), "step {step}");
        }
        assert!(mc.pinned_rows() <= db.total_tuples() * 2);
    }
}
