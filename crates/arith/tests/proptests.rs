//! Property tests for the arbitrary-precision arithmetic, using `u128`
//! arithmetic (and checked promotions) as the reference model.

use cqcount_arith::{Int, Natural, Rational};
use proptest::prelude::*;

fn nat() -> impl Strategy<Value = (Natural, u128)> {
    any::<u128>().prop_map(|v| (Natural::from(v), v))
}

/// Naturals that may exceed u128: built as a*2^s + b.
fn big_nat() -> impl Strategy<Value = Natural> {
    (any::<u128>(), 0u32..140, any::<u64>())
        .prop_map(|(a, s, b)| (Natural::from(a) << s) + Natural::from(b))
}

proptest! {
    #[test]
    fn add_matches_u128((a, ar) in nat(), (b, br) in nat()) {
        let sum = &a + &b;
        match ar.checked_add(br) {
            Some(s) => prop_assert_eq!(sum.to_u128(), Some(s)),
            None => prop_assert!(sum.to_u128().is_none()),
        }
    }

    #[test]
    fn mul_matches_u128((a, ar) in nat(), (b, br) in nat()) {
        let prod = &a * &b;
        match ar.checked_mul(br) {
            Some(p) => prop_assert_eq!(prod.to_u128(), Some(p)),
            None => prop_assert!(prod.to_u128().is_none()),
        }
    }

    #[test]
    fn sub_matches_u128((a, ar) in nat(), (b, br) in nat()) {
        prop_assert_eq!(
            a.checked_sub(&b).map(|d| d.to_u128().unwrap()),
            ar.checked_sub(br)
        );
    }

    #[test]
    fn cmp_matches_u128((a, ar) in nat(), (b, br) in nat()) {
        prop_assert_eq!(a.cmp(&b), ar.cmp(&br));
    }

    #[test]
    fn add_sub_roundtrip_big(a in big_nat(), b in big_nat()) {
        let sum = &a + &b;
        prop_assert_eq!(sum.checked_sub(&b), Some(a.clone()));
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn mul_distributes_big(a in big_nat(), b in big_nat(), c in big_nat()) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn divmod_reconstructs(a in big_nat(), b in big_nat()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divmod(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q * &b + &r, a);
    }

    #[test]
    fn gcd_divides_both(a in big_nat(), b in big_nat()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.divmod(&g).1.is_zero());
            prop_assert!(b.divmod(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn shifts_roundtrip(a in big_nat(), s in 0u32..200) {
        prop_assert_eq!((a.clone() << s) >> s, a);
    }

    #[test]
    fn display_parse_roundtrip(a in big_nat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Natural>().unwrap(), a);
    }

    #[test]
    fn int_ring_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (ia, ib, ic) = (Int::from(a), Int::from(b), Int::from(c));
        prop_assert_eq!(&ia + &ib, &ib + &ia);
        prop_assert_eq!(&ia * &ib, &ib * &ia);
        prop_assert_eq!(&ia * (&ib + &ic), &ia * &ib + &ia * &ic);
        prop_assert_eq!(&ia - &ia, Int::ZERO);
        prop_assert_eq!(&ia + &(-&ia), Int::ZERO);
    }

    #[test]
    fn rational_field_laws(
        an in -100i64..100, ad in 1i64..50,
        bn in -100i64..100, bd in 1i64..50,
    ) {
        let a = Rational::new(Int::from(an), Int::from(ad));
        let b = Rational::new(Int::from(bn), Int::from(bd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::ONE);
        }
    }

    #[test]
    fn vandermonde_roundtrip(xs in proptest::collection::vec(-20i64..20, 1..5)) {
        // distinct nodes 1..=n, arbitrary solution xs; build rhs then solve back.
        let n = xs.len();
        let nodes: Vec<Int> = (1..=n as i64).map(Int::from).collect();
        let sol: Vec<Rational> = xs.iter().map(|&x| Rational::from(x)).collect();
        let rhs: Vec<Rational> = (0..n)
            .map(|j| {
                (0..n).fold(Rational::ZERO, |acc, i| {
                    let pow = (0..j).fold(Rational::ONE, |p, _| {
                        p * Rational::from(Int::from((i + 1) as i64))
                    });
                    acc + &sol[i] * &pow
                })
            })
            .collect();
        let solved = cqcount_arith::linalg::solve_vandermonde(&nodes, &rhs).unwrap();
        prop_assert_eq!(solved, sol);
    }
}
