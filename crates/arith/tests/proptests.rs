//! Property tests for the arbitrary-precision arithmetic, using `u128`
//! arithmetic (and checked promotions) as the reference model. Cases are
//! generated with the workspace PRNG (`cqcount_arith::prng`) from fixed
//! seeds; the `exhaustive-tests` feature raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_arith::{Int, Natural, Rational};

const CASES: u64 = if cfg!(feature = "exhaustive-tests") {
    4096
} else {
    256
};

fn nat(rng: &mut Rng) -> (Natural, u128) {
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    (Natural::from(v), v)
}

/// Naturals that may exceed u128: built as a·2^s + b.
fn big_nat(rng: &mut Rng) -> Natural {
    let a = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    let s = rng.range_u32(0, 140);
    let b = rng.next_u64();
    (Natural::from(a) << s) + Natural::from(b)
}

#[test]
fn add_matches_u128() {
    let mut rng = Rng::seed_from_u64(0x01);
    for _ in 0..CASES {
        let (a, ar) = nat(&mut rng);
        let (b, br) = nat(&mut rng);
        let sum = &a + &b;
        match ar.checked_add(br) {
            Some(s) => assert_eq!(sum.to_u128(), Some(s)),
            None => assert!(sum.to_u128().is_none()),
        }
    }
}

#[test]
fn mul_matches_u128() {
    let mut rng = Rng::seed_from_u64(0x02);
    for _ in 0..CASES {
        let (a, ar) = nat(&mut rng);
        let (b, br) = nat(&mut rng);
        let prod = &a * &b;
        match ar.checked_mul(br) {
            Some(p) => assert_eq!(prod.to_u128(), Some(p)),
            None => assert!(prod.to_u128().is_none()),
        }
    }
}

#[test]
fn sub_matches_u128() {
    let mut rng = Rng::seed_from_u64(0x03);
    for _ in 0..CASES {
        let (a, ar) = nat(&mut rng);
        let (b, br) = nat(&mut rng);
        assert_eq!(
            a.checked_sub(&b).map(|d| d.to_u128().unwrap()),
            ar.checked_sub(br)
        );
    }
}

#[test]
fn cmp_matches_u128() {
    let mut rng = Rng::seed_from_u64(0x04);
    for _ in 0..CASES {
        let (a, ar) = nat(&mut rng);
        let (b, br) = nat(&mut rng);
        assert_eq!(a.cmp(&b), ar.cmp(&br));
    }
}

#[test]
fn add_sub_roundtrip_big() {
    let mut rng = Rng::seed_from_u64(0x05);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let b = big_nat(&mut rng);
        let sum = &a + &b;
        assert_eq!(sum.checked_sub(&b), Some(a.clone()));
        assert_eq!(&a + &b, &b + &a);
    }
}

#[test]
fn mul_distributes_big() {
    let mut rng = Rng::seed_from_u64(0x06);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let b = big_nat(&mut rng);
        let c = big_nat(&mut rng);
        assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        assert_eq!(&a * &b, &b * &a);
    }
}

#[test]
fn divmod_reconstructs() {
    let mut rng = Rng::seed_from_u64(0x07);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let b = big_nat(&mut rng);
        if b.is_zero() {
            continue;
        }
        let (q, r) = a.divmod(&b);
        assert!(r < b);
        assert_eq!(q * &b + &r, a);
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = Rng::seed_from_u64(0x08);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let b = big_nat(&mut rng);
        let g = a.gcd(&b);
        if !g.is_zero() {
            assert!(a.divmod(&g).1.is_zero());
            assert!(b.divmod(&g).1.is_zero());
        } else {
            assert!(a.is_zero() && b.is_zero());
        }
    }
}

#[test]
fn shifts_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x09);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let s = rng.range_u32(0, 200);
        assert_eq!((a.clone() << s) >> s, a);
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x0A);
    for _ in 0..CASES {
        let a = big_nat(&mut rng);
        let s = a.to_string();
        assert_eq!(s.parse::<Natural>().unwrap(), a);
    }
}

#[test]
fn int_ring_laws() {
    let mut rng = Rng::seed_from_u64(0x0B);
    for _ in 0..CASES {
        let (a, b, c) = (
            rng.next_u64() as i64,
            rng.next_u64() as i64,
            rng.next_u64() as i64,
        );
        let (ia, ib, ic) = (Int::from(a), Int::from(b), Int::from(c));
        assert_eq!(&ia + &ib, &ib + &ia);
        assert_eq!(&ia * &ib, &ib * &ia);
        assert_eq!(&ia * (&ib + &ic), &ia * &ib + &ia * &ic);
        assert_eq!(&ia - &ia, Int::ZERO);
        assert_eq!(&ia + &(-&ia), Int::ZERO);
    }
}

#[test]
fn rational_field_laws() {
    let mut rng = Rng::seed_from_u64(0x0C);
    for _ in 0..CASES {
        let an = rng.range_i64(-100, 100);
        let ad = rng.range_i64(1, 50);
        let bn = rng.range_i64(-100, 100);
        let bd = rng.range_i64(1, 50);
        let a = Rational::new(Int::from(an), Int::from(ad));
        let b = Rational::new(Int::from(bn), Int::from(bd));
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            assert_eq!(&(&a / &b) * &b, a.clone());
        }
        if !a.is_zero() {
            assert_eq!(&a * &a.recip(), Rational::ONE);
        }
    }
}

#[test]
fn vandermonde_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x0D);
    for _ in 0..CASES.min(64) {
        // distinct nodes 1..=n, arbitrary solution xs; build rhs then solve back.
        let n = rng.range_usize(1, 5);
        let xs: Vec<i64> = (0..n).map(|_| rng.range_i64(-20, 20)).collect();
        let nodes: Vec<Int> = (1..=n as i64).map(Int::from).collect();
        let sol: Vec<Rational> = xs.iter().map(|&x| Rational::from(x)).collect();
        let rhs: Vec<Rational> = (0..n)
            .map(|j| {
                (0..n).fold(Rational::ZERO, |acc, i| {
                    let pow = (0..j).fold(Rational::ONE, |p, _| {
                        p * Rational::from(Int::from((i + 1) as i64))
                    });
                    acc + &sol[i] * &pow
                })
            })
            .collect();
        let solved = cqcount_arith::linalg::solve_vandermonde(&nodes, &rhs).unwrap();
        assert_eq!(solved, sol);
    }
}
