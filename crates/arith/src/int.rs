//! Signed arbitrary-precision integers on top of [`Natural`].

use crate::Natural;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// The sign of an [`Int`]. Zero always carries [`Sign::Zero`], keeping the
/// representation canonical so `Eq`/`Hash` can be derived.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer.
///
/// ```
/// use cqcount_arith::Int;
/// let a = Int::from(-3i64);
/// let b = Int::from(5i64);
/// assert_eq!((a + b).to_string(), "2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    magnitude: Natural,
}

impl Int {
    /// The value 0.
    pub const ZERO: Int = Int {
        sign: Sign::Zero,
        magnitude: Natural::ZERO,
    };
    /// The value 1.
    pub const ONE: Int = Int {
        sign: Sign::Positive,
        magnitude: Natural::ONE,
    };

    /// Builds an integer from a sign and magnitude, canonicalizing zero.
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Int {
        if magnitude.is_zero() {
            Int::ZERO
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            Int { sign, magnitude }
        }
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Consumes `self`, returning the absolute value.
    pub fn into_magnitude(self) -> Natural {
        self.magnitude
    }

    /// Returns `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// The value as an `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => {
                if mag == 1u128 << 127 {
                    Some(i128::MIN)
                } else {
                    i128::try_from(mag).ok().map(|v| -v)
                }
            }
        }
    }

    /// The value as an `f64` (approximate for large values).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }
}

impl From<Natural> for Int {
    fn from(n: Natural) -> Int {
        if n.is_zero() {
            Int::ZERO
        } else {
            Int {
                sign: Sign::Positive,
                magnitude: n,
            }
        }
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                let m = Natural::from(v.unsigned_abs() as u128);
                match v.cmp(&0) {
                    Ordering::Less => Int { sign: Sign::Negative, magnitude: m },
                    Ordering::Equal => Int::ZERO,
                    Ordering::Greater => Int { sign: Sign::Positive, magnitude: m },
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Int {
            fn from(v: $t) -> Int {
                Int::from(Natural::from(v))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, u128, usize);

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        Int {
            sign,
            magnitude: self.magnitude,
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int {
                sign: a,
                magnitude: &self.magnitude + &rhs.magnitude,
            },
            _ => match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Int::ZERO,
                Ordering::Greater => Int {
                    sign: self.sign,
                    magnitude: &self.magnitude - &rhs.magnitude,
                },
                Ordering::Less => Int {
                    sign: rhs.sign,
                    magnitude: &rhs.magnitude - &self.magnitude,
                },
            },
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return Int::ZERO,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Int {
            sign,
            magnitude: &self.magnitude * &rhs.magnitude,
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                (&self).$method(rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}
impl AddAssign for Int {
    fn add_assign(&mut self, rhs: Int) {
        *self += &rhs;
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        rank(self.sign).cmp(&rank(other.sign)).then_with(|| {
            if self.sign == Sign::Negative {
                other.magnitude.cmp(&self.magnitude)
            } else {
                self.magnitude.cmp(&other.magnitude)
            }
        })
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        fmt::Display::fmt(&self.magnitude, f)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn signed_arithmetic_matches_i64() {
        let cases = [-5i64, -1, 0, 1, 2, 7, -13];
        for &a in &cases {
            for &b in &cases {
                assert_eq!((i(a) + i(b)).to_i128(), Some((a + b) as i128), "{a}+{b}");
                assert_eq!((i(a) - i(b)).to_i128(), Some((a - b) as i128), "{a}-{b}");
                assert_eq!((i(a) * i(b)).to_i128(), Some((a * b) as i128), "{a}*{b}");
                assert_eq!(i(a).cmp(&i(b)), a.cmp(&b), "cmp {a} {b}");
            }
        }
    }

    #[test]
    fn negation() {
        assert_eq!(-i(5), i(-5));
        assert_eq!(-i(0), i(0));
        assert_eq!(-(-i(7)), i(7));
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(i(3) + i(-3), Int::ZERO);
        assert_eq!((i(3) + i(-3)).sign(), Sign::Zero);
        assert!(!Int::ZERO.is_negative());
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(0).to_string(), "0");
        assert_eq!(i(17).to_string(), "17");
    }

    #[test]
    fn i128_extremes() {
        assert_eq!(Int::from(i128::MIN).to_i128(), Some(i128::MIN));
        assert_eq!(Int::from(i128::MAX).to_i128(), Some(i128::MAX));
        let too_big = Int::from(u128::MAX);
        assert_eq!(too_big.to_i128(), None);
    }
}
