//! Exact rational numbers, always kept in lowest terms.

use crate::int::Sign;
use crate::{Int, Natural};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `numerator / denominator`.
///
/// Invariants: the denominator is strictly positive, and
/// `gcd(|numerator|, denominator) = 1`, so `Eq`/`Hash` are structural.
///
/// ```
/// use cqcount_arith::{Int, Rational};
/// let third = Rational::new(Int::from(2), Int::from(6));
/// assert_eq!(third.to_string(), "1/3");
/// let one = &third * &Rational::from(Int::from(3));
/// assert_eq!(one, Rational::ONE);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: Int,
    den: Natural,
}

impl Rational {
    /// The value 0.
    pub const ZERO: Rational = Rational {
        num: Int::ZERO,
        den: Natural::ONE,
    };
    /// The value 1.
    pub const ONE: Rational = Rational {
        num: Int::ONE,
        den: Natural::ONE,
    };

    /// Builds `num / den`, reducing to lowest terms. Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        let num = if den.is_negative() { -num } else { num };
        Rational::reduced(num, den.into_magnitude())
    }

    fn reduced(num: Int, den: Natural) -> Rational {
        if num.is_zero() {
            return Rational::ZERO;
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational {
                num: Int::from_sign_magnitude(num.sign(), num.magnitude().exact_div(&g)),
                den: den.exact_div(&g),
            }
        }
    }

    /// The (reduced, sign-carrying) numerator.
    pub fn numerator(&self) -> &Int {
        &self.num
    }

    /// The (reduced, strictly positive) denominator.
    pub fn denominator(&self) -> &Natural {
        &self.den
    }

    /// Returns `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The value as an [`Int`] if it is an integer.
    pub fn to_int(&self) -> Option<Int> {
        self.is_integer().then(|| self.num.clone())
    }

    /// The multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational {
            num: Int::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// The absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: Int::from_sign_magnitude(
                if self.num.is_zero() {
                    return Rational::ZERO;
                } else {
                    Sign::Positive
                },
                self.num.magnitude().clone(),
            ),
            den: self.den.clone(),
        }
    }

    /// Approximate `f64` value (used only for pivot selection heuristics).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }
}

impl From<Int> for Rational {
    fn from(num: Int) -> Rational {
        Rational {
            num,
            den: Natural::ONE,
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from(Int::from(v))
    }
}

impl From<Natural> for Rational {
    fn from(v: Natural) -> Rational {
        Rational::from(Int::from(v))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let num = &self.num * &Int::from(rhs.den.clone()) + &rhs.num * &Int::from(self.den.clone());
        Rational::reduced(num, &self.den * &rhs.den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::reduced(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    // division *is* multiplication by the reciprocal for rationals
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = &self.num * &Int::from(other.den.clone());
        let rhs = &other.num * &Int::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(q(2, 6), q(1, 3));
        assert_eq!(q(-2, -6), q(1, 3));
        assert_eq!(q(2, -6), q(-1, 3));
        assert_eq!(q(0, 5), Rational::ZERO);
        assert_eq!(q(4, 2).to_int(), Some(Int::from(2i64)));
    }

    #[test]
    fn field_operations() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), q(2, 1));
        assert_eq!(-q(1, 2), q(-1, 2));
        assert_eq!(q(3, 7).recip(), q(7, 3));
        assert_eq!(q(-3, 7).recip(), q(-7, 3));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(-1, 2) < Rational::ZERO);
        assert!(q(7, 7) == Rational::ONE);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = q(1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(q(1, 3).to_string(), "1/3");
        assert_eq!(q(-4, 2).to_string(), "-2");
        assert_eq!(Rational::ZERO.to_string(), "0");
    }

    #[test]
    fn exactness_across_many_ops() {
        // sum_{i=1..n} 1/(i(i+1)) = n/(n+1), a classic telescoping identity
        let n = 30i64;
        let mut acc = Rational::ZERO;
        for i in 1..=n {
            acc += &q(1, i * (i + 1));
        }
        assert_eq!(acc, q(n, n + 1));
    }
}
