//! Exact dense linear algebra over [`Rational`].
//!
//! The counting slice reduction of Lemma 5.10 recovers the stratified counts
//! `|N_{T,i}|` from oracle answers by solving a Vandermonde system
//! `sum_i i^j · x_i = c_j`. This module provides the two entry points that
//! proof needs: a general exact Gaussian elimination ([`solve`]) and a
//! convenience wrapper for Vandermonde systems ([`solve_vandermonde`]).

use crate::{Int, Rational};

/// Error returned when a linear system has no unique solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular: no unique solution")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A x = b` exactly by Gaussian elimination with partial pivoting.
///
/// `a` is row-major and must be square with `a.len() == b.len()`.
pub fn solve(a: &[Vec<Rational>], b: &[Rational]) -> Result<Vec<Rational>, SingularMatrix> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "dimension mismatch");

    // Augmented matrix.
    let mut m: Vec<Vec<Rational>> = a
        .iter()
        .zip(b)
        .map(|(row, rhs)| {
            let mut r = row.clone();
            r.push(rhs.clone());
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivoting: any nonzero pivot keeps exact arithmetic correct;
        // picking the largest magnitude keeps intermediate values smaller.
        let pivot = (col..n)
            .filter(|&r| !m[r][col].is_zero())
            .max_by(|&r1, &r2| {
                m[r1][col]
                    .abs()
                    .partial_cmp(&m[r2][col].abs())
                    .expect("total order on rationals")
            })
            .ok_or(SingularMatrix)?;
        m.swap(col, pivot);

        let inv = m[col][col].recip();
        for cell in &mut m[col][col..=n] {
            *cell = &*cell * &inv;
        }
        for r in 0..n {
            if r != col && !m[r][col].is_zero() {
                let factor = m[r][col].clone();
                let pivot_row = m[col][col..=n].to_vec();
                for (cell, p) in m[r][col..=n].iter_mut().zip(&pivot_row) {
                    *cell = &*cell - &(&factor * p);
                }
            }
        }
    }

    Ok(m.into_iter().map(|mut row| row.pop().unwrap()).collect())
}

/// Solves the Vandermonde system `sum_i nodes[i]^j · x_i = rhs[j]` for
/// `j = 0..n`, i.e. `V x = rhs` with `V[j][i] = nodes[i]^j`.
///
/// The nodes must be pairwise distinct (otherwise the system is singular).
pub fn solve_vandermonde(nodes: &[Int], rhs: &[Rational]) -> Result<Vec<Rational>, SingularMatrix> {
    let n = nodes.len();
    assert_eq!(rhs.len(), n, "dimension mismatch");
    let mut matrix = vec![vec![Rational::ONE; n]; 1];
    for j in 1..n {
        let prev = matrix[j - 1].clone();
        matrix.push(
            prev.iter()
                .zip(nodes)
                .map(|(p, x)| p * &Rational::from(x.clone()))
                .collect(),
        );
    }
    solve(&matrix, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }
    fn rq(n: i64, d: i64) -> Rational {
        Rational::new(Int::from(n), Int::from(d))
    }

    #[test]
    fn solve_2x2() {
        // x + y = 3 ; x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![r(1), r(1)], vec![r(1), r(-1)]];
        let b = vec![r(3), r(1)];
        assert_eq!(solve(&a, &b).unwrap(), vec![r(2), r(1)]);
    }

    #[test]
    fn solve_with_rational_solution() {
        // 2x = 1  =>  x = 1/2
        let a = vec![vec![r(2)]];
        assert_eq!(solve(&a, &[r(1)]).unwrap(), vec![rq(1, 2)]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot position is zero; elimination must swap rows.
        let a = vec![vec![r(0), r(1)], vec![r(1), r(0)]];
        let b = vec![r(5), r(7)];
        assert_eq!(solve(&a, &b).unwrap(), vec![r(7), r(5)]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = vec![vec![r(1), r(2)], vec![r(2), r(4)]];
        assert_eq!(solve(&a, &[r(1), r(2)]), Err(SingularMatrix));
    }

    #[test]
    fn vandermonde_interpolation() {
        // x_i such that sum_i i^j x_i = c_j with nodes 1,2,3.
        // Choose x = (5, 0, 2); then
        //   j=0: 5+0+2 = 7
        //   j=1: 5+0+6 = 11
        //   j=2: 5+0+18 = 23
        let nodes = vec![Int::from(1i64), Int::from(2i64), Int::from(3i64)];
        let rhs = vec![r(7), r(11), r(23)];
        assert_eq!(
            solve_vandermonde(&nodes, &rhs).unwrap(),
            vec![r(5), r(0), r(2)]
        );
    }

    #[test]
    fn vandermonde_repeated_nodes_singular() {
        let nodes = vec![Int::from(2i64), Int::from(2i64)];
        assert_eq!(
            solve_vandermonde(&nodes, &[r(1), r(2)]),
            Err(SingularMatrix)
        );
    }

    #[test]
    fn larger_random_like_system_verifies() {
        // 4x4 fixed system; verify A·x = b by substitution.
        let a: Vec<Vec<Rational>> = vec![
            vec![r(2), r(1), r(-1), r(3)],
            vec![r(1), r(0), r(2), r(-1)],
            vec![r(3), r(-2), r(1), r(0)],
            vec![r(0), r(1), r(1), r(1)],
        ];
        let b = vec![r(10), r(3), r(4), r(6)];
        let x = solve(&a, &b).unwrap();
        for (row, rhs) in a.iter().zip(&b) {
            let dot = row
                .iter()
                .zip(&x)
                .fold(Rational::ZERO, |acc, (c, xi)| acc + c * xi);
            assert_eq!(&dot, rhs);
        }
    }
}
