//! Exact arbitrary-precision arithmetic for answer counting.
//!
//! Counting the answers to a conjunctive query can produce numbers far beyond
//! `u64` (the count is bounded only by `|D|^{|free(Q)|}`), and the executable
//! reduction of Lemma 5.10 in the paper solves Vandermonde linear systems,
//! which requires exact rational arithmetic. This crate provides the three
//! number types the rest of the workspace builds on:
//!
//! * [`Natural`] — an unsigned arbitrary-precision integer with an inline
//!   `u128` fast path (most real counts are small; big instances promote to a
//!   little-endian `u64`-limb representation transparently).
//! * [`Int`] — a signed integer on top of [`Natural`].
//! * [`Rational`] — an exact fraction of [`Int`] over [`Natural`], always kept
//!   in lowest terms via binary GCD.
//!
//! The [`linalg`] module solves dense linear systems over [`Rational`]
//! (Gaussian elimination with partial pivoting), which is what the
//! interpolation step of Lemma 5.10 needs.
//!
//! Everything here is implemented from scratch; no external bignum crates.

pub mod int;
pub mod linalg;
pub mod natural;
pub mod prng;
pub mod rational;

pub use int::Int;
pub use natural::Natural;
pub use rational::Rational;
