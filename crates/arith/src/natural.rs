//! Unsigned arbitrary-precision integers.
//!
//! [`Natural`] stores values up to `u128::MAX` inline and transparently
//! promotes to a little-endian `u64`-limb vector beyond that. All arithmetic
//! is exact; subtraction panics on underflow (use [`Natural::checked_sub`] for
//! the fallible form). The representation invariant is that the limb form is
//! only used for values that do not fit in `u128`, so equality and hashing can
//! be derived structurally.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

/// An unsigned arbitrary-precision integer.
///
/// ```
/// use cqcount_arith::Natural;
/// let big = Natural::from(u128::MAX) * Natural::from(u128::MAX);
/// assert_eq!(big.to_string(), "115792089237316195423570985008687907852589419931798687112530834793049593217025");
/// assert_eq!(Natural::from(7u64) + Natural::from(5u64), Natural::from(12u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Natural(Repr);

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Fast path: the value fits in a `u128`.
    Small(u128),
    /// Little-endian base-2^64 limbs; invariant: value > `u128::MAX`,
    /// no trailing zero limbs (so `len() >= 3`).
    Big(Vec<u64>),
}

impl Natural {
    /// The value 0.
    pub const ZERO: Natural = Natural(Repr::Small(0));
    /// The value 1.
    pub const ONE: Natural = Natural(Repr::Small(1));

    /// Returns `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// Returns `true` iff this is one.
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// Returns `true` iff the value is even.
    pub fn is_even(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => v & 1 == 0,
            Repr::Big(l) => l[0] & 1 == 0,
        }
    }

    /// The value as a `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.0 {
            Repr::Small(v) => Some(*v),
            Repr::Big(_) => None,
        }
    }

    /// The value as a `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        self.to_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as an `f64` (approximate for large values).
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            Repr::Small(v) => *v as f64,
            Repr::Big(l) => l
                .iter()
                .rev()
                .fold(0.0f64, |acc, &limb| acc * 2f64.powi(64) + limb as f64),
        }
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> u32 {
        match &self.0 {
            Repr::Small(v) => 128 - v.leading_zeros(),
            Repr::Big(l) => {
                let top = *l.last().expect("Big repr is non-empty");
                (l.len() as u32 - 1) * 64 + (64 - top.leading_zeros())
            }
        }
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u32> {
        match &self.0 {
            Repr::Small(0) => None,
            Repr::Small(v) => Some(v.trailing_zeros()),
            Repr::Big(l) => {
                let (i, limb) = l
                    .iter()
                    .enumerate()
                    .find(|(_, &x)| x != 0)
                    .expect("Big repr value is nonzero");
                Some(i as u32 * 64 + limb.trailing_zeros())
            }
        }
    }

    fn to_limbs(&self) -> Vec<u64> {
        match &self.0 {
            Repr::Small(v) => small_limbs(*v),
            Repr::Big(l) => l.clone(),
        }
    }

    fn from_limbs(mut limbs: Vec<u64>) -> Natural {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Natural::ZERO,
            1 => Natural(Repr::Small(limbs[0] as u128)),
            2 => Natural(Repr::Small(limbs[0] as u128 | (limbs[1] as u128) << 64)),
            _ => Natural(Repr::Big(limbs)),
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &Natural) -> Option<Natural> {
        match (&self.0, &rhs.0) {
            (Repr::Small(a), Repr::Small(b)) => a.checked_sub(*b).map(Natural::from),
            _ => {
                if self < rhs {
                    return None;
                }
                let mut a = self.to_limbs();
                let b = rhs.to_limbs();
                let mut borrow = 0u64;
                for (i, limb) in a.iter_mut().enumerate() {
                    let bi = b.get(i).copied().unwrap_or(0);
                    let (d1, o1) = limb.overflowing_sub(bi);
                    let (d2, o2) = d1.overflowing_sub(borrow);
                    *limb = d2;
                    borrow = (o1 | o2) as u64;
                }
                debug_assert_eq!(borrow, 0, "underflow despite ordering check");
                Some(Natural::from_limbs(a))
            }
        }
    }

    /// `self >> 1`, used by the binary GCD.
    pub fn half(&self) -> Natural {
        self.clone() >> 1
    }

    /// Greatest common divisor (binary GCD: needs only shifts and
    /// subtraction, so it avoids implementing general long division).
    pub fn gcd(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros().unwrap();
        let b_tz = b.trailing_zeros().unwrap();
        let shift = a_tz.min(b_tz);
        a = a >> a_tz;
        loop {
            let tz = b.trailing_zeros().unwrap();
            b = b >> tz;
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a after swap");
            if b.is_zero() {
                return a << shift;
            }
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Division by a small divisor, returning `(quotient, remainder)`.
    ///
    /// Panics if `divisor == 0`. This is all the division the workspace
    /// needs (decimal formatting and interpolation denominators).
    pub fn divmod_small(&self, divisor: u64) -> (Natural, u64) {
        assert!(divisor != 0, "division by zero");
        match &self.0 {
            Repr::Small(v) => (
                Natural::from(v / divisor as u128),
                (v % divisor as u128) as u64,
            ),
            Repr::Big(l) => {
                let mut out = vec![0u64; l.len()];
                let mut rem: u128 = 0;
                for i in (0..l.len()).rev() {
                    let cur = (rem << 64) | l[i] as u128;
                    out[i] = (cur / divisor as u128) as u64;
                    rem = cur % divisor as u128;
                }
                (Natural::from_limbs(out), rem as u64)
            }
        }
    }

    /// Returns `true` iff `divisor` divides `self` evenly.
    pub fn divisible_by_small(&self, divisor: u64) -> bool {
        self.divmod_small(divisor).1 == 0
    }

    /// General division, returning `(quotient, remainder)`.
    ///
    /// Implemented as binary shift-subtract long division: simple, exact, and
    /// plenty fast for the few-hundred-bit values that arise in this
    /// workspace (rational reduction in the Lemma 5.10 interpolation).
    /// Panics if `divisor` is zero.
    pub fn divmod(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.to_u128(), divisor.to_u128()) {
            return (Natural::from(a / b), Natural::from(a % b));
        }
        if self < divisor {
            return (Natural::ZERO, self.clone());
        }
        let self_bits = self.bit_len();
        let div_bits = divisor.bit_len();
        let mut rem = self.clone() >> (self_bits - div_bits + 1);
        let mut quotient = Natural::ZERO;
        // Bring in one bit of the dividend per step, MSB first.
        for i in (0..self_bits - div_bits + 1).rev() {
            let bit = (self.clone() >> i).is_even();
            rem = (rem << 1) + if bit { Natural::ZERO } else { Natural::ONE };
            quotient = quotient << 1;
            if let Some(r) = rem.checked_sub(divisor) {
                rem = r;
                quotient += Natural::ONE;
            }
        }
        (quotient, rem)
    }

    /// Division known to be exact; panics if a nonzero remainder appears.
    pub fn exact_div(&self, divisor: &Natural) -> Natural {
        let (q, r) = self.divmod(divisor);
        assert!(r.is_zero(), "exact_div with nonzero remainder");
        q
    }
}

fn small_limbs(v: u128) -> Vec<u64> {
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    if hi == 0 {
        if lo == 0 {
            vec![]
        } else {
            vec![lo]
        }
    } else {
        vec![lo, hi]
    }
}

fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = limb as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry as u128;
            out[i + j] = cur as u64;
            carry = (cur >> 64) as u64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry as u128;
            out[k] = cur as u64;
            carry = (cur >> 64) as u64;
            k += 1;
        }
    }
    out
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => a
                .len()
                .cmp(&b.len())
                .then_with(|| a.iter().rev().cmp(b.iter().rev())),
        }
    }
}

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Natural {
            fn from(v: $t) -> Natural {
                Natural(Repr::Small(v as u128))
            }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, u128, usize);

impl Add for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        match (&self.0, &rhs.0) {
            (Repr::Small(a), Repr::Small(b)) => match a.checked_add(*b) {
                Some(s) => Natural(Repr::Small(s)),
                None => Natural::from_limbs(add_limbs(&small_limbs(*a), &small_limbs(*b))),
            },
            _ => Natural::from_limbs(add_limbs(&self.to_limbs(), &rhs.to_limbs())),
        }
    }
}

impl Mul for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        match (&self.0, &rhs.0) {
            (Repr::Small(a), Repr::Small(b)) => match a.checked_mul(*b) {
                Some(p) => Natural(Repr::Small(p)),
                None => Natural::from_limbs(mul_limbs(&small_limbs(*a), &small_limbs(*b))),
            },
            _ => Natural::from_limbs(mul_limbs(&self.to_limbs(), &rhs.to_limbs())),
        }
    }
}

impl Sub for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs)
            .expect("Natural subtraction underflow")
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Natural {
            type Output = Natural;
            fn $method(self, rhs: Natural) -> Natural {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Natural> for Natural {
            type Output = Natural;
            fn $method(self, rhs: &Natural) -> Natural {
                (&self).$method(rhs)
            }
        }
        impl $trait<Natural> for &Natural {
            type Output = Natural;
            fn $method(self, rhs: Natural) -> Natural {
                self.$method(&rhs)
            }
        }
    };
}
forward_binop!(Add, add);
forward_binop!(Mul, mul);
forward_binop!(Sub, sub);

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = &*self + rhs;
    }
}
impl AddAssign for Natural {
    fn add_assign(&mut self, rhs: Natural) {
        *self += &rhs;
    }
}
impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}
impl MulAssign for Natural {
    fn mul_assign(&mut self, rhs: Natural) {
        *self *= &rhs;
    }
}
impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = &*self - rhs;
    }
}

impl Shl<u32> for Natural {
    type Output = Natural;
    fn shl(self, shift: u32) -> Natural {
        if self.is_zero() || shift == 0 {
            return self;
        }
        if let Repr::Small(v) = self.0 {
            if shift < 128 && v.leading_zeros() > shift {
                return Natural(Repr::Small(v << shift));
            }
        }
        let limbs = self.to_limbs();
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; limbs.len() + limb_shift + 1];
        for (i, &l) in limbs.iter().enumerate() {
            let wide = (l as u128) << bit_shift;
            out[i + limb_shift] |= wide as u64;
            out[i + limb_shift + 1] |= (wide >> 64) as u64;
        }
        Natural::from_limbs(out)
    }
}

impl Shr<u32> for Natural {
    type Output = Natural;
    fn shr(self, shift: u32) -> Natural {
        if self.is_zero() || shift == 0 {
            return self;
        }
        match &self.0 {
            Repr::Small(v) => {
                if shift >= 128 {
                    Natural::ZERO
                } else {
                    Natural(Repr::Small(v >> shift))
                }
            }
            Repr::Big(limbs) => {
                let limb_shift = (shift / 64) as usize;
                let bit_shift = shift % 64;
                if limb_shift >= limbs.len() {
                    return Natural::ZERO;
                }
                let mut out = Vec::with_capacity(limbs.len() - limb_shift);
                for i in limb_shift..limbs.len() {
                    let mut v = limbs[i] >> bit_shift;
                    if bit_shift > 0 {
                        if let Some(&next) = limbs.get(i + 1) {
                            v |= next << (64 - bit_shift);
                        }
                    }
                    out.push(v);
                }
                Natural::from_limbs(out)
            }
        }
    }
}

impl Sum for Natural {
    fn sum<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Natural> for Natural {
    fn sum<I: Iterator<Item = &'a Natural>>(iter: I) -> Natural {
        iter.fold(Natural::ZERO, |acc, x| acc + x)
    }
}

impl Product for Natural {
    fn product<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::ONE, |acc, x| acc * x)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match &self.0 {
            Repr::Small(v) => v.to_string(),
            Repr::Big(_) => {
                // Peel 19 decimal digits at a time (10^19 < 2^64).
                const CHUNK: u64 = 10_000_000_000_000_000_000;
                let mut chunks = Vec::new();
                let mut cur = self.clone();
                while !cur.is_zero() {
                    let (q, r) = cur.divmod_small(CHUNK);
                    chunks.push(r);
                    cur = q;
                }
                let mut s = chunks.pop().unwrap().to_string();
                for c in chunks.into_iter().rev() {
                    s.push_str(&format!("{c:019}"));
                }
                s
            }
        };
        // pad() honours width/alignment flags from the caller
        f.pad(&s)
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::str::FromStr for Natural {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("invalid natural number literal: {s:?}"));
        }
        let ten = Natural::from(10u64);
        let mut acc = Natural::ZERO;
        for b in s.bytes() {
            acc = acc * &ten + Natural::from((b - b'0') as u64);
        }
        Ok(acc)
    }
}

impl Default for Natural {
    fn default() -> Self {
        Natural::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(n(2) + n(3), n(5));
        assert_eq!(n(7) * n(6), n(42));
        assert_eq!(n(10) - n(4), n(6));
        assert!(n(3) < n(4));
        assert!(n(4) <= n(4));
        assert!(Natural::ZERO.is_zero());
        assert!(Natural::ONE.is_one());
    }

    #[test]
    fn promotion_on_overflow() {
        let max = n(u128::MAX);
        let big = &max + &Natural::ONE;
        assert!(big.to_u128().is_none());
        assert_eq!(big.to_string(), "340282366920938463463374607431768211456");
        // and demotion back to the small representation
        let back = big.checked_sub(&Natural::ONE).unwrap();
        assert_eq!(back, max);
        assert!(back.to_u128().is_some());
    }

    #[test]
    fn big_multiplication_known_value() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let v = n(u128::MAX) * n(u128::MAX);
        assert_eq!(
            v.to_string(),
            "115792089237316195423570985008687907852589419931798687112530834793049593217025"
        );
    }

    #[test]
    fn subtraction_underflow_is_checked() {
        assert!(n(3).checked_sub(&n(4)).is_none());
        assert_eq!(n(4).checked_sub(&n(4)), Some(Natural::ZERO));
        let big = n(u128::MAX) + Natural::ONE;
        assert_eq!(big.checked_sub(&big), Some(Natural::ZERO));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = n(1) - n(2);
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1) << 130, n(4) * (n(1) << 128));
        assert_eq!((n(1) << 130) >> 130, n(1));
        assert_eq!((n(0b1011) >> 1), n(0b101));
        assert_eq!(n(5) << 0, n(5));
        assert_eq!((n(1) << 200) >> 300, Natural::ZERO);
    }

    #[test]
    fn gcd_matches_euclid_on_small() {
        fn euclid(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        for (a, b) in [
            (12, 18),
            (0, 7),
            (7, 0),
            (1, 1),
            (48, 180),
            (1 << 40, 3 << 20),
        ] {
            assert_eq!(n(a).gcd(&n(b)), n(euclid(a, b)), "gcd({a},{b})");
        }
    }

    #[test]
    fn gcd_big_values() {
        let a = n(1) << 200;
        let b = n(1) << 150;
        assert_eq!(a.gcd(&b), n(1) << 150);
        // 21·2^200 and 14·2^100 = 7·2^101: gcd = 7·2^101
        let c = (n(1) << 200) * n(21);
        let d = (n(1) << 100) * n(14);
        assert_eq!(c.gcd(&d), (n(1) << 101) * n(7));
    }

    #[test]
    fn pow() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(3).pow(0), n(1));
        assert_eq!(n(0).pow(5), n(0));
        assert_eq!(n(10).pow(40).to_string(), format!("1{}", "0".repeat(40)));
    }

    #[test]
    fn divmod_small() {
        let (q, r) = n(100).divmod_small(7);
        assert_eq!((q, r), (n(14), 2));
        let big = n(10).pow(50);
        let (q, r) = big.divmod_small(3);
        assert_eq!(r, 1);
        assert_eq!(q * n(3) + n(1), n(10).pow(50));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let v: Natural = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<Natural>().is_err());
        assert!("12a".parse::<Natural>().is_err());
    }

    #[test]
    fn ordering_across_representations() {
        let small = n(5);
        let big = n(1) << 200;
        assert!(small < big);
        assert!(big > small);
        assert!(big.clone() >= big.clone());
        let bigger = n(1) << 201;
        assert!(big < bigger);
    }

    #[test]
    fn bit_len_and_trailing_zeros() {
        assert_eq!(Natural::ZERO.bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(255).bit_len(), 8);
        assert_eq!((n(1) << 200).bit_len(), 201);
        assert_eq!(Natural::ZERO.trailing_zeros(), None);
        assert_eq!((n(8)).trailing_zeros(), Some(3));
        assert_eq!((n(1) << 200).trailing_zeros(), Some(200));
    }

    #[test]
    fn divmod_general() {
        // small/small
        let (q, r) = n(100).divmod(&n(7));
        assert_eq!((q, r), (n(14), n(2)));
        // big/small and big/big with reconstruction checks
        let a = n(10).pow(40) + n(123456789);
        for d in [n(3), n(10).pow(10), n(10).pow(25) + n(17)] {
            let (q, r) = a.divmod(&d);
            assert!(r < d);
            assert_eq!(q * &d + &r, a, "reconstruct a = q*d + r for d");
        }
        // divisor > dividend
        let (q, r) = n(5).divmod(&(n(1) << 200));
        assert_eq!((q, r), (Natural::ZERO, n(5)));
        // exact division
        let p = (n(1) << 100) * n(99);
        assert_eq!(p.exact_div(&n(99)), n(1) << 100);
    }

    #[test]
    fn sum_and_product() {
        let vals = [n(1), n(2), n(3), n(4)];
        assert_eq!(vals.iter().sum::<Natural>(), n(10));
        assert_eq!(vals.into_iter().product::<Natural>(), n(24));
    }
}
