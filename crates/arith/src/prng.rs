//! Seeded pseudo-random number generation, hand-rolled to keep the
//! workspace dependency-free (and buildable with no registry access).
//!
//! Two layered generators, both with well-known published constants:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator of Steele,
//!   Lea & Flood. Trivially seedable from any `u64`, statistically fine on
//!   its own, and the standard way to expand a small seed into the larger
//!   state of another generator.
//! * [`Xoshiro256`] — xoshiro256** (Blackman & Vigna), the general-purpose
//!   workhorse: 256-bit state seeded via SplitMix64, period `2^256 - 1`.
//!
//! [`Rng`] is the convenience facade used by workload generators and the
//! randomized test suites: uniform ranges (via Lemire-style rejection-free
//! widening multiply with rejection only on the biased tail), floats in
//! `[0, 1)`, and Bernoulli draws. Sequences are stable across platforms and
//! releases: tests and workloads bake their expectations against them.

/// SplitMix64: a tiny splittable generator; also the seeding expander.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (any value is fine,
    /// including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the main generator behind [`Rng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the 256-bit state by expanding `seed` with [`SplitMix64`]
    /// (the seeding procedure recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The seeded RNG facade used across workloads and tests.
#[derive(Clone, Debug)]
pub struct Rng {
    inner: Xoshiro256,
}

impl Rng {
    /// A deterministic generator for the given seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng {
            inner: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Lemire's multiply-shift method: unbiased, with rejection only on the
    /// (rare) carry-threshold tail.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)` over `usize`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range_usize: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform in `[lo, hi)` over `u32`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "Rng::range_u32: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Uniform in `[lo, hi)` over `i64`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range_i64: empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.abs_diff(lo)) as i64)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // determinism
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
        // seed 0 must not get stuck
        let mut z = SplitMix64::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        let mut a2 = Xoshiro256::seed_from_u64(1);
        let va2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..500 {
            let u = rng.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let x = rng.range_u32(0, 1);
            assert_eq!(x, 0);
            let i = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_unit_interval_and_chance_extremes() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..500 {
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(rng.chance(1.0));
        assert!(!rng.chance(0.0));
        // p = 0.5 should produce both outcomes quickly
        let mut t = false;
        let mut f = false;
        for _ in 0..100 {
            if rng.chance(0.5) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
