//! Property tests for the canonical query fingerprint: renaming variables,
//! reordering atoms, and duplicating conjuncts must leave the fingerprint
//! unchanged, while adding/removing an atom or editing a constant must
//! change it. Seeded loops per the in-repo convention; `exhaustive-tests`
//! raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_query::fingerprint::fingerprint;
use cqcount_query::{ConjunctiveQuery, Term, Var};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    512
} else {
    96
};

/// A random small query: ≤ 5 vars, ≤ 5 atoms, arity ≤ 3, occasional
/// constants, random free set.
fn random_query(rng: &mut Rng) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let nvars = rng.range_usize(1, 6);
    let vars: Vec<Var> = (0..nvars).map(|i| q.var(&format!("V{i}"))).collect();
    let natoms = rng.range_usize(1, 6);
    for _ in 0..natoms {
        let rel = format!("r{}", rng.range_usize(0, 3));
        let arity = rng.range_usize(1, 4);
        let terms: Vec<Term> = (0..arity)
            .map(|_| {
                if rng.range_u32(0, 5) == 0 {
                    Term::Const(format!("c{}", rng.range_usize(0, 3)))
                } else {
                    Term::Var(vars[rng.range_usize(0, nvars)])
                }
            })
            .collect();
        q.add_atom(&rel, terms);
    }
    let occurring = q.vars_in_atoms();
    let mask = rng.range_u32(0, 1 << nvars);
    let free: Vec<Var> = vars
        .iter()
        .enumerate()
        .filter(|(i, v)| mask & (1 << i) != 0 && occurring.contains(v))
        .map(|(_, &v)| v)
        .collect();
    q.set_free(free);
    q
}

/// Rebuilds `q` with variables renamed by `rename` and atoms reordered by
/// `order` (a permutation of atom indices).
fn transformed(
    q: &ConjunctiveQuery,
    rename: &dyn Fn(&str) -> String,
    order: &[usize],
) -> ConjunctiveQuery {
    let mut out = ConjunctiveQuery::new();
    for &i in order {
        let a = &q.atoms()[i];
        let terms = a
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => Term::Var(out.var(&rename(q.var_name(*v)))),
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect();
        out.add_atom(&a.rel, terms);
    }
    let free: Vec<Var> = q
        .free()
        .iter()
        .map(|v| out.var(&rename(q.var_name(*v))))
        .collect();
    out.set_free(free);
    out
}

fn shuffled(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.range_usize(0, i + 1);
        order.swap(i, j);
    }
    order
}

#[test]
fn renaming_and_reordering_preserve_fingerprint() {
    let mut rng = Rng::seed_from_u64(0x51);
    for case in 0..CASES {
        let q = random_query(&mut rng);
        let f0 = fingerprint(&q);
        // fresh names in a scrambled interning order, atoms shuffled
        let offset = rng.range_usize(10, 1000);
        let order = shuffled(&mut rng, q.atoms().len());
        let q2 = transformed(&q, &|name: &str| format!("W{offset}{name}"), &order);
        assert_eq!(f0, fingerprint(&q2), "case {case}: q = {q}");
        // identity rename, different order only
        let order2 = shuffled(&mut rng, q.atoms().len());
        let q3 = transformed(&q, &|name: &str| name.to_owned(), &order2);
        assert_eq!(f0, fingerprint(&q3), "case {case}: q = {q}");
    }
}

#[test]
fn duplicated_conjuncts_preserve_fingerprint() {
    let mut rng = Rng::seed_from_u64(0x52);
    for case in 0..CASES {
        let q = random_query(&mut rng);
        let f0 = fingerprint(&q);
        let mut q2 = q.clone();
        let i = rng.range_usize(0, q.atoms().len());
        let dup = q.atoms()[i].clone();
        q2.add_atom(&dup.rel, dup.terms);
        assert_eq!(f0, fingerprint(&q2), "case {case}: q = {q}");
    }
}

#[test]
fn structural_edits_change_fingerprint() {
    let mut rng = Rng::seed_from_u64(0x53);
    for case in 0..CASES {
        let q = random_query(&mut rng);
        let f0 = fingerprint(&q);

        // Adding an atom over a fresh relation symbol must be visible.
        let mut added = q.clone();
        let extra = match q.vars_in_atoms().into_iter().next() {
            Some(v) => Term::Var(v),
            None => Term::Const("c0".into()),
        };
        added.add_atom("zz_new_rel", vec![extra]);
        assert_ne!(f0, fingerprint(&added), "case {case}: q = {q}");

        // Changing a constant (or a variable into a fresh constant) must be
        // visible.
        let edited = q.clone();
        let i = rng.range_usize(0, q.atoms().len());
        let j = rng.range_usize(0, q.atoms()[i].terms.len());
        let atoms = edited.atoms().to_vec();
        let mut rebuilt = ConjunctiveQuery::new();
        for (k, a) in atoms.iter().enumerate() {
            let terms: Vec<Term> = a
                .terms
                .iter()
                .enumerate()
                .map(|(l, t)| {
                    if k == i && l == j {
                        Term::Const("zz_fresh_const".into())
                    } else {
                        match t {
                            Term::Var(w) => Term::Var(rebuilt.var(edited.var_name(*w))),
                            Term::Const(c) => Term::Const(c.clone()),
                        }
                    }
                })
                .collect();
            rebuilt.add_atom(&a.rel, terms);
        }
        let free: Vec<Var> = edited
            .free()
            .iter()
            .filter_map(|w| rebuilt.find_var(edited.var_name(*w)))
            .collect();
        rebuilt.set_free(free);
        assert_ne!(f0, fingerprint(&rebuilt), "case {case}: q = {q}");
    }
}

#[test]
fn removing_an_atom_changes_fingerprint() {
    let mut rng = Rng::seed_from_u64(0x54);
    for case in 0..CASES {
        let q = random_query(&mut rng);
        // Only meaningful when the removed atom is not a duplicate of a
        // remaining one (conjunction is idempotent, and the fingerprint
        // treats it as such on purpose).
        if q.atoms().len() < 2 {
            continue;
        }
        let i = rng.range_usize(0, q.atoms().len());
        let removed = &q.atoms()[i];
        let duplicate = q
            .atoms()
            .iter()
            .enumerate()
            .any(|(k, a)| k != i && a == removed);
        if duplicate {
            continue;
        }
        let keep: Vec<usize> = (0..q.atoms().len()).filter(|&k| k != i).collect();
        let smaller = q.sub_query(&keep);
        assert_ne!(
            fingerprint(&q),
            fingerprint(&smaller),
            "case {case}: q = {q}"
        );
    }
}
