//! Fuzz-style property tests for the parser: no panics on arbitrary input,
//! and display/parse round-trips on generated programs.

use cqcount_query::{parse_program, parse_query, ConjunctiveQuery, Term};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse_program(&src);
    }

    /// ...including near-miss inputs built from the token alphabet.
    #[test]
    fn parser_never_panics_tokenish(
        parts in proptest::collection::vec(
            proptest::sample::select(vec![
                "ans", "r", "s", "X", "Y", "a", "b", "42", "_t",
                "(", ")", ",", ".", ":-", ":", "%", "#", " ", "\n",
            ]),
            0..40,
        )
    ) {
        let src: String = parts.concat();
        let _ = parse_program(&src);
    }

    /// Generated well-formed programs parse, and display → parse is a
    /// fixpoint for the query.
    #[test]
    fn wellformed_roundtrip(
        atoms in proptest::collection::vec(
            (0usize..3, proptest::collection::vec(0usize..4, 1..4)),
            1..5,
        ),
        free_mask in 0u32..16,
    ) {
        let mut q = ConjunctiveQuery::new();
        let vars: Vec<_> = (0..4).map(|i| q.var(&format!("V{i}"))).collect();
        for (rel, args) in &atoms {
            let terms = args.iter().map(|&a| Term::Var(vars[a])).collect();
            q.add_atom(&format!("r{}a{}", rel, args.len()), terms);
        }
        let used = q.vars_in_atoms();
        let free: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(i, v)| free_mask & (1 << i) != 0 && used.contains(v))
            .map(|(_, &v)| v)
            .collect();
        q.set_free(free);
        let printed = q.to_string();
        let parsed = parse_query(&printed).expect("display output parses");
        // Variable ids depend on interning order (head first in the
        // parser), so compare the printed forms, which are id-free.
        prop_assert_eq!(parsed.to_string(), printed);
        prop_assert_eq!(parsed.atoms().len(), q.atoms().len());
        prop_assert_eq!(parsed.free().len(), q.free().len());
    }

    /// Programs of random facts always parse into consistent databases.
    #[test]
    fn fact_lists_parse(
        facts in proptest::collection::vec(
            (0usize..3, proptest::collection::vec(0usize..5, 1..4)),
            0..20,
        )
    ) {
        let mut src = String::new();
        for (rel, args) in &facts {
            let names: Vec<String> = args.iter().map(|a| format!("c{a}")).collect();
            src.push_str(&format!("f{}a{}({}).\n", rel, args.len(), names.join(", ")));
        }
        let db = cqcount_query::parse_database(&src).expect("facts parse");
        let total: usize = db.relations().map(|(_, r)| r.len()).sum();
        prop_assert!(total <= facts.len());
    }
}
