//! Fuzz-style property tests for the parser: no panics on arbitrary input,
//! and display/parse round-trips on generated programs. Inputs are drawn
//! from the workspace PRNG under fixed seeds; `exhaustive-tests` raises the
//! case count.

use cqcount_arith::prng::Rng;
use cqcount_query::{parse_program, parse_query, ConjunctiveQuery, Term};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    4096
} else {
    256
};

/// The parser must never panic, whatever bytes arrive.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x31);
    for _ in 0..CASES {
        let len = rng.range_usize(0, 201);
        let src: String = (0..len)
            .map(|_| {
                // Printable-ish chars plus the occasional exotic code point.
                match rng.range_u32(0, 20) {
                    0 => '\n',
                    1 => 'λ',
                    2 => '→',
                    _ => char::from_u32(rng.range_u32(0x20, 0x7F)).unwrap(),
                }
            })
            .collect();
        let _ = parse_program(&src);
    }
}

/// ...including near-miss inputs built from the token alphabet.
#[test]
fn parser_never_panics_tokenish() {
    const ALPHABET: &[&str] = &[
        "ans", "r", "s", "X", "Y", "a", "b", "42", "_t", "(", ")", ",", ".", ":-", ":", "%", "#",
        " ", "\n",
    ];
    let mut rng = Rng::seed_from_u64(0x32);
    for _ in 0..CASES {
        let parts = rng.range_usize(0, 40);
        let src: String = (0..parts)
            .map(|_| ALPHABET[rng.range_usize(0, ALPHABET.len())])
            .collect();
        let _ = parse_program(&src);
    }
}

/// Generated well-formed programs parse, and display → parse is a
/// fixpoint for the query.
#[test]
fn wellformed_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x33);
    for _ in 0..CASES {
        let mut q = ConjunctiveQuery::new();
        let vars: Vec<_> = (0..4).map(|i| q.var(&format!("V{i}"))).collect();
        let atoms = rng.range_usize(1, 5);
        for _ in 0..atoms {
            let rel = rng.range_usize(0, 3);
            let arity = rng.range_usize(1, 4);
            let terms = (0..arity)
                .map(|_| Term::Var(vars[rng.range_usize(0, 4)]))
                .collect();
            q.add_atom(&format!("r{rel}a{arity}"), terms);
        }
        let free_mask = rng.range_u32(0, 16);
        let used = q.vars_in_atoms();
        let free: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(i, v)| free_mask & (1 << i) != 0 && used.contains(v))
            .map(|(_, &v)| v)
            .collect();
        q.set_free(free);
        let printed = q.to_string();
        let parsed = parse_query(&printed).expect("display output parses");
        // Variable ids depend on interning order (head first in the
        // parser), so compare the printed forms, which are id-free.
        assert_eq!(parsed.to_string(), printed);
        assert_eq!(parsed.atoms().len(), q.atoms().len());
        assert_eq!(parsed.free().len(), q.free().len());
    }
}

/// Programs of random facts always parse into consistent databases.
#[test]
fn fact_lists_parse() {
    let mut rng = Rng::seed_from_u64(0x34);
    for _ in 0..CASES {
        let count = rng.range_usize(0, 20);
        let mut src = String::new();
        for _ in 0..count {
            let rel = rng.range_usize(0, 3);
            let arity = rng.range_usize(1, 4);
            let names: Vec<String> = (0..arity)
                .map(|_| format!("c{}", rng.range_usize(0, 5)))
                .collect();
            src.push_str(&format!("f{rel}a{arity}({}).\n", names.join(", ")));
        }
        let db = cqcount_query::parse_database(&src).expect("facts parse");
        let total: usize = db.relations().map(|(_, r)| r.len()).sum();
        assert!(total <= count);
    }
}
