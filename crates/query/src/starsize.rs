//! Quantified star size (Durand–Mengel, recast as in Appendix A).
//!
//! The quantified star size of `Q` is the maximum, over existential
//! variables `Y`, of the size of a maximum independent set (in the primal
//! graph of `Q`) contained in the frontier `Fr(Y, free(Q), H_Q)`.

use crate::ConjunctiveQuery;
use cqcount_hypergraph::primal::PrimalGraph;
use cqcount_hypergraph::w_components;

/// Computes the quantified star size of `q` (0 if there are no existential
/// variables). Exponential in the frontier sizes (exact MIS), which are
/// bounded by the fixed query.
pub fn quantified_star_size(q: &ConjunctiveQuery) -> usize {
    let h = q.hypergraph();
    let free = q.free_nodes();
    let primal = PrimalGraph::of(&h);
    w_components(&h, &free)
        .into_iter()
        .map(|c| primal.max_independent_set(&c.edge_nodes(&h).intersection(&free)))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Term, Var};

    fn t(v: Var) -> Term {
        Term::Var(v)
    }

    #[test]
    fn no_existential_vars_means_zero() {
        let mut q = ConjunctiveQuery::new();
        let (a, b) = (q.var("A"), q.var("B"));
        q.add_atom("r", vec![t(a), t(b)]);
        q.set_free([a, b]);
        assert_eq!(quantified_star_size(&q), 0);
    }

    #[test]
    fn simple_star() {
        // r(Y, X1), r(Y, X2), r(Y, X3) with X1..X3 free and pairwise
        // non-adjacent: star size 3.
        let mut q = ConjunctiveQuery::new();
        let y = q.var("Y");
        let xs: Vec<Var> = (1..=3).map(|i| q.var(&format!("X{i}"))).collect();
        for &x in &xs {
            q.add_atom("r", vec![t(y), t(x)]);
        }
        q.set_free(xs);
        assert_eq!(quantified_star_size(&q), 3);
    }

    #[test]
    fn guarded_star_has_size_one() {
        // Adding a guard atom g(X1,X2,X3) makes the frontier a clique.
        let mut q = ConjunctiveQuery::new();
        let y = q.var("Y");
        let xs: Vec<Var> = (1..=3).map(|i| q.var(&format!("X{i}"))).collect();
        for &x in &xs {
            q.add_atom("r", vec![t(y), t(x)]);
        }
        q.add_atom("g", vec![t(xs[0]), t(xs[1]), t(xs[2])]);
        q.set_free(xs);
        assert_eq!(quantified_star_size(&q), 1);
    }

    #[test]
    fn example_a2_star_size_is_ceil_n_half() {
        // Q1^n of Example A.2: quantified star size = ⌈n/2⌉.
        for n in 2..=5usize {
            let mut q = ConjunctiveQuery::new();
            let xs: Vec<Var> = (1..=n).map(|i| q.var(&format!("X{i}"))).collect();
            let ys: Vec<Var> = (1..=n).map(|i| q.var(&format!("Y{i}"))).collect();
            for i in 0..n {
                q.add_atom("r", vec![t(xs[i]), t(ys[i])]);
            }
            for i in 0..n - 1 {
                q.add_atom("r", vec![t(xs[i]), t(xs[i + 1])]);
                q.add_atom("r", vec![t(ys[i]), t(ys[i + 1])]);
            }
            q.set_free(xs);
            assert_eq!(quantified_star_size(&q), n.div_ceil(2), "n = {n}");
        }
    }

    #[test]
    fn example_c1_star_query_full_frontier() {
        // Q2^h of Example C.1: every existential's frontier is all of
        // {X0..Xh}; the X_i are pairwise non-adjacent, so star size = h+1.
        let h = 3;
        let mut q = ConjunctiveQuery::new();
        let x0 = q.var("X0");
        let xs: Vec<Var> = (1..=h).map(|i| q.var(&format!("X{i}"))).collect();
        let y0 = q.var("Y0");
        let ys: Vec<Var> = (1..=h).map(|i| q.var(&format!("Y{i}"))).collect();
        let mut r_terms = vec![t(x0)];
        r_terms.extend(ys.iter().map(|&y| t(y)));
        q.add_atom("r", r_terms);
        let mut s_terms = vec![t(y0)];
        s_terms.extend(ys.iter().map(|&y| t(y)));
        q.add_atom("s", s_terms);
        for i in 0..h {
            q.add_atom(&format!("w{}", i + 1), vec![t(xs[i]), t(ys[i])]);
        }
        let mut free = vec![x0];
        free.extend(&xs);
        q.set_free(free);
        assert_eq!(quantified_star_size(&q), h + 1);
    }
}
