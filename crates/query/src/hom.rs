//! Backtracking homomorphism solver.
//!
//! Homomorphisms between query structures drive core computation (Section 2)
//! and the Section 5 machinery; homomorphisms from a query into a database
//! are exactly its solutions. Constants map to themselves; variables map to
//! terms (query targets) or values (database targets).

use crate::{Atom, ConjunctiveQuery, Term, Var};
use cqcount_relational::{Database, Value};
use std::collections::BTreeMap;

/// Orders atom indices so that each atom (after the first) shares as many
/// variables as possible with the previously chosen ones — cheap heuristic
/// that maximizes propagation during backtracking.
fn connectivity_order(atoms: &[Atom]) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: Vec<Var> = Vec::new();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let vars = atoms[i].vars();
                let shared = vars.iter().filter(|v| bound.contains(v)).count();
                // prefer high overlap, then many variables (more pruning)
                (shared, vars.len())
            })
            .expect("remaining nonempty");
        order.push(best);
        for v in atoms[best].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        remaining.remove(pos);
    }
    order
}

/// Searches for a homomorphism from `from` to `to`, extending the partial
/// assignment `fixed`. Returns the total assignment on the variables of
/// `from` occurring in atoms, or `None`.
pub fn find_homomorphism(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    fixed: &BTreeMap<Var, Term>,
) -> Option<BTreeMap<Var, Term>> {
    let order = connectivity_order(from.atoms());
    let mut assignment = fixed.clone();
    if search(from, to, &order, 0, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

/// Returns `true` iff a homomorphism from `from` to `to` exists.
pub fn has_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> bool {
    find_homomorphism(from, to, &BTreeMap::new()).is_some()
}

/// Enumerates *all* homomorphisms from `from` to `to` (as assignments over
/// the atom variables of `from`). Exponential; for the small queries of the
/// Section 5 machinery (automorphism groups, Lemma 5.10).
pub fn enumerate_homomorphisms(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
) -> Vec<BTreeMap<Var, Term>> {
    let order = connectivity_order(from.atoms());
    let mut out = Vec::new();
    let mut assignment = BTreeMap::new();
    enumerate_search(from, to, &order, 0, &mut assignment, &mut out);
    out
}

fn enumerate_search(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    order: &[usize],
    depth: usize,
    assignment: &mut BTreeMap<Var, Term>,
    out: &mut Vec<BTreeMap<Var, Term>>,
) {
    let Some(&atom_idx) = order.get(depth) else {
        out.push(assignment.clone());
        return;
    };
    let atom = &from.atoms()[atom_idx];
    for candidate in to.atoms() {
        if candidate.rel != atom.rel || candidate.terms.len() != atom.terms.len() {
            continue;
        }
        let mut added: Vec<Var> = Vec::new();
        let mut ok = true;
        for (src, dst) in atom.terms.iter().zip(&candidate.terms) {
            match src {
                Term::Const(c) => {
                    if !matches!(dst, Term::Const(d) if d == c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(img) => {
                        if img != dst {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*v, dst.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if ok {
            enumerate_search(from, to, order, depth + 1, assignment, out);
            if added.is_empty() {
                // Fully bound atom: any further matching candidate would
                // reproduce identical assignments.
                return;
            }
        }
        for v in added {
            assignment.remove(&v);
        }
    }
}

fn search(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    order: &[usize],
    depth: usize,
    assignment: &mut BTreeMap<Var, Term>,
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return true;
    };
    let atom = &from.atoms()[atom_idx];
    for candidate in to.atoms() {
        if candidate.rel != atom.rel || candidate.terms.len() != atom.terms.len() {
            continue;
        }
        // Try mapping this atom onto the candidate, recording new bindings.
        let mut added: Vec<Var> = Vec::new();
        let mut ok = true;
        for (src, dst) in atom.terms.iter().zip(&candidate.terms) {
            match src {
                Term::Const(c) => {
                    // h(c) = c: the image term must be the same constant.
                    if !matches!(dst, Term::Const(d) if d == c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(img) => {
                        if img != dst {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*v, dst.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if ok && search(from, to, order, depth + 1, assignment) {
            return true;
        }
        for v in added {
            assignment.remove(&v);
        }
    }
    false
}

/// Invokes `visit` with every homomorphism from `q` into `db` (every
/// solution in `Q^D`, as assignments over the atom variables). Returns early
/// if `visit` returns `false`.
///
/// Constants that the database has never interned make the query
/// unsatisfiable (no homomorphism maps them anywhere).
pub fn for_each_homomorphism_to_db<F>(q: &ConjunctiveQuery, db: &Database, mut visit: F)
where
    F: FnMut(&BTreeMap<Var, Value>) -> bool,
{
    let order = connectivity_order(q.atoms());
    let mut assignment: BTreeMap<Var, Value> = BTreeMap::new();
    db_search(q, db, &order, 0, &mut assignment, &mut visit);
}

fn db_search<F>(
    q: &ConjunctiveQuery,
    db: &Database,
    order: &[usize],
    depth: usize,
    assignment: &mut BTreeMap<Var, Value>,
    visit: &mut F,
) -> bool
where
    F: FnMut(&BTreeMap<Var, Value>) -> bool,
{
    let Some(&atom_idx) = order.get(depth) else {
        return visit(assignment);
    };
    let atom = &q.atoms()[atom_idx];
    let Some(rel) = db.relation(&atom.rel) else {
        return true; // relation absent: empty, no solutions below
    };
    if rel.arity() != atom.terms.len() {
        return true;
    }
    'tuple: for tuple in rel.iter() {
        let mut added: Vec<Var> = Vec::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => match db.interner().get(c) {
                    Some(v) if v == tuple[i] => {}
                    _ => {
                        for v in added {
                            assignment.remove(&v);
                        }
                        continue 'tuple;
                    }
                },
                Term::Var(var) => match assignment.get(var) {
                    Some(&bound) => {
                        if bound != tuple[i] {
                            for v in added {
                                assignment.remove(&v);
                            }
                            continue 'tuple;
                        }
                    }
                    None => {
                        assignment.insert(*var, tuple[i]);
                        added.push(*var);
                    }
                },
            }
        }
        let keep_going = db_search(q, db, order, depth + 1, assignment, visit);
        for v in added {
            assignment.remove(&v);
        }
        if !keep_going {
            return false;
        }
    }
    true
}

/// Materializes all homomorphisms from `q` into `db`.
pub fn enumerate_homomorphisms_to_db(
    q: &ConjunctiveQuery,
    db: &Database,
) -> Vec<BTreeMap<Var, Value>> {
    let mut out = Vec::new();
    for_each_homomorphism_to_db(q, db, |h| {
        out.push(h.clone());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Var) -> Term {
        Term::Var(v)
    }

    /// Path query: r(X1, X2), r(X2, X3).
    fn path(n: usize) -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        let vars: Vec<Var> = (0..=n).map(|i| q.var(&format!("X{i}"))).collect();
        for w in vars.windows(2) {
            q.add_atom("r", vec![t(w[0]), t(w[1])]);
        }
        q
    }

    /// Triangle: r(X,Y), r(Y,Z), r(Z,X).
    fn triangle() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        let (x, y, z) = (q.var("X"), q.var("Y"), q.var("Z"));
        q.add_atom("r", vec![t(x), t(y)]);
        q.add_atom("r", vec![t(y), t(z)]);
        q.add_atom("r", vec![t(z), t(x)]);
        q
    }

    /// Self-loop: r(X,X).
    fn self_loop() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        let x = q.var("X");
        q.add_atom("r", vec![t(x), t(x)]);
        q
    }

    #[test]
    fn path_maps_into_self_loop() {
        assert!(has_homomorphism(&path(5), &self_loop()));
        assert!(has_homomorphism(&triangle(), &self_loop()));
        // But not conversely: the loop needs r(a,a) in the path, absent.
        assert!(!has_homomorphism(&self_loop(), &path(5)));
    }

    #[test]
    fn directed_paths_are_cores() {
        // Directed paths do not fold: P2 -> P1 would need h(X1) to be both
        // the head and the tail of the single edge.
        assert!(!has_homomorphism(&path(2), &path(1)));
        assert!(has_homomorphism(&path(1), &path(2)));
        assert!(has_homomorphism(&path(2), &path(7)));
    }

    #[test]
    fn triangle_does_not_map_to_path() {
        assert!(!has_homomorphism(&triangle(), &path(3)));
        // but path maps into triangle (walk around it)
        assert!(has_homomorphism(&path(4), &triangle()));
    }

    #[test]
    fn constants_must_match() {
        let mut q1 = ConjunctiveQuery::new();
        let x = q1.var("X");
        q1.add_atom("r", vec![t(x), Term::Const("a".into())]);
        let mut q2 = ConjunctiveQuery::new();
        let y = q2.var("Y");
        q2.add_atom("r", vec![t(y), Term::Const("a".into())]);
        assert!(has_homomorphism(&q1, &q2));
        let mut q3 = ConjunctiveQuery::new();
        let z = q3.var("Z");
        q3.add_atom("r", vec![t(z), Term::Const("b".into())]);
        assert!(!has_homomorphism(&q1, &q3));
    }

    #[test]
    fn fixed_assignment_respected() {
        // Map the single edge r(X0,X1) into the 2-path a->b->c.
        let p1 = path(1);
        let p2 = path(2);
        let x0 = p1.find_var("X0").unwrap();
        // Pinning X0 to the path's end fails: no edge leaves it.
        let end = p2.find_var("X2").unwrap();
        let mut fixed = BTreeMap::new();
        fixed.insert(x0, t(end));
        assert!(find_homomorphism(&p1, &p2, &fixed).is_none());
        // Pinning X0 to the start works.
        let start = p2.find_var("X0").unwrap();
        let mut fixed2 = BTreeMap::new();
        fixed2.insert(x0, t(start));
        let h = find_homomorphism(&p1, &p2, &fixed2).unwrap();
        assert_eq!(h.get(&x0), Some(&t(start)));
    }

    #[test]
    fn db_enumeration_counts_paths() {
        let mut db = Database::new();
        // a->b, b->c, a->c : 2-paths are (a,b,c); plus... r(X,Y),r(Y,Z)
        db.add_fact("r", &["a", "b"]);
        db.add_fact("r", &["b", "c"]);
        db.add_fact("r", &["a", "c"]);
        let q = path(2);
        let homs = enumerate_homomorphisms_to_db(&q, &db);
        assert_eq!(homs.len(), 1); // only a->b->c
    }

    #[test]
    fn db_enumeration_with_constants_and_repeats() {
        let mut db = Database::new();
        db.add_fact("r", &["a", "a"]);
        db.add_fact("r", &["a", "b"]);
        let mut q = ConjunctiveQuery::new();
        let x = q.var("X");
        q.add_atom("r", vec![t(x), t(x)]); // self loop
        assert_eq!(enumerate_homomorphisms_to_db(&q, &db).len(), 1);
        let mut q2 = ConjunctiveQuery::new();
        let y = q2.var("Y");
        q2.add_atom("r", vec![Term::Const("a".into()), t(y)]);
        assert_eq!(enumerate_homomorphisms_to_db(&q2, &db).len(), 2);
        // unknown constant: no solutions
        let mut q3 = ConjunctiveQuery::new();
        let z = q3.var("Z");
        q3.add_atom("r", vec![Term::Const("zzz".into()), t(z)]);
        assert_eq!(enumerate_homomorphisms_to_db(&q3, &db).len(), 0);
    }

    #[test]
    fn early_termination() {
        let mut db = Database::new();
        for i in 0..10 {
            db.add_fact("r", &[&format!("a{i}"), &format!("b{i}")]);
        }
        let mut q = ConjunctiveQuery::new();
        let (x, y) = (q.var("X"), q.var("Y"));
        q.add_atom("r", vec![t(x), t(y)]);
        let mut seen = 0;
        for_each_homomorphism_to_db(&q, &db, |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn missing_relation_means_no_solutions() {
        let db = Database::new();
        let q = path(1);
        assert!(enumerate_homomorphisms_to_db(&q, &db).is_empty());
    }
}
