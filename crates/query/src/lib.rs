//! Conjunctive queries: representation, parsing, homomorphisms, cores and
//! colorings (Sections 2, 3.1 and 5.3 of the paper).
//!
//! * [`cq`] — the [`ConjunctiveQuery`] type: atoms over variables and
//!   constants, free (output) variables, the associated hypergraph, the
//!   re-quantification `Q[S̄]` of Section 6 and the `simple(Q)` renaming of
//!   Section 5.4;
//! * [`parser`] — a datalog-style text format for queries and databases;
//! * [`hom`] — a backtracking homomorphism solver between query structures
//!   (and onto databases), the engine behind cores and brute-force counting;
//! * [`canonical`] — the canonical database `D_Q` of a query and atom
//!   evaluation against databases (query ↔ relational bridge);
//! * [`core_of`] — exact cores by greedy atom removal, plus the
//!   polynomial-time core computation of Lemma 4.3 via pairwise consistency;
//! * [`mod@color`] — `color(Q)` and `fullcolor(Q)` (Sections 3.1, 5.3);
//! * [`starsize`] — the quantified star size of Durand–Mengel (Appendix A);
//! * [`fingerprint`] — canonical, renaming/order-invariant query
//!   fingerprints (the serving layer's plan-cache key).

pub mod canonical;
pub mod color;
pub mod core_of;
pub mod cq;
pub mod fingerprint;
pub mod hom;
pub mod parser;
pub mod starsize;

pub use color::{color, fullcolor, is_coloring_atom, uncolor};
pub use core_of::{core_exact, core_via_consistency, is_hom_equivalent};
pub use cq::{Atom, ConjunctiveQuery, Term, Var};
pub use fingerprint::{canonical_text, fingerprint, QueryFingerprint};
pub use hom::{enumerate_homomorphisms_to_db, find_homomorphism, has_homomorphism};
pub use parser::{parse_database, parse_program, parse_query, ParseError};
pub use starsize::quantified_star_size;
