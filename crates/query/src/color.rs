//! Colorings `color(Q)` and `fullcolor(Q)` (Sections 3.1 and 5.3).
//!
//! `color(Q)` adds a fresh unary atom `r_X(X)` for every free variable `X`;
//! `fullcolor(Q)` does so for *every* variable. Because the relation symbol
//! is private to the variable, any homomorphism of the colored query must
//! fix the colored variables — which is what makes cores of `color(Q)`
//! retain all output variables and their relevant substructure.

use crate::{Atom, ConjunctiveQuery, Term};

/// The reserved relation-name prefix of coloring atoms. The parser never
/// produces identifiers containing `@`, so collisions are impossible.
pub const COLOR_PREFIX: &str = "@color@";

/// Returns `true` iff `atom` is a coloring atom.
pub fn is_coloring_atom(atom: &Atom) -> bool {
    atom.rel.starts_with(COLOR_PREFIX)
}

/// `color(Q)`: `Q` plus one atom `r_X(X)` per free variable `X`.
pub fn color(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut out = q.clone();
    for v in q.free() {
        let rel = format!("{COLOR_PREFIX}{}", q.var_name(v));
        out.add_atom(&rel, vec![Term::Var(v)]);
    }
    out
}

/// `fullcolor(Q)`: `Q` plus one atom `r_X(X)` per variable `X` occurring in
/// the query.
pub fn fullcolor(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut out = q.clone();
    for v in q.vars_in_atoms() {
        let rel = format!("{COLOR_PREFIX}{}", q.var_name(v));
        out.add_atom(&rel, vec![Term::Var(v)]);
    }
    out
}

/// Removes every coloring atom (the "uncolored version" used in the proof of
/// Theorem 3.7).
pub fn uncolor(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut out = q.clone();
    let keep: Vec<usize> = (0..q.atoms().len())
        .filter(|&i| !is_coloring_atom(&q.atoms()[i]))
        .collect();
    out = out.sub_query(&keep);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::has_homomorphism;

    fn t(v: crate::Var) -> Term {
        Term::Var(v)
    }

    #[test]
    fn color_adds_one_atom_per_free_var() {
        let mut q = ConjunctiveQuery::new();
        let (a, x) = (q.var("A"), q.var("X"));
        q.add_atom("r", vec![t(a), t(x)]);
        q.set_free([a]);
        let c = color(&q);
        assert_eq!(c.atoms().len(), 2);
        assert!(is_coloring_atom(&c.atoms()[1]));
        assert_eq!(c.atoms()[1].rel, "@color@A");
        // free set unchanged
        assert_eq!(c.free(), q.free());
    }

    #[test]
    fn fullcolor_colors_everything() {
        let mut q = ConjunctiveQuery::new();
        let (a, x) = (q.var("A"), q.var("X"));
        q.add_atom("r", vec![t(a), t(x)]);
        q.set_free([a]);
        let fc = fullcolor(&q);
        assert_eq!(fc.atoms().len(), 3);
        assert_eq!(fc.atoms().iter().filter(|a| is_coloring_atom(a)).count(), 2);
    }

    #[test]
    fn uncolor_inverts_color() {
        let mut q = ConjunctiveQuery::new();
        let (a, x) = (q.var("A"), q.var("X"));
        q.add_atom("r", vec![t(a), t(x)]);
        q.set_free([a]);
        assert_eq!(uncolor(&color(&q)), q);
        assert_eq!(uncolor(&fullcolor(&q)), q);
    }

    #[test]
    fn coloring_blocks_free_variable_collapse() {
        // r(A,X), r(B,X) with A,B free: uncolored, A and B can collapse;
        // colored, they cannot.
        let mut q = ConjunctiveQuery::new();
        let (a, b, x) = (q.var("A"), q.var("B"), q.var("X"));
        q.add_atom("r", vec![t(a), t(x)]);
        q.add_atom("r", vec![t(b), t(x)]);
        q.set_free([a, b]);
        // uncolored folding: drop the second atom
        let folded = q.sub_query(&[0]);
        assert!(has_homomorphism(&q, &folded));
        // colored folding impossible: @color@B has no image in colored folded
        let colored = color(&q);
        let colored_folded = color(&folded);
        assert!(!has_homomorphism(&colored, &colored_folded));
    }
}
