//! The query ↔ relational-structure bridge.
//!
//! A conjunctive query *is* a relational structure (Section 2): its canonical
//! database has one constant per term and one tuple per atom. Homomorphisms
//! `Q → Q'` are exactly the solutions of `Q` over the canonical database of
//! `Q'`, which is what Lemma 4.3 exploits. This module also provides atom
//! evaluation against ordinary databases.

use crate::{Atom, ConjunctiveQuery, Term};
use cqcount_relational::{Bindings, ColTerm, Database};

/// The name of the canonical constant representing a variable. The `$`
/// prefix keeps variable-constants disjoint from user constants (the parser
/// never produces identifiers containing `$`).
pub fn canonical_constant(q: &ConjunctiveQuery, v: crate::Var) -> String {
    format!("${}", q.var_name(v))
}

/// Builds the canonical database `D_Q`: each atom `r(t̄)` becomes the ground
/// tuple obtained by replacing every variable `X` with the constant `$X`.
pub fn canonical_database(q: &ConjunctiveQuery) -> Database {
    let mut db = Database::new();
    for atom in q.atoms() {
        let tuple = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => db.value(&canonical_constant(q, *v)),
                Term::Const(c) => db.value(c),
            })
            .collect();
        db.add_tuple(&atom.rel, tuple);
    }
    db
}

/// Evaluates an atom against a database, yielding the set of substitutions
/// over the atom's variables (constants filtered, repeated variables forced
/// equal). A missing relation, an arity mismatch with the stored relation,
/// or an unknown constant yields the empty set.
pub fn atom_bindings(atom: &Atom, db: &Database) -> Bindings {
    let cols: Vec<u32> = atom.vars().iter().map(|v| v.node()).collect();
    let Some(rel) = db.relation(&atom.rel) else {
        return Bindings::empty(cols);
    };
    if rel.arity() != atom.terms.len() {
        return Bindings::empty(cols);
    }
    let mut col_terms = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            Term::Var(v) => col_terms.push(ColTerm::Var(v.node())),
            Term::Const(c) => match db.interner().get(c) {
                Some(val) => col_terms.push(ColTerm::Const(val)),
                None => return Bindings::empty(cols),
            },
        }
    }
    Bindings::from_atom(rel, &col_terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::{enumerate_homomorphisms_to_db, has_homomorphism};
    use crate::Var;

    fn t(v: Var) -> Term {
        Term::Var(v)
    }

    fn triangle() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        let (x, y, z) = (q.var("X"), q.var("Y"), q.var("Z"));
        q.add_atom("r", vec![t(x), t(y)]);
        q.add_atom("r", vec![t(y), t(z)]);
        q.add_atom("r", vec![t(z), t(x)]);
        q
    }

    #[test]
    fn canonical_db_shape() {
        let q = triangle();
        let db = canonical_database(&q);
        let r = db.relation("r").unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(db.interner().len(), 3); // $X, $Y, $Z
    }

    #[test]
    fn homs_to_query_equal_solutions_on_canonical_db() {
        // Chandra–Merlin: hom(Q1 -> Q2) iff Q1 has a solution on D_{Q2}.
        let q1 = {
            let mut q = ConjunctiveQuery::new();
            let (a, b) = (q.var("A"), q.var("B"));
            q.add_atom("r", vec![t(a), t(b)]);
            q
        };
        let q2 = triangle();
        let db2 = canonical_database(&q2);
        assert_eq!(
            has_homomorphism(&q1, &q2),
            !enumerate_homomorphisms_to_db(&q1, &db2).is_empty()
        );
        // and count: edges of the triangle = 3 homomorphisms
        assert_eq!(enumerate_homomorphisms_to_db(&q1, &db2).len(), 3);
    }

    #[test]
    fn constants_survive_canonically() {
        let mut q = ConjunctiveQuery::new();
        let x = q.var("X");
        q.add_atom("r", vec![t(x), Term::Const("alice".into())]);
        let db = canonical_database(&q);
        assert!(db.interner().get("alice").is_some());
        assert!(db.interner().get("$X").is_some());
    }

    #[test]
    fn atom_bindings_evaluates() {
        let mut db = Database::new();
        db.add_fact("r", &["a", "b"]);
        db.add_fact("r", &["a", "a"]);
        let mut q = ConjunctiveQuery::new();
        let x = q.var("X");
        // r(X, X)
        q.add_atom("r", vec![t(x), t(x)]);
        let b = atom_bindings(&q.atoms()[0], &db);
        assert_eq!(b.len(), 1);
        // r(X, 'b')
        let mut q2 = ConjunctiveQuery::new();
        let y = q2.var("Y");
        q2.add_atom("r", vec![t(y), Term::Const("b".into())]);
        assert_eq!(atom_bindings(&q2.atoms()[0], &db).len(), 1);
        // unknown relation / constant
        let mut q3 = ConjunctiveQuery::new();
        let z = q3.var("Z");
        q3.add_atom("nope", vec![t(z)]);
        assert!(atom_bindings(&q3.atoms()[0], &db).is_empty());
        let mut q4 = ConjunctiveQuery::new();
        let w = q4.var("W");
        q4.add_atom("r", vec![t(w), Term::Const("zz".into())]);
        assert!(atom_bindings(&q4.atoms()[0], &db).is_empty());
    }
}
