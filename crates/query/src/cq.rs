//! The conjunctive-query representation.

use cqcount_hypergraph::{Hypergraph, NodeSet};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, identified by a dense id local to its query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The hypergraph node corresponding to this variable.
    pub fn node(self) -> u32 {
        self.0
    }
}

/// A term: a variable or a (named) constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A constant, stored by name; interned against a database at
    /// evaluation time (and mapped to itself by homomorphisms).
    Const(String),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// An atom `r(t₁, ..., tρ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: String,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }
}

/// A conjunctive query `∃X̄ r₁(u₁) ∧ ... ∧ r_m(u_m)` with an explicit set of
/// free (output) variables.
///
/// Variables carry printable names through an internal table; two queries
/// compare equal when their atom lists and free sets agree.
///
/// ```
/// use cqcount_query::{ConjunctiveQuery, Term};
/// let mut q = ConjunctiveQuery::new();
/// let a = q.var("A");
/// let x = q.var("X");
/// q.add_atom("r", vec![Term::Var(a), Term::Var(x)]);
/// q.set_free([a]);
/// assert_eq!(q.free().len(), 1);
/// assert_eq!(q.existential().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    var_names: Vec<String>,
    atoms: Vec<Atom>,
    free: BTreeSet<Var>,
}

impl Default for ConjunctiveQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl ConjunctiveQuery {
    /// An empty query (no atoms, no variables).
    pub fn new() -> ConjunctiveQuery {
        ConjunctiveQuery {
            var_names: Vec::new(),
            atoms: Vec::new(),
            free: BTreeSet::new(),
        }
    }

    /// Interns a variable by name (idempotent).
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            return Var(i as u32);
        }
        self.var_names.push(name.to_owned());
        Var(self.var_names.len() as u32 - 1)
    }

    /// The printable name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// Looks up a variable by name without interning.
    pub fn find_var(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// Number of variable ids ever interned (including ones that may no
    /// longer occur in any atom).
    pub fn var_table_len(&self) -> usize {
        self.var_names.len()
    }

    /// Adds an atom.
    pub fn add_atom(&mut self, rel: &str, terms: Vec<Term>) {
        self.atoms.push(Atom {
            rel: rel.to_owned(),
            terms,
        });
    }

    /// Marks variables as free (output). Variables not mentioned are
    /// existential.
    pub fn set_free<I: IntoIterator<Item = Var>>(&mut self, vars: I) {
        self.free = vars.into_iter().collect();
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Removes the atom at `index`, returning it. Free variables are kept
    /// as declared (cores never lose colored free variables).
    pub fn remove_atom(&mut self, index: usize) -> Atom {
        self.atoms.remove(index)
    }

    /// All variables occurring in some atom, ascending.
    pub fn vars_in_atoms(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// The free (output) variables that actually occur in the query.
    pub fn free(&self) -> BTreeSet<Var> {
        let occurring = self.vars_in_atoms();
        self.free.intersection(&occurring).copied().collect()
    }

    /// The declared free set (even variables that no atom mentions).
    pub fn declared_free(&self) -> &BTreeSet<Var> {
        &self.free
    }

    /// The existentially quantified variables.
    pub fn existential(&self) -> BTreeSet<Var> {
        self.vars_in_atoms()
            .difference(&self.free)
            .copied()
            .collect()
    }

    /// The free variables as a hypergraph node set.
    pub fn free_nodes(&self) -> NodeSet {
        self.free().iter().map(|v| v.node()).collect()
    }

    /// The query hypergraph `H_Q`: one hyperedge per atom over its variables.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for a in &self.atoms {
            h.add_edge(a.vars().iter().map(|v| v.node()).collect());
        }
        h
    }

    /// `Q[S̄]` (Section 6): same atoms, `free(Q[S̄]) = S̄`.
    pub fn requantify<I: IntoIterator<Item = Var>>(&self, free: I) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.set_free(free);
        q
    }

    /// Returns `true` iff every atom uses a distinct relation symbol
    /// (the paper's *simple* queries).
    pub fn is_simple(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.atoms.iter().all(|a| seen.insert(&a.rel))
    }

    /// `simple(Q)` (Section 5.4): rename relation symbols so every atom has
    /// its own. The i-th atom over symbol `r` becomes `r#i`.
    pub fn to_simple(&self) -> ConjunctiveQuery {
        let mut q = self.clone();
        for (i, a) in q.atoms.iter_mut().enumerate() {
            a.rel = format!("{}#{}", a.rel, i);
        }
        q
    }

    /// The maximum atom arity.
    pub fn max_arity(&self) -> usize {
        self.atoms.iter().map(|a| a.terms.len()).max().unwrap_or(0)
    }

    /// A size measure `‖Q‖`: total number of term occurrences.
    pub fn size(&self) -> usize {
        self.atoms.iter().map(|a| a.terms.len()).sum()
    }

    /// Keeps only atoms whose index satisfies `keep` (used by core search).
    pub fn sub_query(&self, keep: &[usize]) -> ConjunctiveQuery {
        let mut q = self.clone();
        q.atoms = keep.iter().map(|&i| self.atoms[i].clone()).collect();
        q
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let free = self.free();
        write!(f, "ans(")?;
        for (i, v) in free.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.rel)?;
            for (j, t) in a.terms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q0() -> ConjunctiveQuery {
        // Example 1.1 (the paper's running query).
        let mut q = ConjunctiveQuery::new();
        let (a, b, c) = (q.var("A"), q.var("B"), q.var("C"));
        let (d, e, f) = (q.var("D"), q.var("E"), q.var("F"));
        let (g, h, i) = (q.var("G"), q.var("H"), q.var("I"));
        let t = Term::Var;
        q.add_atom("mw", vec![t(a), t(b), t(i)]);
        q.add_atom("wt", vec![t(b), t(d)]);
        q.add_atom("wi", vec![t(b), t(e)]);
        q.add_atom("pt", vec![t(c), t(d)]);
        q.add_atom("st", vec![t(d), t(f)]);
        q.add_atom("st", vec![t(d), t(g)]);
        q.add_atom("rr", vec![t(g), t(h)]);
        q.add_atom("rr", vec![t(f), t(h)]);
        q.add_atom("rr", vec![t(d), t(h)]);
        q.set_free([a, b, c]);
        q
    }

    #[test]
    fn var_interning() {
        let mut q = ConjunctiveQuery::new();
        let a = q.var("A");
        assert_eq!(q.var("A"), a);
        assert_ne!(q.var("B"), a);
        assert_eq!(q.var_name(a), "A");
        assert_eq!(q.find_var("B"), Some(Var(1)));
        assert_eq!(q.find_var("Z"), None);
    }

    #[test]
    fn q0_structure() {
        let q = q0();
        assert_eq!(q.atoms().len(), 9);
        assert_eq!(q.free().len(), 3);
        assert_eq!(q.existential().len(), 6);
        assert_eq!(q.max_arity(), 3);
        assert!(!q.is_simple()); // st and rr repeat
        assert_eq!(q.size(), 3 + 8 * 2);
    }

    #[test]
    fn q0_hypergraph_matches_figure_1a() {
        let h = q0().hypergraph();
        assert_eq!(h.num_edges(), 9);
        assert_eq!(h.num_nodes(), 9);
        assert!(h.covers_set(&[0, 1, 8].into())); // {A,B,I}
        assert!(!h.covers_set(&[1, 2].into())); // B,C not directly linked
    }

    #[test]
    fn requantify() {
        let q = q0();
        let d = q.find_var("D").unwrap();
        let mut bigger: Vec<Var> = q.free().into_iter().collect();
        bigger.push(d);
        let q2 = q.requantify(bigger);
        assert_eq!(q2.free().len(), 4);
        assert_eq!(q2.atoms(), q.atoms());
    }

    #[test]
    fn to_simple_renames_everything() {
        let s = q0().to_simple();
        assert!(s.is_simple());
        assert_eq!(s.atoms().len(), 9);
        assert!(s.atoms()[4].rel.starts_with("st#"));
    }

    #[test]
    fn free_ignores_vanished_vars() {
        let mut q = ConjunctiveQuery::new();
        let a = q.var("A");
        let b = q.var("B");
        q.add_atom("r", vec![Term::Var(a)]);
        q.set_free([a, b]);
        // B occurs in no atom: it is declared free but not "free()" per
        // vars(Q) ∩ free.
        assert_eq!(q.free().len(), 1);
        assert_eq!(q.declared_free().len(), 2);
    }

    #[test]
    fn display_roundtrips_visually() {
        let q = q0();
        let s = q.to_string();
        assert!(s.starts_with("ans(A, B, C) :- mw(A, B, I)"));
        assert!(s.ends_with("rr(D, H)."));
    }

    #[test]
    fn atom_vars_dedup_repeated() {
        let mut q = ConjunctiveQuery::new();
        let x = q.var("X");
        q.add_atom(
            "r",
            vec![Term::Var(x), Term::Var(x), Term::Const("c".into())],
        );
        assert_eq!(q.atoms()[0].vars(), vec![x]);
        let h = q.hypergraph();
        assert_eq!(h.num_nodes(), 1);
    }
}
