//! Canonical query fingerprints — the cache key of the serving layer.
//!
//! Two conjunctive queries that differ only by a renaming of variables, a
//! reordering of atoms, or duplicated conjuncts denote the same counting
//! problem, so a plan or a count computed for one is valid for the other.
//! This module computes a **canonical text form** that is invariant under
//! exactly those changes: variables are renumbered by an
//! individualization–refinement search (Weisfeiler–Leman color refinement
//! with branching on tied color classes, the standard graph-canonization
//! scheme), atoms are sorted and deduplicated, and the free set is recorded
//! as canonical indices. The canonical text *determines the query up to
//! variable renaming*, so using it as a cache key can never conflate two
//! inequivalent queries — unlike a bare hash, a collision is impossible.
//!
//! The companion 64-bit digest (stable FNV-1a over the text, independent of
//! process and platform) is what travels in protocol frames and `STATS`
//! output; caches key on the full text.
//!
//! Cost: refinement is polynomial; the branching phase is worst-case
//! exponential in the size of the largest symmetric variable class, so the
//! search is capped at [`LEAF_CAP`] labelings. Queries under the cap (every
//! practical query — the cap allows thousands of labelings) get the exact
//! canonical form; beyond it the search keeps the minimum over the explored
//! prefix, which is still a *sound* cache key (it still determines the
//! query), merely no longer guaranteed invariant under renaming — the
//! failure mode is a spurious cache miss, never a wrong answer.

use crate::{ConjunctiveQuery, Term, Var};
use std::collections::BTreeMap;

/// Branching budget for the individualization search (leaf labelings).
pub const LEAF_CAP: usize = 4096;

/// A canonical fingerprint: the exact canonical text plus a stable digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryFingerprint {
    /// Canonical text form — determines the query up to variable renaming.
    /// Collision-free as a cache key.
    pub text: String,
    /// Stable 64-bit FNV-1a digest of `text` (for wire frames and display).
    pub hash: u64,
}

/// Computes the canonical fingerprint of `q`.
pub fn fingerprint(q: &ConjunctiveQuery) -> QueryFingerprint {
    let text = canonical_text(q);
    let hash = fnv1a(text.as_bytes());
    QueryFingerprint { text, hash }
}

/// Stable FNV-1a (64-bit) — deterministic across processes and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Canonicalizer {
    vars: Vec<Var>,
    free: Vec<bool>,
    /// atoms as (rel, terms), with vars mapped to indices into `vars`
    atoms: Vec<(String, Vec<AtomTerm>)>,
    leaves: usize,
    best: Option<String>,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum AtomTerm {
    Var(usize),
    Const(String),
}

impl Canonicalizer {
    fn new(q: &ConjunctiveQuery) -> Canonicalizer {
        let vars: Vec<Var> = q.vars_in_atoms().into_iter().collect();
        let index_of: BTreeMap<Var, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let free_set = q.free();
        let free = vars.iter().map(|v| free_set.contains(v)).collect();
        // Dedup exact duplicate conjuncts *before* refinement: conjunction
        // is idempotent, and a duplicate would otherwise skew the
        // occurrence multisets that drive the variable colors.
        let atoms: Vec<(String, Vec<AtomTerm>)> = q
            .atoms()
            .iter()
            .map(|a| {
                let terms: Vec<AtomTerm> = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => AtomTerm::Var(index_of[v]),
                        Term::Const(c) => AtomTerm::Const(c.clone()),
                    })
                    .collect();
                (a.rel.clone(), terms)
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        Canonicalizer {
            vars,
            free,
            atoms,
            leaves: 0,
            best: None,
        }
    }

    /// One WL refinement round: each variable's new color hashes its old
    /// color together with the sorted multiset of its occurrence contexts.
    fn refine(&self, colors: &mut Vec<u64>) {
        loop {
            let mut contexts: Vec<Vec<String>> = vec![Vec::new(); self.vars.len()];
            for (rel, terms) in &self.atoms {
                // The shape replaces variables with their current color, so
                // one refinement round propagates structure one hop.
                let shape_txt: String = terms
                    .iter()
                    .map(|t| match t {
                        AtomTerm::Var(i) => format!("#{:x}", colors[*i]),
                        AtomTerm::Const(c) => format!("={c}"),
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                for (pos, t) in terms.iter().enumerate() {
                    if let AtomTerm::Var(i) = t {
                        contexts[*i].push(format!("{rel}@{pos}({shape_txt})"));
                    }
                }
            }
            let new: Vec<u64> = (0..self.vars.len())
                .map(|i| {
                    let mut ctx = contexts[i].clone();
                    ctx.sort_unstable();
                    let mut buf = format!("{:x}|{}|", colors[i], self.free[i]);
                    for c in ctx {
                        buf.push_str(&c);
                        buf.push(';');
                    }
                    fnv1a(buf.as_bytes())
                })
                .collect();
            // Stop when the partition is stable (same equivalence classes).
            let stable = partition_of(colors) == partition_of(&new);
            *colors = new;
            if stable {
                return;
            }
        }
    }

    /// Serializes the query under a complete variable numbering.
    fn serialize(&self, order: &[usize]) -> String {
        // order[i] = canonical index of variable i
        let mut rendered: Vec<String> = self
            .atoms
            .iter()
            .map(|(rel, terms)| {
                let body: Vec<String> = terms
                    .iter()
                    .map(|t| match t {
                        AtomTerm::Var(i) => format!("${}", order[*i]),
                        AtomTerm::Const(c) => format!("={c}"),
                    })
                    .collect();
                format!("{rel}({})", body.join(","))
            })
            .collect();
        rendered.sort_unstable();
        rendered.dedup(); // conjunction is idempotent
        let mut frees: Vec<usize> = (0..self.vars.len())
            .filter(|&i| self.free[i])
            .map(|i| order[i])
            .collect();
        frees.sort_unstable();
        format!(
            "free{{{}}}|{}",
            frees
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
            rendered.join("&")
        )
    }

    /// Individualization–refinement search for the minimal serialization.
    /// `fixed[i] = Some(idx)` once variable i has a canonical index.
    fn search(&mut self, colors: Vec<u64>, fixed: Vec<Option<usize>>, depth: usize) {
        if self.leaves >= LEAF_CAP {
            return;
        }
        if depth == self.vars.len() {
            self.leaves += 1;
            let order: Vec<usize> = fixed.iter().map(|f| f.unwrap()).collect();
            let s = self.serialize(&order);
            if self.best.as_ref().is_none_or(|b| s < *b) {
                self.best = Some(s);
            }
            return;
        }
        // Target cell: among unfixed variables, the color class with the
        // smallest (size, color) — an isomorphism-invariant choice.
        let mut classes: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for i in 0..self.vars.len() {
            if fixed[i].is_none() {
                classes.entry(colors[i]).or_default().push(i);
            }
        }
        let (_, members) = classes
            .into_iter()
            .min_by_key(|(color, members)| (members.len(), *color))
            .expect("some variable unfixed");
        if members.len() == 1 {
            // Singleton cell: no branching needed.
            let i = members[0];
            let mut fixed = fixed;
            fixed[i] = Some(depth);
            let mut colors = colors;
            colors[i] = fnv1a(format!("fixed:{depth}").as_bytes());
            self.refine(&mut colors);
            self.search(colors, fixed, depth + 1);
            return;
        }
        for &i in &members {
            let mut fixed = fixed.clone();
            fixed[i] = Some(depth);
            let mut colors = colors.clone();
            colors[i] = fnv1a(format!("fixed:{depth}").as_bytes());
            self.refine(&mut colors);
            self.search(colors, fixed, depth + 1);
            if self.leaves >= LEAF_CAP {
                return;
            }
        }
    }

    fn run(mut self) -> String {
        if self.vars.is_empty() {
            return self.serialize(&[]);
        }
        let mut colors: Vec<u64> = vec![fnv1a(b"init"); self.vars.len()];
        self.refine(&mut colors);
        let fixed = vec![None; self.vars.len()];
        self.search(colors, fixed, 0);
        self.best.expect("search visited at least one leaf")
    }
}

/// The equivalence-class structure of a coloring (for the stability test).
fn partition_of(colors: &[u64]) -> Vec<Vec<usize>> {
    let mut classes: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, &c) in colors.iter().enumerate() {
        classes.entry(c).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = classes.into_values().collect();
    out.sort_unstable();
    out
}

/// The canonical text form of `q`: invariant under variable renaming, atom
/// reordering and duplicated conjuncts; determines the query up to
/// renaming (so it is collision-free as a cache key).
pub fn canonical_text(q: &ConjunctiveQuery) -> String {
    Canonicalizer::new(q).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn fp(src: &str) -> QueryFingerprint {
        fingerprint(&parse_query(src).unwrap())
    }

    #[test]
    fn renaming_is_invisible() {
        let a = fp("ans(X) :- r(X, Y), s(Y, Z).");
        let b = fp("ans(A) :- r(A, B), s(B, C).");
        assert_eq!(a, b);
    }

    #[test]
    fn atom_order_is_invisible() {
        let a = fp("ans(X) :- r(X, Y), s(Y, Z).");
        let b = fp("ans(X) :- s(Y, Z), r(X, Y).");
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_conjuncts_are_invisible() {
        let a = fp("ans(X) :- r(X, Y).");
        let b = fp("ans(X) :- r(X, Y), r(X, Y).");
        assert_eq!(a, b);
    }

    #[test]
    fn structure_changes_are_visible() {
        let base = fp("ans(X) :- r(X, Y), s(Y, Z).");
        assert_ne!(base, fp("ans(X) :- r(X, Y), s(Y, Z), t(Z)."));
        assert_ne!(base, fp("ans(X) :- r(X, Y)."));
        assert_ne!(base, fp("ans(X, Y) :- r(X, Y), s(Y, Z)."));
        assert_ne!(base, fp("ans(X) :- r(X, Y), s(Y, alice)."));
    }

    #[test]
    fn constants_are_compared_by_name() {
        assert_ne!(fp("ans(X) :- r(X, alice)."), fp("ans(X) :- r(X, bob)."));
        assert_eq!(fp("ans(X) :- r(X, alice)."), fp("ans(Q) :- r(Q, alice)."));
    }

    #[test]
    fn symmetric_variables_canonicalize() {
        // X1/X2 are automorphic: any renaming must agree.
        let a = fp("ans(X1, X2) :- r(Y, X1), r(Y, X2).");
        let b = fp("ans(U2, U1) :- r(W, U2), r(W, U1).");
        assert_eq!(a, b);
    }

    #[test]
    fn triangle_rotations_agree() {
        let a = fp("ans(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).");
        let b = fp("ans(A, B, C) :- e(C, A), e(A, B), e(B, C).");
        assert_eq!(a, b);
    }

    #[test]
    fn free_set_matters() {
        assert_ne!(fp("ans(X) :- r(X, Y)."), fp("ans(Y) :- r(X, Y)."));
    }

    #[test]
    fn empty_and_boolean_queries() {
        let b = fp("ans() :- r(X, Y).");
        assert!(b.text.starts_with("free{}"));
        assert_eq!(b, fp("ans() :- r(U, V)."));
    }

    #[test]
    fn digest_matches_text() {
        let f = fp("ans(X) :- r(X, Y).");
        assert_eq!(f.hash, fnv1a(f.text.as_bytes()));
    }
}
