//! Cores of conjunctive queries.
//!
//! A core is a minimal substructure `Q'` of `Q` admitting a homomorphism
//! `Q → Q'` (Section 2). We provide the exact greedy computation (correct on
//! every input, exponential worst case through the homomorphism test) and
//! the Lemma 4.3 polynomial-time computation, which replaces the
//! NP-hard homomorphism test with a pairwise-consistency check over the
//! width-`k` view set and is correct whenever the cores have generalized
//! hypertree width at most `k`.

use crate::canonical::{atom_bindings, canonical_database};
use crate::hom::has_homomorphism;
use crate::ConjunctiveQuery;
use cqcount_relational::consistency::pairwise_consistency;
use cqcount_relational::Bindings;
use std::collections::BTreeMap;

/// Returns `true` iff the two queries are homomorphically equivalent.
pub fn is_hom_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    has_homomorphism(q1, q2) && has_homomorphism(q2, q1)
}

/// Greedy core computation with a pluggable "is there a homomorphism from
/// `full` into `candidate`" test.
fn core_with<F>(q: &ConjunctiveQuery, mut hom_exists: F) -> ConjunctiveQuery
where
    F: FnMut(&ConjunctiveQuery, &ConjunctiveQuery) -> bool,
{
    let mut current = q.clone();
    loop {
        let n = current.atoms().len();
        let mut shrunk = false;
        for i in 0..n {
            let keep: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            let candidate = current.sub_query(&keep);
            // It suffices to find a homomorphism from the *original* query:
            // every substructure reached this way is homomorphically
            // equivalent to Q, and all cores are isomorphic (Section 2).
            if hom_exists(&current, &candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// The exact core of `q` (greedy atom removal with exact homomorphism
/// tests). To compute the paper's colored core, pass `color(q)`.
pub fn core_exact(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    core_with(q, has_homomorphism)
}

/// Lemma 4.3: core computation in polynomial time via pairwise consistency
/// over the width-`k` view set `V_Q^k`.
///
/// For each candidate sub-query `Q_c` (one atom removed), the homomorphism
/// test `Q → Q_c` is decided by evaluating the views of `V_Q^k` (joins of at
/// most `k` query atoms) over the canonical database of `Q_c` and enforcing
/// pairwise consistency: the answer is "yes" iff no view becomes empty.
///
/// This is *correct* whenever the cores of `q` have generalized hypertree
/// width at most `k` (the promise of Lemma 4.3); outside the promise it may
/// keep atoms a core would drop, never the other way round: the procedure
/// only removes an atom when a homomorphism certainly exists... in fact local
/// consistency can overapproximate, so outside the promise the result may be
/// *smaller* than a genuine equivalent sub-query. Use within the promise.
pub fn core_via_consistency(q: &ConjunctiveQuery, k: usize) -> ConjunctiveQuery {
    core_with(q, |full, candidate| hom_via_consistency(full, candidate, k))
}

/// Decides (under the width-`k` promise) whether a homomorphism
/// `from → to` exists, by local consistency on the view set `V_from^k`
/// evaluated over the canonical database of `to`.
pub fn hom_via_consistency(from: &ConjunctiveQuery, to: &ConjunctiveQuery, k: usize) -> bool {
    let db = canonical_database(to);
    // Per-atom bindings (the query views). An empty atom binding means no
    // homomorphism regardless of consistency.
    let atom_views: Vec<Bindings> = from.atoms().iter().map(|a| atom_bindings(a, &db)).collect();
    if atom_views.iter().any(Bindings::is_empty) {
        return false;
    }
    // Views for every subset of at most k atoms. Generating subsets of size
    // exactly k plus the singletons is equivalent for consistency purposes;
    // we generate all sizes 1..=k for robustness on tiny queries.
    let mut views: Vec<Bindings> = Vec::new();
    let n = atom_views.len();
    let mut stack: Vec<(usize, usize, Bindings)> = vec![(0, 0, Bindings::unit())];
    while let Some((start, size, acc)) = stack.pop() {
        if size > 0 {
            views.push(acc.clone());
        }
        if size == k {
            continue;
        }
        for (i, view) in atom_views.iter().enumerate().take(n).skip(start) {
            let joined = acc.join(view);
            stack.push((i + 1, size + 1, joined));
        }
    }
    pairwise_consistency(&mut views)
}

/// Like [`core_exact`] but also reports the homomorphism-witnessed mapping
/// from removed-atom variables (useful for explaining simplifications).
pub fn core_exact_with_hom(
    q: &ConjunctiveQuery,
) -> (ConjunctiveQuery, BTreeMap<crate::Var, crate::Term>) {
    let core = core_exact(q);
    let hom = crate::hom::find_homomorphism(q, &core, &BTreeMap::new())
        .expect("a query always maps onto its core");
    (core, hom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::color;
    use crate::{Term, Var};

    fn t(v: Var) -> Term {
        Term::Var(v)
    }

    /// Example 1.1 / 3.4: Q0 with free {A,B,C}.
    fn q0() -> ConjunctiveQuery {
        let mut q = ConjunctiveQuery::new();
        let (a, b, c) = (q.var("A"), q.var("B"), q.var("C"));
        let (d, e, f) = (q.var("D"), q.var("E"), q.var("F"));
        let (g, h, i) = (q.var("G"), q.var("H"), q.var("I"));
        q.add_atom("mw", vec![t(a), t(b), t(i)]);
        q.add_atom("wt", vec![t(b), t(d)]);
        q.add_atom("wi", vec![t(b), t(e)]);
        q.add_atom("pt", vec![t(c), t(d)]);
        q.add_atom("st", vec![t(d), t(f)]);
        q.add_atom("st", vec![t(d), t(g)]);
        q.add_atom("rr", vec![t(g), t(h)]);
        q.add_atom("rr", vec![t(f), t(h)]);
        q.add_atom("rr", vec![t(d), t(h)]);
        q.set_free([a, b, c]);
        q
    }

    #[test]
    fn q0_colored_core_drops_g_branch() {
        // Example 3.4: a core of color(Q0) loses {D,G} and {G,H} (or the
        // symmetric {D,F},{F,H} pair); variable G (or F) disappears.
        let core = core_exact(&color(&q0()));
        assert_eq!(core.atoms().len(), 7 + 3); // 7 query atoms + 3 colors
        let vars = core.vars_in_atoms();
        assert_eq!(vars.len(), 8); // one of F/G gone
        assert!(is_hom_equivalent(&core, &color(&q0())));
    }

    #[test]
    fn core_of_core_is_fixed() {
        let c = core_exact(&color(&q0()));
        assert_eq!(core_exact(&c).atoms().len(), c.atoms().len());
    }

    #[test]
    fn biclique_core_collapses_to_single_atom() {
        // Appendix A, Q2^n: conj of r(X_i, Y_j) with all vars existential;
        // the core is a single atom.
        let mut q = ConjunctiveQuery::new();
        let xs: Vec<Var> = (0..3).map(|i| q.var(&format!("X{i}"))).collect();
        let ys: Vec<Var> = (0..3).map(|i| q.var(&format!("Y{i}"))).collect();
        for &x in &xs {
            for &y in &ys {
                q.add_atom("r", vec![t(x), t(y)]);
            }
        }
        q.set_free([]);
        let core = core_exact(&color(&q));
        assert_eq!(core.atoms().len(), 1);
    }

    #[test]
    fn consistency_core_matches_exact_on_small_instances() {
        {
            let q = color(&q0());
            let exact = core_exact(&q);
            let lemma43 = core_via_consistency(&q, 2);
            assert_eq!(exact.atoms().len(), lemma43.atoms().len());
            assert!(is_hom_equivalent(&exact, &lemma43));
        }
    }

    #[test]
    fn hom_via_consistency_agrees_with_exact_on_acyclic() {
        // Acyclic targets keep local consistency complete at k = 1..2.
        let mut path2 = ConjunctiveQuery::new();
        let (a, b, c) = (path2.var("A"), path2.var("B"), path2.var("C"));
        path2.add_atom("r", vec![t(a), t(b)]);
        path2.add_atom("r", vec![t(b), t(c)]);
        let mut path1 = ConjunctiveQuery::new();
        let (x, y) = (path1.var("X"), path1.var("Y"));
        path1.add_atom("r", vec![t(x), t(y)]);
        assert_eq!(
            hom_via_consistency(&path2, &path1, 2),
            has_homomorphism(&path2, &path1)
        );
        assert_eq!(
            hom_via_consistency(&path1, &path2, 2),
            has_homomorphism(&path1, &path2)
        );
    }

    #[test]
    fn chain_example_a2_core() {
        // Example A.2: Q1^n has colored core dropping the Y-chain onto the
        // X-chain except the last Y. For n = 3:
        // atoms r(Xi,Yi) i=1..3, r(Xi,Xi+1) i=1..2, r(Yi,Yi+1) i=1..2.
        let mut q = ConjunctiveQuery::new();
        let xs: Vec<Var> = (1..=3).map(|i| q.var(&format!("X{i}"))).collect();
        let ys: Vec<Var> = (1..=3).map(|i| q.var(&format!("Y{i}"))).collect();
        for i in 0..3 {
            q.add_atom("r", vec![t(xs[i]), t(ys[i])]);
        }
        for i in 0..2 {
            q.add_atom("r", vec![t(xs[i]), t(xs[i + 1])]);
            q.add_atom("r", vec![t(ys[i]), t(ys[i + 1])]);
        }
        q.set_free(xs.clone());
        let core = core_exact(&color(&q));
        // Paper: core keeps r(Xn,Yn), the X-chain and the colors; Y1..Yn-1
        // vanish (Yi -> Xi+1).
        let core_vars = core.vars_in_atoms();
        assert!(core_vars.contains(&ys[2]));
        assert!(!core_vars.contains(&ys[0]));
        assert!(!core_vars.contains(&ys[1]));
        // 3 colors + X-chain (2) + r(X3,Y3) = 6 atoms
        assert_eq!(core.atoms().len(), 6);
    }

    #[test]
    fn cores_preserve_free_variables() {
        let q = q0();
        let core = core_exact(&color(&q));
        assert_eq!(core.free(), q.free());
    }
}
