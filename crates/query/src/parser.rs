//! A datalog-style text format for queries and databases.
//!
//! ```text
//! % facts: all-lowercase (or numeric) arguments
//! mw(m1, w1, 40).
//! wt(w1, t7).
//!
//! % the query: head lists the free variables; identifiers starting with an
//! % uppercase letter (or underscore) are variables
//! ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D).
//! ```
//!
//! `%` and `#` start line comments. A program may contain any number of
//! facts and at most one rule. Constants in rule bodies are allowed.

use crate::{ConjunctiveQuery, Term};
use cqcount_relational::Database;
use std::fmt;

/// A parse error with 1-based line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl std::str::FromStr for ParseError {
    type Err = String;

    /// Parses the exact [`fmt::Display`] form back into a typed error, so a
    /// server can ship parse errors verbatim in error frames and clients
    /// can recover the structured location.
    fn from_str(s: &str) -> Result<ParseError, String> {
        let rest = s
            .strip_prefix("parse error at ")
            .ok_or_else(|| format!("not a parse error rendering: {s:?}"))?;
        let (loc, message) = rest
            .split_once(": ")
            .ok_or_else(|| format!("missing ': ' separator in {s:?}"))?;
        let (line, col) = loc
            .split_once(':')
            .ok_or_else(|| format!("missing line:col in {s:?}"))?;
        Ok(ParseError {
            message: message.to_owned(),
            line: line.parse().map_err(|e| format!("bad line: {e}"))?,
            col: col.parse().map_err(|e| format!("bad column: {e}"))?,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile, // :-
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') | Some(b'#') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize, usize)>, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Token::LParen
            }
            b')' => {
                self.bump();
                Token::RParen
            }
            b',' => {
                self.bump();
                Token::Comma
            }
            b'.' => {
                self.bump();
                Token::Dot
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Token::Turnstile
                } else {
                    return Err(self.error("expected '-' after ':'"));
                }
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.bump();
                }
                Token::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            other => {
                return Err(self.error(format!("unexpected character {:?}", other as char)));
            }
        };
        Ok(Some((tok, line, col)))
    }
}

fn is_variable_name(name: &str) -> bool {
    name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
}

struct Parser {
    tokens: Vec<(Token, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or((1, 1), |&(_, l, c)| (l, c));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(self.error_at(format!("expected {want:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error_at(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses `name(arg, ..., arg)`, returning the name and raw arg names.
    fn atom(&mut self) -> Result<(String, Vec<String>), ParseError> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.ident()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error_at(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
        } else {
            self.next();
        }
        Ok((name, args))
    }
}

/// Parses a full program: any number of facts and at most one rule.
pub fn parse_program(src: &str) -> Result<(Option<ConjunctiveQuery>, Database), ParseError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token()? {
        tokens.push(t);
    }
    let mut p = Parser { tokens, pos: 0 };

    let mut db = Database::new();
    let mut query: Option<ConjunctiveQuery> = None;

    while p.peek().is_some() {
        let (head_name, head_args) = p.atom()?;
        match p.peek() {
            Some(Token::Dot) => {
                p.next();
                // A fact: all arguments must be constants.
                if let Some(bad) = head_args.iter().find(|a| is_variable_name(a)) {
                    return Err(p.error_at(format!(
                        "facts must be ground, found variable {bad:?} in {head_name}"
                    )));
                }
                let refs: Vec<&str> = head_args.iter().map(String::as_str).collect();
                db.add_fact(&head_name, &refs);
            }
            Some(Token::Turnstile) => {
                p.next();
                if query.is_some() {
                    return Err(p.error_at("a program may contain at most one rule"));
                }
                let mut q = ConjunctiveQuery::new();
                let mut free = Vec::new();
                for a in &head_args {
                    if !is_variable_name(a) {
                        return Err(p.error_at(format!("head argument {a:?} must be a variable")));
                    }
                    free.push(q.var(a));
                }
                // Body atoms.
                loop {
                    let (rel, args) = p.atom()?;
                    let terms = args
                        .iter()
                        .map(|a| {
                            if is_variable_name(a) {
                                Term::Var(q.var(a))
                            } else {
                                Term::Const(a.clone())
                            }
                        })
                        .collect();
                    q.add_atom(&rel, terms);
                    match p.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::Dot) => break,
                        other => {
                            return Err(p.error_at(format!("expected ',' or '.', found {other:?}")))
                        }
                    }
                }
                for v in &free {
                    if !q.vars_in_atoms().contains(v) {
                        return Err(p.error_at(format!(
                            "head variable {:?} does not occur in the body",
                            q.var_name(*v)
                        )));
                    }
                }
                q.set_free(free);
                query = Some(q);
            }
            other => return Err(p.error_at(format!("expected '.' or ':-', found {other:?}"))),
        }
    }

    Ok((query, db))
}

/// Parses a single rule.
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let (q, _) = parse_program(src)?;
    q.ok_or(ParseError {
        message: "no rule found".into(),
        line: 1,
        col: 1,
    })
}

/// Parses facts only.
pub fn parse_database(src: &str) -> Result<Database, ParseError> {
    let (q, db) = parse_program(src)?;
    if q.is_some() {
        return Err(ParseError {
            message: "unexpected rule in database input".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_q0() {
        let q = parse_query(
            "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 9);
        assert_eq!(q.free().len(), 3);
        assert_eq!(q.existential().len(), 6);
    }

    #[test]
    fn parse_program_with_facts_and_rule() {
        let src = "
            % the data
            edge(a, b).
            edge(b, c).
            # another comment style
            ans(X) :- edge(X, Y), edge(Y, Z).
        ";
        let (q, db) = parse_program(src).unwrap();
        let q = q.unwrap();
        assert_eq!(db.relation("edge").unwrap().len(), 2);
        assert_eq!(q.free().len(), 1);
        assert_eq!(q.atoms().len(), 2);
    }

    #[test]
    fn constants_in_body() {
        let q = parse_query("ans(X) :- r(X, alice), s(X, 42).").unwrap();
        assert!(matches!(&q.atoms()[0].terms[1], Term::Const(c) if c == "alice"));
        assert!(matches!(&q.atoms()[1].terms[1], Term::Const(c) if c == "42"));
    }

    #[test]
    fn underscore_prefix_is_variable() {
        let q = parse_query("ans(X) :- r(X, _tmp).").unwrap();
        assert_eq!(q.vars_in_atoms().len(), 2);
    }

    #[test]
    fn zero_arity_atoms() {
        let q = parse_query("ans(X) :- r(X), marker().").unwrap();
        assert_eq!(q.atoms()[1].terms.len(), 0);
    }

    #[test]
    fn errors() {
        // variable in fact
        assert!(parse_database("edge(X, b).").is_err());
        // head var missing from body
        assert!(parse_query("ans(Z) :- r(X, Y).").is_err());
        // constant in head
        assert!(parse_query("ans(a) :- r(a, X).").is_err());
        // two rules
        assert!(parse_program("a(X) :- r(X). b(Y) :- r(Y).").is_err());
        // garbage
        assert!(parse_program("r(a) :- ").is_err());
        assert!(parse_program("?!").is_err());
        // lone ':'
        assert!(parse_program("a(X) : r(X).").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_database("edge(a, b).\nedge(X, c).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("ground"));
    }

    #[test]
    fn parse_error_display_roundtrips() {
        let err = parse_database("edge(a, b).\nedge(X, c).").unwrap_err();
        let back: ParseError = err.to_string().parse().unwrap();
        assert_eq!(back, err);
        // non-error strings are rejected
        assert!("something else".parse::<ParseError>().is_err());
        assert!("parse error at nowhere".parse::<ParseError>().is_err());
    }

    #[test]
    fn roundtrip_via_display() {
        let q = parse_query("ans(A) :- r(A, B), s(B, c0).").unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q.atoms(), q2.atoms());
        assert_eq!(q.free(), q2.free());
    }
}
