//! Positional relations: sets of tuples of a fixed arity.

use crate::fxhash::FxHashSet;
use crate::fxhash::FxHasher;
use crate::{Tuple, Value};
use std::hash::Hasher;

/// Sentinel for an unoccupied slot in the open-addressed index.
const EMPTY: u32 = u32::MAX;

/// A relation instance `r^D ⊆ D^ρ` (Section 2): a *set* of tuples of a fixed
/// arity. Insertion deduplicates; iteration order is insertion order of the
/// first occurrence, which keeps generated workloads deterministic.
///
/// Deduplication uses an open-addressed table of `u32` offsets into
/// `tuples` (linear probing, power-of-two capacity, ≤ 7/8 load) instead of
/// a second hash set of cloned tuples: the index costs 4 bytes per slot —
/// under 10 bytes per tuple at steady state — where the old clone-based
/// set paid the full boxed tuple again (16-byte header + data + bucket
/// overhead), roughly halving the memory of a loaded [`Relation`].
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    slots: Vec<u32>,
}

fn hash_tuple(t: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in t {
        h.write_u32(v.0);
    }
    h.finish()
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Builds a relation from rows (arity taken from the first row).
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<I>(rows: I) -> Relation
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut it = rows.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut r = Relation::new(arity);
        for row in it {
            r.insert(row);
        }
        r
    }

    /// The arity `ρ`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The slot where `tuple` lives, or the empty slot where it would be
    /// inserted. Requires a non-empty table.
    fn probe(&self, tuple: &[Value]) -> usize {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = hash_tuple(tuple) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY || *self.tuples[s as usize] == *tuple {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Grows the slot table (or builds it for the first insert) and
    /// re-indexes every stored tuple.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(8);
        self.slots = vec![EMPTY; cap];
        let mask = cap - 1;
        for (n, t) in self.tuples.iter().enumerate() {
            let mut i = hash_tuple(t) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = n as u32;
        }
    }

    /// Inserts a tuple; returns `true` if it was new. Panics on arity
    /// mismatch.
    pub fn insert(&mut self, tuple: Vec<Value>) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch");
        if (self.tuples.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let i = self.probe(&tuple);
        if self.slots[i] != EMPTY {
            return false;
        }
        self.slots[i] = self.tuples.len() as u32;
        self.tuples.push(tuple.into_boxed_slice());
        true
    }

    /// Removes a tuple; returns `true` if it was present. Panics on arity
    /// mismatch.
    ///
    /// The last tuple is swapped into the vacated position (so `rows()`
    /// order is *not* stable across deletion) and the index is patched in
    /// place: the moved tuple's slot is repointed, and the vacated slot is
    /// closed with backward-shift deletion so linear-probe chains stay
    /// unbroken without tombstones. The slot table never shrinks; the load
    /// check in [`insert`](Relation::insert) is driven by the live tuple
    /// count, so a delete-heavy relation simply runs under-loaded.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch");
        if self.slots.is_empty() {
            return false;
        }
        let slot = self.probe(tuple);
        let idx = self.slots[slot];
        if idx == EMPTY {
            return false;
        }
        let idx = idx as usize;
        let mask = self.slots.len() - 1;
        self.tuples.swap_remove(idx);
        let old_last = self.tuples.len() as u32;
        if idx < self.tuples.len() {
            // The old last tuple now lives at `idx`; walk its probe chain
            // for the slot still holding the stale end-of-vector offset.
            // (`probe` cannot be used here: the stale offset is out of
            // bounds for the shrunken tuple vector.)
            let mut i = hash_tuple(&self.tuples[idx]) as usize & mask;
            while self.slots[i] != old_last {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
        }
        // Backward-shift deletion: pull every displaced successor in the
        // chain back over the hole so future probes never stop early.
        let mut hole = slot;
        let mut i = slot;
        loop {
            i = (i + 1) & mask;
            let s = self.slots[i];
            if s == EMPTY {
                break;
            }
            let ideal = hash_tuple(&self.tuples[s as usize]) as usize & mask;
            if (i.wrapping_sub(ideal) & mask) >= (i.wrapping_sub(hole) & mask) {
                self.slots[hole] = s;
                hole = i;
            }
        }
        self.slots[hole] = EMPTY;
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        self.slots[self.probe(tuple)] != EMPTY
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Heap bytes spent on the dedup index (diagnostics; see the memory
    /// test below).
    pub fn index_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a contiguous slice (insertion order) — what the
    /// chunked parallel scans in `Bindings::from_atom` iterate over.
    pub fn rows(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The set of values occurring anywhere in the relation (its active
    /// domain contribution).
    pub fn active_domain(&self) -> FxHashSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// Intersection with another relation of the same arity.
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        let mut out = Relation::new(self.arity);
        for t in &self.tuples {
            if other.contains(t) {
                out.insert(t.to_vec());
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.tuples.len() == other.tuples.len()
            && self.tuples.iter().all(|t| other.contains(t))
    }
}
impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Value {
        Value(id)
    }

    #[test]
    fn insert_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v(1), v(2)]));
        assert!(!r.insert(vec![v(1), v(2)]));
        assert!(r.insert(vec![v(2), v(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(!r.contains(&[v(3), v(3)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(vec![v(1)]);
    }

    #[test]
    fn from_rows() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(1), v(2)], vec![v(3), v(4)]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(1)]]);
        assert_eq!(a, b);
        let c = Relation::from_rows(vec![vec![v(2)], vec![v(4)]]);
        assert_ne!(a, c);
        assert_ne!(a, Relation::from_rows(vec![vec![v(1)]]));
    }

    #[test]
    fn intersect() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)], vec![v(3)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(3)], vec![v(4)]]);
        let i = a.intersect(&b);
        assert_eq!(i.len(), 2);
        assert!(i.contains(&[v(2)]) && i.contains(&[v(3)]));
    }

    #[test]
    fn active_domain() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(2), v(3)]]);
        let dom = r.active_domain();
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn dedup_survives_growth_and_collisions() {
        // Enough inserts (with duplicates interleaved) to force several
        // table growths and long probe chains.
        let mut r = Relation::new(2);
        for round in 0..3u32 {
            for i in 0..5_000u32 {
                let fresh = r.insert(vec![v(i), v(i.wrapping_mul(2654435761))]);
                assert_eq!(fresh, round == 0, "i = {i}, round = {round}");
            }
        }
        assert_eq!(r.len(), 5_000);
        for i in 0..5_000u32 {
            assert!(r.contains(&[v(i), v(i.wrapping_mul(2654435761))]));
        }
        assert!(!r.contains(&[v(0), v(1)]));
    }

    #[test]
    fn index_memory_is_a_fraction_of_the_tuples() {
        // The point of the offset index: 4 bytes per slot, at most 2×
        // over-provisioned (power-of-two growth at 7/8 load), so ≤ ~9.4
        // bytes per tuple. The clone-based FxHashSet<Tuple> it replaced
        // paid ≥ 24 bytes per tuple (16-byte Box header + 8 bytes of
        // values for arity 2) before bucket overhead.
        let r = Relation::from_rows((0..10_000u32).map(|i| vec![v(i), v(i + 1)]));
        let tuple_payload = r.len() * (16 + 2 * std::mem::size_of::<Value>());
        assert!(r.index_bytes() <= r.len() * 10, "{} bytes", r.index_bytes());
        assert!(
            r.index_bytes() * 2 < tuple_payload,
            "index {} vs old clone set ≥ {}",
            r.index_bytes(),
            tuple_payload
        );
    }

    #[test]
    fn remove_basics() {
        let mut r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(3), v(4)], vec![v(5), v(6)]]);
        assert!(!r.remove(&[v(9), v(9)]));
        assert!(r.remove(&[v(3), v(4)]));
        assert!(!r.remove(&[v(3), v(4)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(r.contains(&[v(5), v(6)]));
        assert!(!r.contains(&[v(3), v(4)]));
        // Removing from an empty/unindexed relation is a no-op.
        let mut e = Relation::new(1);
        assert!(!e.remove(&[v(1)]));
    }

    #[test]
    fn remove_last_and_reinsert() {
        let mut r = Relation::from_rows(vec![vec![v(1)], vec![v(2)]]);
        assert!(r.remove(&[v(2)])); // last index: no swap fixup needed
        assert_eq!(r.len(), 1);
        assert!(r.insert(vec![v(2)]));
        assert!(!r.insert(vec![v(2)]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn remove_matches_reference_model_under_churn() {
        // Interleaved insert/remove stress against a BTreeSet reference,
        // with keys dense enough to force collisions and growth.
        let mut r = Relation::new(2);
        let mut model = std::collections::BTreeSet::new();
        let mut x: u32 = 0x243F_6A88;
        for step in 0..20_000u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let a = v(x >> 24);
            let b = v((x >> 16) & 0xFF);
            let t = vec![a, b];
            if step % 3 == 0 && !model.is_empty() {
                // Remove an existing tuple about a third of the time.
                let pick = *model.iter().nth(x as usize % model.len()).unwrap();
                let pick_t = vec![v(pick / 1000), v(pick % 1000)];
                assert!(r.remove(&pick_t), "step {step}");
                model.remove(&pick);
            } else {
                let key = a.0 * 1000 + b.0;
                assert_eq!(r.insert(t), model.insert(key), "step {step}");
            }
            if step % 977 == 0 {
                assert_eq!(r.len(), model.len(), "step {step}");
            }
        }
        assert_eq!(r.len(), model.len());
        for key in &model {
            assert!(r.contains(&[v(key / 1000), v(key % 1000)]));
        }
        // Everything removed: the relation drains to empty and dedup
        // still works afterwards.
        for key in model {
            assert!(r.remove(&[v(key / 1000), v(key % 1000)]));
        }
        assert!(r.is_empty());
        assert!(r.insert(vec![v(1), v(2)]));
        assert!(!r.insert(vec![v(1), v(2)]));
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(!r.contains(&[]));
        assert!(r.insert(vec![]));
        assert!(!r.insert(vec![]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }
}
