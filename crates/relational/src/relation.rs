//! Positional relations: sets of tuples of a fixed arity.

use crate::fxhash::FxHashSet;
use crate::{Tuple, Value};

/// A relation instance `r^D ⊆ D^ρ` (Section 2): a *set* of tuples of a fixed
/// arity. Insertion deduplicates; iteration order is insertion order of the
/// first occurrence, which keeps generated workloads deterministic.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    index: FxHashSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            index: FxHashSet::default(),
        }
    }

    /// Builds a relation from rows (arity taken from the first row).
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<I>(rows: I) -> Relation
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut it = rows.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut r = Relation::new(arity);
        for row in it {
            r.insert(row);
        }
        r
    }

    /// The arity `ρ`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns `true` if it was new. Panics on arity
    /// mismatch.
    pub fn insert(&mut self, tuple: Vec<Value>) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch");
        let t: Tuple = tuple.into_boxed_slice();
        if self.index.insert(t.clone()) {
            self.tuples.push(t);
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.index.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a contiguous slice (insertion order) — what the
    /// chunked parallel scans in `Bindings::from_atom` iterate over.
    pub fn rows(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The set of values occurring anywhere in the relation (its active
    /// domain contribution).
    pub fn active_domain(&self) -> FxHashSet<Value> {
        self.tuples.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// Intersection with another relation of the same arity.
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        let mut out = Relation::new(self.arity);
        for t in &self.tuples {
            if other.contains(t) {
                out.insert(t.to_vec());
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.index == other.index
    }
}
impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Value {
        Value(id)
    }

    #[test]
    fn insert_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v(1), v(2)]));
        assert!(!r.insert(vec![v(1), v(2)]));
        assert!(r.insert(vec![v(2), v(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(!r.contains(&[v(3), v(3)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(vec![v(1)]);
    }

    #[test]
    fn from_rows() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(1), v(2)], vec![v(3), v(4)]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(1)]]);
        assert_eq!(a, b);
    }

    #[test]
    fn intersect() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)], vec![v(3)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(3)], vec![v(4)]]);
        let i = a.intersect(&b);
        assert_eq!(i.len(), 2);
        assert!(i.contains(&[v(2)]) && i.contains(&[v(3)]));
    }

    #[test]
    fn active_domain() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(2), v(3)]]);
        let dom = r.active_domain();
        assert_eq!(dom.len(), 3);
    }
}
