//! Positional relations: sets of tuples of a fixed arity.

use crate::fxhash::FxHashSet;
use crate::fxhash::FxHasher;
use crate::store::FrozenPage;
use crate::Value;
use std::hash::Hasher;

/// Sentinel for an unoccupied slot in the open-addressed index.
pub(crate) const EMPTY: u32 = u32::MAX;

/// A relation instance `r^D ⊆ D^ρ` (Section 2): a *set* of tuples of a fixed
/// arity, stored row-major in one flat value array.
///
/// A relation is backed either by heap vectors (live, mutable — the only
/// form mutations ever see) or by a *frozen* store page borrowed from an
/// mmap'd snapshot region ([`crate::store`]). Both backings expose the same
/// borrowed-slice row view ([`Relation::row`] / [`Relation::values`]), so
/// the algebra kernels run directly over mapped bytes with no copy. The
/// first `insert`/`remove` on a frozen relation thaws it to heap form;
/// cloning a frozen relation just bumps the region refcount, which is how
/// consecutive epochs share unchanged pages copy-on-write.
///
/// Heap iteration order is insertion order of the first occurrence (keeps
/// generated workloads deterministic); frozen pages iterate in ascending
/// lexicographic row order (the store sorts on freeze — that order is what
/// makes a page double as a trie for the wcoj kernel).
///
/// Deduplication uses an open-addressed table of `u32` offsets into the
/// row array (linear probing, power-of-two capacity, ≤ 7/8 load) instead
/// of a second hash set of cloned tuples: the index costs 4 bytes per slot
/// — under 10 bytes per tuple at steady state. The exact same table layout
/// is persisted in store pages (the hash is position-independent and
/// deterministic), so a mapped relation probes with zero rebuild cost.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    /// Number of tuples. Explicit because `values.len() / arity` is
    /// undefined at arity 0, and zero-arity relations are real (boolean
    /// queries).
    len: usize,
    backing: Backing,
}

#[derive(Clone, Debug)]
enum Backing {
    Heap {
        /// Row-major values, `len * arity` long.
        values: Vec<Value>,
        slots: Vec<u32>,
    },
    Frozen(FrozenPage),
}

impl Default for Relation {
    fn default() -> Relation {
        Relation::new(0)
    }
}

pub(crate) fn hash_tuple(t: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in t {
        h.write_u32(v.0);
    }
    h.finish()
}

/// The slot where `tuple` lives, or the empty slot where it would be
/// inserted. Requires a non-empty table.
fn probe(values: &[Value], arity: usize, slots: &[u32], tuple: &[Value]) -> usize {
    debug_assert!(!slots.is_empty());
    let mask = slots.len() - 1;
    let mut i = hash_tuple(tuple) as usize & mask;
    loop {
        let s = slots[i];
        if s == EMPTY || &values[s as usize * arity..(s as usize + 1) * arity] == tuple {
            return i;
        }
        i = (i + 1) & mask;
    }
}

/// Builds the open-addressed index over `len` (deduplicated) rows fetched
/// through `row`. Shared by the heap growth path and the store writer, so
/// a persisted index is bit-identical to a freshly grown one.
pub(crate) fn build_slot_index<'a>(row: impl Fn(usize) -> &'a [Value], len: usize) -> Vec<u32> {
    if len == 0 {
        return Vec::new();
    }
    let mut cap = 8usize;
    while len * 8 > cap * 7 {
        cap *= 2;
    }
    let mut slots = vec![EMPTY; cap];
    let mask = cap - 1;
    for n in 0..len {
        let mut i = hash_tuple(row(n)) as usize & mask;
        while slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = n as u32;
    }
    slots
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            len: 0,
            backing: Backing::Heap {
                values: Vec::new(),
                slots: Vec::new(),
            },
        }
    }

    /// Builds a relation from rows (arity taken from the first row).
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<I>(rows: I) -> Relation
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut it = rows.into_iter().peekable();
        let arity = it.peek().map_or(0, Vec::len);
        let mut r = Relation::new(arity);
        for row in it {
            r.insert(row);
        }
        r
    }

    /// Wraps a validated store page (see [`crate::store`]).
    pub(crate) fn from_frozen(page: FrozenPage) -> Relation {
        Relation {
            arity: page.arity(),
            len: page.len(),
            backing: Backing::Frozen(page),
        }
    }

    /// The arity `ρ`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The flat row-major value array (`len() * arity()` values). For a
    /// frozen relation this is a window into the mapped region.
    pub fn values(&self) -> &[Value] {
        match &self.backing {
            Backing::Heap { values, .. } => values,
            Backing::Frozen(page) => page.values(),
        }
    }

    fn slots(&self) -> &[u32] {
        match &self.backing {
            Backing::Heap { slots, .. } => slots,
            Backing::Frozen(page) => page.slots(),
        }
    }

    /// Row `i` as a borrowed slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        debug_assert!(i < self.len);
        &self.values()[i * self.arity..(i + 1) * self.arity]
    }

    /// `true` iff this relation is a borrowed store page (no heap tuples).
    pub fn is_frozen(&self) -> bool {
        matches!(self.backing, Backing::Frozen(_))
    }

    /// The rows in ascending lexicographic order, if this backing stores
    /// them that way (frozen pages always do). The wcoj trie cursor and
    /// the store writer's copy-through path rely on this.
    pub fn sorted_values(&self) -> Option<&[Value]> {
        match &self.backing {
            Backing::Frozen(page) => Some(page.values()),
            Backing::Heap { .. } => None,
        }
    }

    /// Bytes of this relation owned by the process allocator: heap
    /// vectors, or the page span when a frozen page sits in the
    /// read-into-heap fallback region.
    pub fn resident_bytes(&self) -> usize {
        match &self.backing {
            Backing::Heap { values, slots } => {
                values.capacity() * std::mem::size_of::<Value>()
                    + slots.capacity() * std::mem::size_of::<u32>()
            }
            Backing::Frozen(page) if !page.is_mapped() => page.page_bytes(),
            Backing::Frozen(_) => 0,
        }
    }

    /// Bytes this relation borrows from an actual `mmap` region (shared
    /// page cache, evictable) — the complement of [`resident_bytes`](Relation::resident_bytes).
    pub fn mapped_bytes(&self) -> usize {
        match &self.backing {
            Backing::Frozen(page) if page.is_mapped() => page.page_bytes(),
            _ => 0,
        }
    }

    /// Copies a frozen page into heap form so it can be mutated. No-op on
    /// heap backings. The persisted index is copied verbatim: it is the
    /// same table the heap path would have built.
    fn thaw(&mut self) {
        if let Backing::Frozen(page) = &self.backing {
            self.backing = Backing::Heap {
                values: page.values().to_vec(),
                slots: page.slots().to_vec(),
            };
        }
    }

    /// Grows the slot table (or builds it for the first insert) and
    /// re-indexes every stored tuple. Heap backing only.
    fn grow(values: &[Value], arity: usize, len: usize, slots: &mut Vec<u32>) {
        let cap = (slots.len() * 2).max(8);
        *slots = vec![EMPTY; cap];
        let mask = cap - 1;
        for n in 0..len {
            let mut i = hash_tuple(&values[n * arity..(n + 1) * arity]) as usize & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = n as u32;
        }
    }

    /// Inserts a tuple; returns `true` if it was new. Panics on arity
    /// mismatch. Thaws a frozen backing first.
    pub fn insert(&mut self, tuple: Vec<Value>) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch");
        self.thaw();
        let arity = self.arity;
        let len = self.len;
        let Backing::Heap { values, slots } = &mut self.backing else {
            unreachable!("thawed above");
        };
        if (len + 1) * 8 > slots.len() * 7 {
            Relation::grow(values, arity, len, slots);
        }
        let i = probe(values, arity, slots, &tuple);
        if slots[i] != EMPTY {
            return false;
        }
        slots[i] = len as u32;
        values.extend_from_slice(&tuple);
        self.len += 1;
        true
    }

    /// Removes a tuple; returns `true` if it was present. Panics on arity
    /// mismatch. Thaws a frozen backing first.
    ///
    /// The last tuple is swapped into the vacated position (so row order
    /// is *not* stable across deletion) and the index is patched in
    /// place: the moved tuple's slot is repointed, and the vacated slot is
    /// closed with backward-shift deletion so linear-probe chains stay
    /// unbroken without tombstones. The slot table never shrinks; the load
    /// check in [`insert`](Relation::insert) is driven by the live tuple
    /// count, so a delete-heavy relation simply runs under-loaded.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        assert_eq!(tuple.len(), self.arity, "arity mismatch");
        if self.len == 0 {
            return false;
        }
        self.thaw();
        let arity = self.arity;
        let len = self.len;
        let Backing::Heap { values, slots } = &mut self.backing else {
            unreachable!("thawed above");
        };
        if slots.is_empty() {
            return false;
        }
        let slot = probe(values, arity, slots, tuple);
        let idx = slots[slot];
        if idx == EMPTY {
            return false;
        }
        let idx = idx as usize;
        let mask = slots.len() - 1;
        let last = len - 1;
        // Swap-remove the flat row.
        if idx != last {
            let (head, tail) = values.split_at_mut(last * arity);
            head[idx * arity..(idx + 1) * arity].copy_from_slice(&tail[..arity]);
            // The old last tuple now lives at `idx`; walk its probe chain
            // for the slot still holding the stale end-of-vector offset.
            let mut i = hash_tuple(&head[idx * arity..(idx + 1) * arity]) as usize & mask;
            while slots[i] != last as u32 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32;
        }
        values.truncate(last * arity);
        self.len = last;
        // Backward-shift deletion: pull every displaced successor in the
        // chain back over the hole so future probes never stop early.
        let mut hole = slot;
        let mut i = slot;
        loop {
            i = (i + 1) & mask;
            let s = slots[i];
            if s == EMPTY {
                break;
            }
            let ideal =
                hash_tuple(&values[s as usize * arity..(s as usize + 1) * arity]) as usize & mask;
            if (i.wrapping_sub(ideal) & mask) >= (i.wrapping_sub(hole) & mask) {
                slots[hole] = s;
                hole = i;
            }
        }
        slots[hole] = EMPTY;
        true
    }

    /// Membership test (works on both backings without thawing).
    pub fn contains(&self, tuple: &[Value]) -> bool {
        let slots = self.slots();
        if slots.is_empty() {
            return false;
        }
        slots[probe(self.values(), self.arity, slots, tuple)] != EMPTY
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes spent on the dedup index (diagnostics; see the memory test
    /// below).
    pub fn index_bytes(&self) -> usize {
        std::mem::size_of_val(self.slots())
    }

    /// Iterates over the tuples as borrowed row slices.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        let values = self.values();
        let arity = self.arity;
        (0..self.len).map(move |i| &values[i * arity..(i + 1) * arity])
    }

    /// The set of values occurring anywhere in the relation (its active
    /// domain contribution).
    pub fn active_domain(&self) -> FxHashSet<Value> {
        self.values().iter().copied().collect()
    }

    /// Intersection with another relation of the same arity.
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if other.contains(t) {
                out.insert(t.to_vec());
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.len == other.len && self.iter().all(|t| other.contains(t))
    }
}
impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store;
    use crate::Database;

    fn v(id: u32) -> Value {
        Value(id)
    }

    #[test]
    fn insert_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v(1), v(2)]));
        assert!(!r.insert(vec![v(1), v(2)]));
        assert!(r.insert(vec![v(2), v(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(!r.contains(&[v(3), v(3)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(vec![v(1)]);
    }

    #[test]
    fn from_rows() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(1), v(2)], vec![v(3), v(4)]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(1)]]);
        assert_eq!(a, b);
        let c = Relation::from_rows(vec![vec![v(2)], vec![v(4)]]);
        assert_ne!(a, c);
        assert_ne!(a, Relation::from_rows(vec![vec![v(1)]]));
    }

    #[test]
    fn intersect() {
        let a = Relation::from_rows(vec![vec![v(1)], vec![v(2)], vec![v(3)]]);
        let b = Relation::from_rows(vec![vec![v(2)], vec![v(3)], vec![v(4)]]);
        let i = a.intersect(&b);
        assert_eq!(i.len(), 2);
        assert!(i.contains(&[v(2)]) && i.contains(&[v(3)]));
    }

    #[test]
    fn active_domain() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(2), v(3)]]);
        let dom = r.active_domain();
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn dedup_survives_growth_and_collisions() {
        // Enough inserts (with duplicates interleaved) to force several
        // table growths and long probe chains.
        let mut r = Relation::new(2);
        for round in 0..3u32 {
            for i in 0..5_000u32 {
                let fresh = r.insert(vec![v(i), v(i.wrapping_mul(2654435761))]);
                assert_eq!(fresh, round == 0, "i = {i}, round = {round}");
            }
        }
        assert_eq!(r.len(), 5_000);
        for i in 0..5_000u32 {
            assert!(r.contains(&[v(i), v(i.wrapping_mul(2654435761))]));
        }
        assert!(!r.contains(&[v(0), v(1)]));
    }

    #[test]
    fn index_memory_is_a_fraction_of_the_tuples() {
        // The point of the offset index: 4 bytes per slot, at most 2×
        // over-provisioned (power-of-two growth at 7/8 load), so ≤ ~9.4
        // bytes per tuple. The clone-based FxHashSet<Tuple> it replaced
        // paid ≥ 24 bytes per tuple (16-byte Box header + 8 bytes of
        // values for arity 2) before bucket overhead.
        let r = Relation::from_rows((0..10_000u32).map(|i| vec![v(i), v(i + 1)]));
        let tuple_payload = r.len() * (16 + 2 * std::mem::size_of::<Value>());
        assert!(r.index_bytes() <= r.len() * 10, "{} bytes", r.index_bytes());
        assert!(
            r.index_bytes() * 2 < tuple_payload,
            "index {} vs old clone set ≥ {}",
            r.index_bytes(),
            tuple_payload
        );
    }

    #[test]
    fn remove_basics() {
        let mut r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(3), v(4)], vec![v(5), v(6)]]);
        assert!(!r.remove(&[v(9), v(9)]));
        assert!(r.remove(&[v(3), v(4)]));
        assert!(!r.remove(&[v(3), v(4)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v(1), v(2)]));
        assert!(r.contains(&[v(5), v(6)]));
        assert!(!r.contains(&[v(3), v(4)]));
        // Removing from an empty/unindexed relation is a no-op.
        let mut e = Relation::new(1);
        assert!(!e.remove(&[v(1)]));
    }

    #[test]
    fn remove_last_and_reinsert() {
        let mut r = Relation::from_rows(vec![vec![v(1)], vec![v(2)]]);
        assert!(r.remove(&[v(2)])); // last index: no swap fixup needed
        assert_eq!(r.len(), 1);
        assert!(r.insert(vec![v(2)]));
        assert!(!r.insert(vec![v(2)]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn remove_matches_reference_model_under_churn() {
        // Interleaved insert/remove stress against a BTreeSet reference,
        // with keys dense enough to force collisions and growth.
        let mut r = Relation::new(2);
        let mut model = std::collections::BTreeSet::new();
        let mut x: u32 = 0x243F_6A88;
        for step in 0..20_000u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let a = v(x >> 24);
            let b = v((x >> 16) & 0xFF);
            let t = vec![a, b];
            if step % 3 == 0 && !model.is_empty() {
                // Remove an existing tuple about a third of the time.
                let pick = *model.iter().nth(x as usize % model.len()).unwrap();
                let pick_t = vec![v(pick / 1000), v(pick % 1000)];
                assert!(r.remove(&pick_t), "step {step}");
                model.remove(&pick);
            } else {
                let key = a.0 * 1000 + b.0;
                assert_eq!(r.insert(t), model.insert(key), "step {step}");
            }
            if step % 977 == 0 {
                assert_eq!(r.len(), model.len(), "step {step}");
            }
        }
        assert_eq!(r.len(), model.len());
        for key in &model {
            assert!(r.contains(&[v(key / 1000), v(key % 1000)]));
        }
        // Everything removed: the relation drains to empty and dedup
        // still works afterwards.
        for key in model {
            assert!(r.remove(&[v(key / 1000), v(key % 1000)]));
        }
        assert!(r.is_empty());
        assert!(r.insert(vec![v(1), v(2)]));
        assert!(!r.insert(vec![v(1), v(2)]));
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(!r.contains(&[]));
        assert!(r.insert(vec![]));
        assert!(!r.insert(vec![]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert!(r.remove(&[]));
        assert!(r.is_empty());
    }

    /// Round-trips a database through the store and hands back its frozen
    /// `e` relation.
    fn frozen_pair_relation(pairs: &[(u32, u32)]) -> (Database, String) {
        let mut db = Database::new();
        for &(x, y) in pairs {
            db.add_fact("e", &[&x.to_string(), &y.to_string()]);
        }
        let bytes = store::encode_store(&db, 0, 0);
        let loaded = store::load_store_bytes(&bytes).unwrap();
        (loaded.db, "e".into())
    }

    #[test]
    fn frozen_membership_and_iteration() {
        let (db, name) = frozen_pair_relation(&[(5, 6), (1, 2), (3, 4)]);
        let r = db.relation(&name).unwrap();
        assert!(r.is_frozen());
        assert_eq!(r.len(), 3);
        // Frozen probing answers through the persisted index.
        for t in r.iter() {
            assert!(r.contains(t));
        }
        assert_eq!(r.iter().count(), 3);
        // The page is accounted somewhere: heap fallback region counts as
        // resident, a real mmap as mapped.
        assert!(r.mapped_bytes() + r.resident_bytes() > 0);
    }

    #[test]
    fn frozen_thaws_on_insert_and_remove() {
        let (db, name) = frozen_pair_relation(&[(1, 2), (3, 4)]);
        let mut r = db.relation(&name).unwrap().clone();
        assert!(r.is_frozen());
        let existing: Vec<Value> = r.iter().next().unwrap().to_vec();
        assert!(!r.insert(existing.clone())); // duplicate: thaws, then dedups
        assert!(!r.is_frozen());
        assert!(r.remove(&existing));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&existing));
        // A fresh clone of the original still sees the frozen page.
        assert!(db.relation(&name).unwrap().is_frozen());
        assert_eq!(db.relation(&name).unwrap().len(), 2);
    }

    #[test]
    fn frozen_clone_shares_the_page() {
        let (db, name) = frozen_pair_relation(&[(1, 2), (3, 4), (5, 6)]);
        let r = db.relation(&name).unwrap();
        let copy = r.clone();
        // Cloning a frozen relation is an Arc bump: both views point at
        // the exact same page bytes.
        assert!(copy.is_frozen());
        assert!(std::ptr::eq(
            r.sorted_values().unwrap().as_ptr(),
            copy.sorted_values().unwrap().as_ptr(),
        ));
        assert_eq!(copy, *r);
    }
}
