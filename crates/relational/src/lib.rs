//! An in-memory relational engine for conjunctive-query counting.
//!
//! This crate is the data-side substrate of the paper: databases are finite
//! relational structures (Section 2), and every counting algorithm
//! manipulates *sets of substitutions* with the relational algebra of
//! Section 2 (⋈, ⋉, π, σ). The pieces:
//!
//! * [`Value`] / [`Interner`] — interned constants;
//! * [`Relation`] — a positional relation (set of tuples of a fixed arity);
//! * [`Database`] — named relations over a shared interner;
//! * [`Bindings`] — a set of substitutions over a sorted list of columns
//!   (variables), with hash-join, semijoin, projection and selection;
//! * [`consistency`] — the pairwise-consistency fixpoint used by local
//!   consistency arguments (Lemma 4.3, Theorem 3.7) and the join-tree full
//!   reducer (upward + downward semijoin passes, which on an acyclic schema
//!   achieve global consistency);
//! * [`degree`] — the degree statistics `deg_D(X, r)` and per-vertex degree
//!   `deg_D(F, v)` of Definition 6.1, the engine of hybrid decompositions;
//! * [`fxhash`] — a tiny non-cryptographic hasher; joins and fixpoints are
//!   hash-dominated and SipHash would be the bottleneck;
//! * [`store`] — the immutable mmap-able page format behind O(mmap)
//!   startup: relations freeze to sorted pages + persisted dedup index,
//!   thaw lazily on mutation, and share regions copy-on-write;
//! * [`wcoj`] — a leapfrog worst-case-optimal multiway join over the same
//!   sorted order, the planner's kernel for cyclic bags.
//!
//! Columns are opaque `u32` ids; the query crate maps variables onto them.

pub mod algebra;
pub mod consistency;
pub mod database;
pub mod degree;
pub mod fxhash;
pub mod keys;
pub mod relation;
pub mod store;
pub mod value;
pub mod wcoj;

pub use algebra::{Bindings, ColTerm};
pub use database::{Database, MutationError};
pub use fxhash::{FxHashMap, FxHashSet};
pub use relation::Relation;
pub use store::{LoadedStore, StoreError};
pub use value::{Interner, Value};
pub use wcoj::{wcoj_join, JoinKernel, WcojInput};

/// A column identifier (the relational engine's view of a query variable).
pub type Col = u32;

/// A tuple of interned values.
pub type Tuple = Box<[Value]>;
