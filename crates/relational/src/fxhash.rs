//! A small, fast, non-cryptographic hasher (the classic "FxHash" mix used by
//! rustc). Joins, semijoins and consistency fixpoints hash millions of short
//! tuples; the default SipHash is measurably slower there and HashDoS
//! resistance is irrelevant for an analytical engine. Hand-rolled (~30
//! lines) to keep the workspace dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing hasher: multiply-rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_inputs() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 1);
        m.insert(vec![1, 2, 4], 2);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
