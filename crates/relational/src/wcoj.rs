//! Worst-case-optimal multiway join: a leapfrog-triejoin kernel over
//! sorted row sets.
//!
//! The binary sort-merge kernel in [`crate::algebra`] materializes every
//! pairwise intermediate; on cyclic bags (triangle λ-sets and up) those
//! intermediates can be quadratically larger than the bag's output, which
//! is exactly the blowup worst-case-optimal joins avoid. This kernel
//! intersects *all* atoms of a bag at once, variable by variable.
//!
//! The trick that makes it free here: [`Bindings`] rows are canonically
//! sorted — lexicographically over ascending column ids — and frozen store
//! pages are persisted in the same order. Picking the *global variable
//! order to be ascending column id* therefore makes every input already a
//! valid trie: each bound prefix is a contiguous row range, and descending
//! one level is a pair of binary searches. No per-query re-sorting, no trie
//! construction, and for frozen relations the searches run directly over
//! the mapped bytes.
//!
//! Output rows are produced in ascending lexicographic order over the
//! sorted union of columns, so the resulting [`Bindings`] needs no
//! canonicalizing sort either.

use crate::{Bindings, Col, Relation, Tuple, Value};

/// Which join kernel a plan (or a bag) should use. The planner selects
/// [`Wcoj`](JoinKernel::Wcoj) for cyclic bags; `CQCOUNT_JOIN_KERNEL`
/// (`auto` / `sortmerge` / `wcoj`) overrides it for experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinKernel {
    /// Per-bag choice: wcoj on cyclic λ-sets, sort-merge elsewhere.
    #[default]
    Auto,
    /// Always fold binary sort-merge joins.
    SortMerge,
    /// Always run the multiway leapfrog kernel (bags with ≥ 2 atoms).
    Wcoj,
}

impl JoinKernel {
    /// The kernel selected by the `CQCOUNT_JOIN_KERNEL` environment
    /// override (`auto`, `sortmerge`/`sort-merge`, `wcoj`/`leapfrog`).
    /// Unset or unrecognized values fall back to [`JoinKernel::Auto`].
    pub fn from_env() -> JoinKernel {
        match std::env::var("CQCOUNT_JOIN_KERNEL").ok().as_deref() {
            Some("sortmerge") | Some("sort-merge") => JoinKernel::SortMerge,
            Some("wcoj") | Some("leapfrog") => JoinKernel::Wcoj,
            _ => JoinKernel::Auto,
        }
    }
}

/// A sorted row set the kernel can descend: boxed [`Bindings`] rows or a
/// flat frozen page viewed in place.
#[derive(Clone, Copy)]
enum RowsView<'a> {
    Boxed(&'a [Tuple]),
    Flat { values: &'a [Value], arity: usize },
}

impl<'a> RowsView<'a> {
    fn len(&self) -> usize {
        match self {
            RowsView::Boxed(rows) => rows.len(),
            RowsView::Flat { values, arity } => {
                if *arity == 0 {
                    usize::from(!values.is_empty())
                } else {
                    values.len() / arity
                }
            }
        }
    }

    #[inline]
    fn get(&self, row: usize, pos: usize) -> Value {
        match self {
            RowsView::Boxed(rows) => rows[row][pos],
            RowsView::Flat { values, arity } => values[row * arity + pos],
        }
    }
}

/// One input to [`wcoj_join`]: sorted rows plus the (strictly ascending)
/// column each position binds.
pub struct WcojInput<'a> {
    rows: RowsView<'a>,
    cols: &'a [Col],
}

impl<'a> WcojInput<'a> {
    /// Any canonical [`Bindings`] is a valid trie for the ascending
    /// global order.
    pub fn from_bindings(b: &'a Bindings) -> WcojInput<'a> {
        WcojInput {
            rows: RowsView::Boxed(b.rows()),
            cols: b.cols(),
        }
    }

    /// A frozen relation joined directly over its mapped page. Usable when
    /// the page's position order matches the global order: `cols[i]` is
    /// the column bound by position `i` and must be strictly ascending.
    /// Returns `None` for heap-backed relations (no sorted page) or a
    /// non-ascending binding pattern — callers fall back to
    /// [`Bindings::from_atom`].
    pub fn from_frozen(rel: &'a Relation, cols: &'a [Col]) -> Option<WcojInput<'a>> {
        let values = rel.sorted_values()?;
        if cols.len() != rel.arity() || !cols.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(WcojInput {
            rows: RowsView::Flat {
                values,
                arity: rel.arity(),
            },
            cols,
        })
    }
}

struct Cursor<'a> {
    rows: RowsView<'a>,
    /// Local position bound at each global depth (`None` = column absent).
    pos: Vec<Option<usize>>,
    /// Row ranges: `stack[d]` is the candidate range while searching depth
    /// `d`; pushed down to the value run on descent.
    stack: Vec<(usize, usize)>,
}

impl Cursor<'_> {
    /// First row in `[lo, hi)` whose value at `pos` is ≥ `target` (the
    /// range is sorted at `pos`: earlier positions are constant in it).
    fn lower_bound(&self, mut lo: usize, mut hi: usize, pos: usize, target: Value) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rows.get(mid, pos) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// End of the run of rows equal to `v` at `pos`, starting at `lo`.
    fn run_end(&self, mut lo: usize, mut hi: usize, pos: usize, v: Value) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rows.get(mid, pos) <= v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Joins all inputs simultaneously with leapfrog intersection, returning
/// the natural join over the sorted union of their columns — semantically
/// identical to folding [`Bindings::join`], without the pairwise
/// intermediates. Runtime is worst-case optimal in the AGM sense for the
/// fixed ascending variable order.
pub fn wcoj_join(inputs: &[WcojInput]) -> Bindings {
    // Sorted union of columns = the global variable order.
    let mut vars: Vec<Col> = inputs.iter().flat_map(|i| i.cols.iter().copied()).collect();
    vars.sort_unstable();
    vars.dedup();

    // A nullary input (all-constant atom) is a filter: empty kills the
    // join, the unit row is a no-op.
    if inputs.iter().any(|i| i.rows.len() == 0) {
        return Bindings::from_sorted_rows(vars, Vec::new());
    }
    if vars.is_empty() {
        return Bindings::unit();
    }

    let mut cursors: Vec<Cursor> = inputs
        .iter()
        .filter(|i| !i.cols.is_empty())
        .map(|i| {
            debug_assert!(i.cols.windows(2).all(|w| w[0] < w[1]));
            let pos = vars
                .iter()
                .map(|v| i.cols.iter().position(|c| c == v))
                .collect();
            Cursor {
                rows: i.rows,
                pos,
                stack: vec![(0, i.rows.len())],
            }
        })
        .collect();
    // Which cursors participate at each depth.
    let active: Vec<Vec<usize>> = (0..vars.len())
        .map(|d| {
            (0..cursors.len())
                .filter(|&c| cursors[c].pos[d].is_some())
                .collect()
        })
        .collect();

    let mut out: Vec<Tuple> = Vec::new();
    let mut current = vec![Value(0); vars.len()];
    descend(0, &active, &mut cursors, &mut current, &mut out);
    Bindings::from_sorted_rows(vars, out)
}

fn descend(
    depth: usize,
    active: &[Vec<usize>],
    cursors: &mut [Cursor],
    current: &mut Vec<Value>,
    out: &mut Vec<Tuple>,
) {
    // Work on a *copy* of each participating cursor's current range: the
    // level loop advances its frame destructively, and the same range must
    // be re-enterable from a sibling branch one level up.
    for &c in &active[depth] {
        let top = *cursors[c].stack.last().unwrap();
        cursors[c].stack.push(top);
    }
    level_loop(depth, active, cursors, current, out);
    for &c in &active[depth] {
        cursors[c].stack.pop();
    }
}

fn level_loop(
    depth: usize,
    active: &[Vec<usize>],
    cursors: &mut [Cursor],
    current: &mut Vec<Value>,
    out: &mut Vec<Tuple>,
) {
    let level = &active[depth];
    debug_assert!(!level.is_empty(), "a union column belongs to some input");
    // Initial candidate: the max of the cursors' first values.
    let mut val = Value(0);
    for &c in level {
        let (lo, hi) = *cursors[c].stack.last().unwrap();
        if lo == hi {
            return;
        }
        let p = cursors[c].pos[depth].unwrap();
        val = val.max(cursors[c].rows.get(lo, p));
    }
    let mut ends = vec![0usize; level.len()];
    'level: loop {
        // Leapfrog: align every cursor on `val`, raising `val` whenever a
        // seek overshoots, until all agree (or one exhausts).
        let mut aligned = 0;
        let mut k = 0;
        while aligned < level.len() {
            let c = level[k % level.len()];
            let p = cursors[c].pos[depth].unwrap();
            let (lo, hi) = *cursors[c].stack.last().unwrap();
            let nlo = cursors[c].lower_bound(lo, hi, p, val);
            if nlo == hi {
                return;
            }
            cursors[c].stack.last_mut().unwrap().0 = nlo;
            let v = cursors[c].rows.get(nlo, p);
            if v == val {
                aligned += 1;
            } else {
                val = v;
                aligned = 1;
            }
            k += 1;
        }
        // Match: push each cursor's value run and go one level deeper.
        for (i, &c) in level.iter().enumerate() {
            let p = cursors[c].pos[depth].unwrap();
            let (lo, hi) = *cursors[c].stack.last().unwrap();
            let end = cursors[c].run_end(lo, hi, p, val);
            ends[i] = end;
            cursors[c].stack.push((lo, end));
        }
        current[depth] = val;
        if depth + 1 == current.len() {
            out.push(current.clone().into_boxed_slice());
        } else {
            descend(depth + 1, active, cursors, current, out);
        }
        // Pop the runs and advance past `val`. Pop *every* cursor before
        // returning on exhaustion — a mid-loop return would leave sibling
        // runs pushed and corrupt the parent's range stack.
        let mut exhausted = false;
        for (i, &c) in level.iter().enumerate() {
            cursors[c].stack.pop();
            let top = cursors[c].stack.last_mut().unwrap();
            top.0 = ends[i];
            exhausted |= top.0 == top.1;
        }
        if exhausted {
            return;
        }
        val = Value(0);
        for &c in level {
            let (lo, _) = *cursors[c].stack.last().unwrap();
            let p = cursors[c].pos[depth].unwrap();
            val = val.max(cursors[c].rows.get(lo, p));
        }
        continue 'level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColTerm;

    fn b(cols: &[Col], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter()
                .map(|r| r.iter().map(|&v| Value(v)).collect())
                .collect(),
        )
    }

    fn fold_join(inputs: &[&Bindings]) -> Bindings {
        let mut acc = Bindings::unit();
        for i in inputs {
            acc = acc.join(i);
        }
        acc
    }

    fn check_parity(inputs: &[&Bindings]) {
        let views: Vec<WcojInput> = inputs.iter().map(|b| WcojInput::from_bindings(b)).collect();
        assert_eq!(wcoj_join(&views), fold_join(inputs));
    }

    #[test]
    fn triangle() {
        let r = b(&[0, 1], &[&[1, 2], &[2, 3], &[1, 3], &[3, 1]]);
        let s = b(&[1, 2], &[&[2, 3], &[3, 1], &[3, 4]]);
        let t = b(&[0, 2], &[&[1, 3], &[2, 1], &[1, 4]]);
        check_parity(&[&r, &s, &t]);
        let views = [
            WcojInput::from_bindings(&r),
            WcojInput::from_bindings(&s),
            WcojInput::from_bindings(&t),
        ];
        let out = wcoj_join(&views);
        assert_eq!(out.cols(), &[0, 1, 2]);
        assert!(!out.rows().is_empty());
    }

    #[test]
    fn disjoint_columns_cross_product() {
        let r = b(&[0], &[&[1], &[2]]);
        let s = b(&[3], &[&[5], &[6], &[7]]);
        check_parity(&[&r, &s]);
    }

    #[test]
    fn empty_input_empties_the_join() {
        let r = b(&[0, 1], &[&[1, 2]]);
        let s = b(&[1, 2], &[]);
        let views = [WcojInput::from_bindings(&r), WcojInput::from_bindings(&s)];
        assert!(wcoj_join(&views).rows().is_empty());
    }

    #[test]
    fn nullary_inputs_are_filters() {
        let unit = Bindings::unit();
        let r = b(&[0], &[&[1], &[2]]);
        let views = [
            WcojInput::from_bindings(&unit),
            WcojInput::from_bindings(&r),
        ];
        assert_eq!(wcoj_join(&views), r);
    }

    #[test]
    fn single_input_is_identity() {
        let r = b(&[2, 5], &[&[1, 2], &[3, 4]]);
        let views = [WcojInput::from_bindings(&r)];
        assert_eq!(wcoj_join(&views), r);
    }

    #[test]
    fn skewed_multiplicities() {
        // Repeated join values exercise the run ranges (non-unit runs at
        // inner depths).
        let r = b(&[0, 1], &[&[1, 1], &[1, 2], &[1, 3], &[2, 1]]);
        let s = b(&[1, 2], &[&[1, 9], &[2, 9], &[3, 9], &[3, 8]]);
        let t = b(&[0, 2], &[&[1, 9], &[2, 9], &[1, 8]]);
        check_parity(&[&r, &s, &t]);
    }

    #[test]
    fn four_cycle_parity() {
        // X0-X1-X2-X3-X0: the shape random_cyclic_query generates.
        let mut e = Vec::new();
        let mut x = 7u32;
        for _ in 0..50 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            e.push([x % 8, (x >> 8) % 8]);
        }
        let rows: Vec<&[u32]> = e.iter().map(|r| &r[..]).collect();
        let e01 = b(&[0, 1], &rows);
        let e12 = b(&[1, 2], &rows);
        let e23 = b(&[2, 3], &rows);
        let e03 = b(&[0, 3], &rows);
        check_parity(&[&e01, &e12, &e23, &e03]);
    }

    #[test]
    fn frozen_page_join_runs_on_mapped_bytes() {
        use crate::{store, Database};
        let mut db = Database::new();
        for (x, y) in [(1u32, 2u32), (2, 3), (3, 1), (1, 3), (3, 4)] {
            db.add_fact("e", &[&x.to_string(), &y.to_string()]);
        }
        let loaded = store::load_store_bytes(&store::encode_store(&db, 0, 0)).unwrap();
        let rel = loaded.db.relation("e").unwrap();
        assert!(rel.is_frozen());
        // Triangle over the frozen page directly (cols ascending per atom
        // pattern) must match evaluating through Bindings::from_atom.
        let (c01, c12, c02) = ([0u32, 1], [1u32, 2], [0u32, 2]);
        let views = [
            WcojInput::from_frozen(rel, &c01).unwrap(),
            WcojInput::from_frozen(rel, &c12).unwrap(),
            WcojInput::from_frozen(rel, &c02).unwrap(),
        ];
        let direct = wcoj_join(&views);
        let atom = |cols: [u32; 2]| {
            Bindings::from_atom(rel, &[ColTerm::Var(cols[0]), ColTerm::Var(cols[1])])
        };
        let folded = atom(c01).join(&atom(c12)).join(&atom(c02));
        assert_eq!(direct, folded);
        // Heap relations have no sorted page to borrow.
        let mut heap = Relation::new(2);
        heap.insert(vec![Value(1), Value(2)]);
        assert!(WcojInput::from_frozen(&heap, &c01).is_none());
    }
}
