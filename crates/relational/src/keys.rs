//! Key discovery (functional dependencies by position), the data-side
//! signal behind Example 1.5 / Section 6: "if some (often all) existential
//! variables are functionally determined by keys ... the technique may
//! freely use them as if they were free variables".

use crate::fxhash::FxHashMap;
use crate::{Relation, Tuple, Value};

/// Returns `true` iff the positions `key` functionally determine the whole
/// tuple in `rel` (no two tuples agree on `key` but differ elsewhere).
pub fn positions_are_key(rel: &Relation, key: &[usize]) -> bool {
    let mut seen: FxHashMap<Tuple, &[Value]> = FxHashMap::default();
    for t in rel.iter() {
        let k: Tuple = key.iter().map(|&p| t[p]).collect();
        match seen.get(&k) {
            Some(prev) if *prev != t => return false,
            Some(_) => {}
            None => {
                seen.insert(k, t);
            }
        }
    }
    true
}

/// All *minimal* keys of `rel` (position sets): key sets such that no
/// proper subset is a key. Exponential in the arity, which is bounded for
/// database schemas. An empty relation has the empty key; a relation whose
/// tuples are all equal does too.
pub fn minimal_keys(rel: &Relation) -> Vec<Vec<usize>> {
    let arity = rel.arity();
    let mut keys: Vec<Vec<usize>> = Vec::new();
    // Breadth-first by subset size guarantees minimality by construction.
    for size in 0..=arity {
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        subsets_of_size(arity, size, &mut candidates);
        for cand in candidates {
            if keys.iter().any(|k| k.iter().all(|p| cand.contains(p))) {
                continue; // a subset is already a key
            }
            if positions_are_key(rel, &cand) {
                keys.push(cand);
            }
        }
    }
    keys
}

fn subsets_of_size(n: usize, size: usize, out: &mut Vec<Vec<usize>>) {
    fn rec(start: usize, n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, size, cur, out);
            cur.pop();
        }
    }
    rec(0, n, size, &mut Vec::new(), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn rel(rows: &[&[u32]]) -> Relation {
        Relation::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&x| Value(x)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn single_column_key() {
        // first column determines the rest
        let r = rel(&[&[1, 10], &[2, 20], &[3, 10]]);
        assert!(positions_are_key(&r, &[0]));
        assert!(!positions_are_key(&r, &[1])); // 10 maps to 1 and 3
        assert_eq!(minimal_keys(&r), vec![vec![0]]);
    }

    #[test]
    fn composite_key() {
        // third column constant, so only {0,1} determines the tuple
        let r = rel(&[&[1, 1, 5], &[1, 2, 5], &[2, 1, 5]]);
        assert!(!positions_are_key(&r, &[0]));
        assert!(!positions_are_key(&r, &[1]));
        assert!(!positions_are_key(&r, &[2]));
        assert!(positions_are_key(&r, &[0, 1]));
        assert_eq!(minimal_keys(&r), vec![vec![0, 1]]);
    }

    #[test]
    fn several_minimal_keys() {
        // both columns are keys independently
        let r = rel(&[&[1, 10], &[2, 20]]);
        let keys = minimal_keys(&r);
        assert!(keys.contains(&vec![0]));
        assert!(keys.contains(&vec![1]));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn degenerate_cases() {
        // empty relation: the empty set is a key
        let empty = Relation::new(2);
        assert_eq!(minimal_keys(&empty), vec![Vec::<usize>::new()]);
        // single tuple: empty key again
        let single = rel(&[&[5, 6]]);
        assert_eq!(minimal_keys(&single), vec![Vec::<usize>::new()]);
        // whole tuple needed
        let r = rel(&[&[1, 1], &[1, 2], &[2, 1]]);
        assert_eq!(minimal_keys(&r), vec![vec![0, 1]]);
    }
}
