//! Zero-copy immutable relation store: the on-disk page format behind
//! O(mmap) startup.
//!
//! A store file is one self-verifying little-endian image of a database at
//! a `(epoch, mutation_seq)` point. Every section is 8-byte aligned and
//! fixed-layout, so the reader *casts* instead of deserializing: after an
//! `mmap` (or a read into an aligned heap buffer as fallback) the sorted
//! tuple pages and the open-addressed dedup index are used in place, and a
//! recovered [`Relation`] is just a borrowed window into the region.
//!
//! ```text
//! header (72 bytes):
//!   0..8   magic "CQSTORE2"
//!   8..12  format version   u32 (= 2)
//!   12..16 endian tag       u32 (= 0x0A0B_0C0D as written on LE)
//!   16..24 epoch            u64
//!   24..32 mutation_seq     u64
//!   32..36 nrels            u32
//!   36..40 ninterned        u32
//!   40..48 meta_len         u64
//!   48..56 total_len        u64
//!   56..64 reserved         u64 (0)
//!   64..68 meta_crc         u32   crc32 of the meta section
//!   68..72 header_crc       u32   crc32 of bytes 0..68
//! meta section (at 72, meta_len bytes):
//!   interner table  (ninterned + 1) × u64   blob-relative name bounds
//!   strings blob    interner names then relation names, zero-padded to 8
//!   directory       nrels × 8 × u64 (relations sorted by name):
//!     name_off, name_len, arity, ntuples, data_off, index_off, nslots,
//!     page_crc (low 32 bits)
//! pages (from 72 + meta_len):
//!   per relation: ntuples × arity × u32 sorted row-major values, pad to 8,
//!   then nslots × u32 dedup index (u32::MAX = empty), pad to 8.
//!   page_crc covers [data_off, align8(index_off + nslots·4)).
//! ```
//!
//! Tuple pages are stored in ascending lexicographic row order, so a frozen
//! relation doubles as a trie: every bound prefix is a contiguous row range
//! and the wcoj kernel (see [`crate::wcoj`]) descends it with binary
//! searches. The index page is the same open-addressed u32-offset table the
//! heap [`Relation`] maintains (same hash, same probing), persisted as-is —
//! membership probes work on the mapped bytes with zero rebuild cost.
//!
//! Integrity is CRC-based and fail-closed: header, meta and every relation
//! page carry independent CRC-32s (same polynomial as the WAL), and any
//! mismatch, truncation, foreign endianness or unknown version surfaces as
//! a typed [`StoreError`] before a single tuple is exposed. The CRCs are
//! the integrity boundary — a file that passes them is trusted to satisfy
//! the structural invariants (sorted rows, in-bounds index offsets).

use crate::relation::build_slot_index;
use crate::value::Interner;
use crate::{Database, Relation, Value};
use std::fmt;
use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// File magic; also the discriminator against legacy `CQSNAP1\n` snapshots.
pub const STORE_MAGIC: &[u8; 8] = b"CQSTORE2";
/// Current format version.
pub const STORE_VERSION: u32 = 2;
/// Written as a native-endian u32; reads as this value only on a
/// little-endian host looking at a little-endian file.
const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
const HEADER_LEN: usize = 72;
const DIR_ENTRY_U64S: usize = 8;

/// Why a store file was rejected. Every variant fails closed: no partially
/// decoded database ever escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file is shorter than a section it declares.
    Truncated { need: u64, have: u64 },
    /// The first 8 bytes are not the store magic.
    BadMagic,
    /// The magic matched but the version is not one this build reads.
    BadVersion { found: u32 },
    /// The endian tag did not read back — the file was written on (or
    /// mangled into) a foreign byte order.
    BadEndian { found: u32 },
    /// A section checksum did not verify.
    CrcMismatch {
        section: &'static str,
        stored: u32,
        computed: u32,
    },
    /// Offsets or lengths are inconsistent (overlap, misalignment,
    /// non-UTF-8 name, impossible slot count).
    Layout(String),
    /// The file could not be opened, read or mapped.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { need, have } => {
                write!(f, "store truncated: need {need} bytes, have {have}")
            }
            StoreError::BadMagic => write!(f, "bad store magic"),
            StoreError::BadVersion { found } => write!(f, "unsupported store version {found}"),
            StoreError::BadEndian { found } => {
                write!(f, "foreign endianness (tag {found:#010x})")
            }
            StoreError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "{section} crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Layout(msg) => write!(f, "store layout error: {msg}"),
            StoreError::Io(msg) => write!(f, "store i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// CRC-32 (IEEE, reflected) — byte-compatible with the WAL's checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Region: the mapped (or heap-held) bytes behind every frozen relation.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    // std already links libc on unix; declaring the two symbols we need
    // avoids a dependency while keeping the call sites type-checked.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
}

enum RegionKind {
    /// `mmap`'d read-only; unmapped on drop. Unlinking the backing file
    /// while mapped is fine on unix — the pages stay valid.
    #[cfg(unix)]
    Mapped,
    /// Read into an 8-byte-aligned heap buffer (fallback path and the
    /// `CQCOUNT_NO_MMAP=1` test override). The box never moves once
    /// stored, so `ptr` stays valid.
    Heap(#[allow(dead_code)] Box<[u64]>),
}

/// An immutable byte region all frozen pages borrow from, refcounted so
/// consecutive epochs share unchanged relation pages copy-on-write.
pub struct Region {
    ptr: *const u8,
    len: usize,
    kind: RegionKind,
}

// The region is immutable after construction; sharing `&[u8]` views across
// threads is safe.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Drop for Region {
    fn drop(&mut self) {
        #[cfg(unix)]
        if matches!(self.kind, RegionKind::Mapped) {
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            #[cfg(unix)]
            RegionKind::Mapped => "mapped",
            RegionKind::Heap(_) => "heap",
        };
        write!(f, "Region({kind}, {} bytes)", self.len)
    }
}

impl Region {
    fn from_bytes(bytes: &[u8]) -> Region {
        let words = bytes.len().div_ceil(8).max(1);
        let buf = vec![0u64; words].into_boxed_slice();
        let ptr = buf.as_ptr() as *const u8;
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr as *mut u8, bytes.len());
        }
        Region {
            ptr,
            len: bytes.len(),
            kind: RegionKind::Heap(buf),
        }
    }

    #[cfg(unix)]
    fn map_file(file: &File, len: usize) -> Result<Region, StoreError> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(StoreError::Io(format!(
                "mmap failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(Region {
            ptr: ptr as *const u8,
            len,
            kind: RegionKind::Mapped,
        })
    }

    /// Whether the region is an actual memory mapping (vs. the heap
    /// fallback); surfaced in the per-db memory stats.
    pub fn is_mapped(&self) -> bool {
        match self.kind {
            #[cfg(unix)]
            RegionKind::Mapped => true,
            RegionKind::Heap(_) => false,
        }
    }

    /// The whole region.
    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// A `u32` window at `off` (bytes). Offsets come from the validated
    /// directory, so alignment and bounds hold by construction.
    fn u32s(&self, off: usize, n: usize) -> &[u32] {
        debug_assert!(off + n * 4 <= self.len);
        debug_assert_eq!((self.ptr as usize + off) % 4, 0);
        unsafe { std::slice::from_raw_parts(self.ptr.add(off) as *const u32, n) }
    }
}

/// A frozen relation's window into a [`Region`]: sorted tuple page plus
/// the persisted dedup index. Cloning is an `Arc` bump — this is the CoW
/// sharing unit across epochs.
#[derive(Clone)]
pub struct FrozenPage {
    region: Arc<Region>,
    arity: usize,
    ntuples: usize,
    data_off: usize,
    index_off: usize,
    nslots: usize,
}

impl fmt::Debug for FrozenPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FrozenPage(arity {}, {} tuples, {} slots)",
            self.arity, self.ntuples, self.nslots
        )
    }
}

impl FrozenPage {
    /// The sorted row-major tuple values. `Value` is `repr(transparent)`
    /// over `u32`, so the mapped page is viewed in place.
    pub(crate) fn values(&self) -> &[Value] {
        let raw = self.region.u32s(self.data_off, self.ntuples * self.arity);
        unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const Value, raw.len()) }
    }

    /// The persisted open-addressed index.
    pub(crate) fn slots(&self) -> &[u32] {
        self.region.u32s(self.index_off, self.nslots)
    }

    pub(crate) fn len(&self) -> usize {
        self.ntuples
    }

    pub(crate) fn arity(&self) -> usize {
        self.arity
    }

    /// Bytes of the backing region this page spans (tuples + index).
    pub(crate) fn page_bytes(&self) -> usize {
        (self.index_off + self.nslots * 4).next_multiple_of(8) - self.data_off
    }

    pub(crate) fn is_mapped(&self) -> bool {
        self.region.is_mapped()
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Encodes `db` at `(epoch, seq)` as a complete store image. Frozen
/// relations are copied page-to-page (already sorted); heap relations are
/// sorted on the way out.
pub fn encode_store(db: &Database, epoch: u64, seq: u64) -> Vec<u8> {
    let interner = db.interner();
    let mut rels: Vec<(&str, &Relation)> = db.relations().collect();
    rels.sort_by_key(|&(name, _)| name);

    // Strings blob + interner bounds table.
    let ninterned = interner.len();
    let mut blob = Vec::new();
    let mut itab: Vec<u64> = Vec::with_capacity(ninterned + 1);
    for v in interner.values() {
        itab.push(blob.len() as u64);
        blob.extend_from_slice(interner.name(v).as_bytes());
    }
    itab.push(blob.len() as u64);
    let mut rel_names: Vec<(usize, usize)> = Vec::with_capacity(rels.len());
    for &(name, _) in &rels {
        rel_names.push((blob.len(), name.len()));
        blob.extend_from_slice(name.as_bytes());
    }

    let itab_off = HEADER_LEN;
    let blob_off = itab_off + itab.len() * 8;
    let dir_off = (blob_off + blob.len()).next_multiple_of(8);
    let pages_off = dir_off + rels.len() * DIR_ENTRY_U64S * 8;
    let meta_len = pages_off - HEADER_LEN;

    // Lay the pages out (sorted values + index per relation) and record
    // directory entries as we go.
    let mut pages = Vec::new();
    let mut dir: Vec<u64> = Vec::with_capacity(rels.len() * DIR_ENTRY_U64S);
    for (i, &(_name, rel)) in rels.iter().enumerate() {
        let arity = rel.arity();
        let data_off = pages_off + pages.len();
        // Sorted row-major values: frozen pages are already in store
        // order; heap relations are sorted on the way out.
        let sorted: Vec<Value>;
        let sorted = match rel.sorted_values() {
            Some(s) => s,
            None => {
                let mut order: Vec<u32> = (0..rel.len() as u32).collect();
                order.sort_unstable_by(|&a, &b| rel.row(a as usize).cmp(rel.row(b as usize)));
                sorted = order
                    .iter()
                    .flat_map(|&r| rel.row(r as usize).iter().copied())
                    .collect();
                &sorted[..]
            }
        };
        for v in sorted {
            pages.extend_from_slice(&v.0.to_le_bytes());
        }
        pad8(&mut pages);
        let index_off = pages_off + pages.len();
        let slots = build_slot_index(|n| &sorted[n * arity..(n + 1) * arity], rel.len());
        for s in &slots {
            pages.extend_from_slice(&s.to_le_bytes());
        }
        pad8(&mut pages);
        let page_end = pages_off + pages.len();
        let page_crc = crc32(&pages[data_off - pages_off..page_end - pages_off]);
        let (name_rel_off, name_len) = rel_names[i];
        dir.extend_from_slice(&[
            (blob_off + name_rel_off) as u64,
            name_len as u64,
            arity as u64,
            rel.len() as u64,
            data_off as u64,
            index_off as u64,
            slots.len() as u64,
            page_crc as u64,
        ]);
    }

    let total_len = pages_off + pages.len();

    // Assemble: header | meta | pages.
    let mut out = Vec::with_capacity(total_len);
    out.extend_from_slice(STORE_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_TAG.to_ne_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(rels.len() as u32).to_le_bytes());
    out.extend_from_slice(&(ninterned as u32).to_le_bytes());
    out.extend_from_slice(&(meta_len as u64).to_le_bytes());
    out.extend_from_slice(&(total_len as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    debug_assert_eq!(out.len(), 64);

    let mut meta = Vec::with_capacity(meta_len);
    for o in &itab {
        meta.extend_from_slice(&o.to_le_bytes());
    }
    meta.extend_from_slice(&blob);
    pad8(&mut meta);
    for d in &dir {
        meta.extend_from_slice(&d.to_le_bytes());
    }
    debug_assert_eq!(meta.len(), meta_len);

    out.extend_from_slice(&crc32(&meta).to_le_bytes());
    let header_crc = crc32(&out[..64]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(&meta);
    out.extend_from_slice(&pages);
    debug_assert_eq!(out.len(), total_len);
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A database recovered from a store image, plus the point it captures.
#[derive(Debug)]
pub struct LoadedStore {
    pub db: Database,
    pub epoch: u64,
    pub seq: u64,
    /// Whether the backing region is an actual mmap (vs. heap fallback).
    pub mapped: bool,
}

/// Opens a store file, mapping it when possible. Set `CQCOUNT_NO_MMAP=1`
/// to force the heap fallback (used by tests to cover both paths).
pub fn open_store(path: &Path) -> Result<LoadedStore, StoreError> {
    let mut file = File::open(path).map_err(|e| StoreError::Io(e.to_string()))?;
    let len = file
        .metadata()
        .map_err(|e| StoreError::Io(e.to_string()))?
        .len();
    if len < HEADER_LEN as u64 {
        return Err(StoreError::Truncated {
            need: HEADER_LEN as u64,
            have: len,
        });
    }
    let no_mmap = std::env::var("CQCOUNT_NO_MMAP").is_ok_and(|v| v == "1");
    #[cfg(unix)]
    let region = if no_mmap {
        read_heap_region(&mut file)?
    } else {
        Region::map_file(&file, len as usize)?
    };
    #[cfg(not(unix))]
    let region = {
        let _ = no_mmap;
        read_heap_region(&mut file)?
    };
    load_region(region)
}

fn read_heap_region(file: &mut File) -> Result<Region, StoreError> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| StoreError::Io(e.to_string()))?;
    Ok(Region::from_bytes(&bytes))
}

/// Loads a store from bytes already in memory (the heap path; tests and
/// the snapshot decoder's byte-level fallback use this).
pub fn load_store_bytes(bytes: &[u8]) -> Result<LoadedStore, StoreError> {
    load_region(Region::from_bytes(bytes))
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

fn load_region(region: Region) -> Result<LoadedStore, StoreError> {
    let region = Arc::new(region);
    let b = region.bytes();
    if b.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            need: HEADER_LEN as u64,
            have: b.len() as u64,
        });
    }
    if &b[0..8] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    // Endianness before version: on a foreign-endian file the version
    // field itself reads back byte-swapped.
    let endian = u32::from_ne_bytes(b[12..16].try_into().unwrap());
    if endian != ENDIAN_TAG {
        return Err(StoreError::BadEndian { found: endian });
    }
    let version = u32_at(b, 8);
    if version != STORE_VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let stored = u32_at(b, 68);
    let computed = crc32(&b[..64]);
    if stored != computed {
        return Err(StoreError::CrcMismatch {
            section: "header",
            stored,
            computed,
        });
    }
    let epoch = u64_at(b, 16);
    let seq = u64_at(b, 24);
    let nrels = u32_at(b, 32) as usize;
    let ninterned = u32_at(b, 36) as usize;
    let meta_len = u64_at(b, 40) as usize;
    let total_len = u64_at(b, 48);
    if total_len != b.len() as u64 {
        return Err(StoreError::Truncated {
            need: total_len,
            have: b.len() as u64,
        });
    }
    let pages_off = HEADER_LEN
        .checked_add(meta_len)
        .filter(|&e| e <= b.len())
        .ok_or(StoreError::Truncated {
            need: HEADER_LEN as u64 + meta_len as u64,
            have: b.len() as u64,
        })?;
    let meta = &b[HEADER_LEN..pages_off];
    let stored = u32_at(b, 64);
    let computed = crc32(meta);
    if stored != computed {
        return Err(StoreError::CrcMismatch {
            section: "meta",
            stored,
            computed,
        });
    }

    // Interner: bounds table + UTF-8 names.
    let itab_len = (ninterned + 1) * 8;
    let dir_len = nrels * DIR_ENTRY_U64S * 8;
    if itab_len + dir_len > meta.len() {
        return Err(StoreError::Layout(format!(
            "meta section too small for {ninterned} names + {nrels} relations"
        )));
    }
    let blob = &meta[itab_len..meta.len() - dir_len];
    let mut names = Vec::with_capacity(ninterned);
    let mut prev = 0u64;
    for i in 0..ninterned {
        let start = u64_at(meta, i * 8);
        let end = u64_at(meta, (i + 1) * 8);
        if start < prev || end < start || end > blob.len() as u64 {
            return Err(StoreError::Layout(format!(
                "interner name {i} out of bounds"
            )));
        }
        prev = end;
        let name = std::str::from_utf8(&blob[start as usize..end as usize])
            .map_err(|_| StoreError::Layout(format!("interner name {i} is not UTF-8")))?;
        names.push(name.to_owned());
    }
    let interner = Interner::from_names(names);
    if interner.len() != ninterned {
        return Err(StoreError::Layout("duplicate interner names".into()));
    }

    // Directory + per-relation page verification.
    let dir = &meta[meta.len() - dir_len..];
    let mut relations = Vec::with_capacity(nrels);
    for r in 0..nrels {
        let e = |k: usize| u64_at(dir, (r * DIR_ENTRY_U64S + k) * 8);
        let (name_off, name_len) = (e(0) as usize, e(1) as usize);
        let arity = e(2) as usize;
        let ntuples = e(3) as usize;
        let (data_off, index_off) = (e(4) as usize, e(5) as usize);
        let nslots = e(6) as usize;
        let page_crc = e(7) as u32;

        let name_end = name_off
            .checked_add(name_len)
            .filter(|&e| e <= pages_off)
            .ok_or_else(|| StoreError::Layout(format!("relation {r} name out of bounds")))?;
        if name_off < HEADER_LEN {
            return Err(StoreError::Layout(format!(
                "relation {r} name out of bounds"
            )));
        }
        let name = std::str::from_utf8(&b[name_off..name_end])
            .map_err(|_| StoreError::Layout(format!("relation {r} name is not UTF-8")))?
            .to_owned();

        let data_len = ntuples
            .checked_mul(arity)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| StoreError::Layout(format!("relation {name}: size overflow")))?;
        let page_end = (index_off + nslots * 4).next_multiple_of(8);
        if data_off % 8 != 0
            || index_off % 8 != 0
            || data_off < pages_off
            || index_off < data_off + data_len
            || page_end > b.len()
        {
            return Err(StoreError::Layout(format!(
                "relation {name}: page offsets out of bounds"
            )));
        }
        if ntuples > 0 && (!nslots.is_power_of_two() || nslots <= ntuples) {
            return Err(StoreError::Layout(format!(
                "relation {name}: {nslots} slots cannot index {ntuples} tuples"
            )));
        }
        let computed = crc32(&b[data_off..page_end]);
        if page_crc != computed {
            return Err(StoreError::CrcMismatch {
                section: "page",
                stored: page_crc,
                computed,
            });
        }
        let page = FrozenPage {
            region: Arc::clone(&region),
            arity,
            ntuples,
            data_off,
            index_off,
            nslots,
        };
        relations.push((name, Relation::from_frozen(page)));
    }

    let mapped = region.is_mapped();
    let db = Database::from_parts(interner, relations, seq);
    Ok(LoadedStore {
        db,
        epoch,
        seq,
        mapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn sample_db() -> Database {
        let mut db = Database::new();
        for (x, y) in [(1u64, 2u64), (2, 3), (3, 1), (7, 7)] {
            db.add_fact("e", &[&x.to_string(), &y.to_string()]);
        }
        db.add_fact("color", &["red"]);
        db.ensure_relation("empty", 3);
        db.set_mutation_seq(42);
        db
    }

    #[test]
    fn roundtrip_bytes() {
        let db = sample_db();
        let bytes = encode_store(&db, 9, 42);
        let loaded = load_store_bytes(&bytes).unwrap();
        assert_eq!(loaded.epoch, 9);
        assert_eq!(loaded.seq, 42);
        assert!(!loaded.mapped);
        assert_eq!(loaded.db.fingerprint(), db.fingerprint());
        assert_eq!(loaded.db.mutation_seq(), 42);
        let e = loaded.db.relation("e").unwrap();
        assert_eq!(e.len(), 4);
        assert!(e.is_frozen());
        let i = loaded.db.interner();
        let one = i.get("1").unwrap();
        let two = i.get("2").unwrap();
        let seven = i.get("7").unwrap();
        assert!(e.contains(&[one, two]));
        assert!(e.contains(&[seven, seven]));
        assert!(!e.contains(&[two, two]));
        assert_eq!(loaded.db.relation("empty").unwrap().len(), 0);
        assert!(!loaded
            .db
            .relation("empty")
            .unwrap()
            .contains(&[one, one, one]));
    }

    #[test]
    fn roundtrip_file_mmap() {
        let dir = std::env::temp_dir().join(format!("cqstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.cqs");
        let db = sample_db();
        std::fs::write(&path, encode_store(&db, 1, 42)).unwrap();
        let loaded = open_store(&path).unwrap();
        assert_eq!(loaded.db.fingerprint(), db.fingerprint());
        // Deleting the file under the map is safe; the pages stay valid.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.db.relation("e").unwrap().len(), 4);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn frozen_pages_are_sorted() {
        let db = sample_db();
        let loaded = load_store_bytes(&encode_store(&db, 0, 0)).unwrap();
        let e = loaded.db.relation("e").unwrap();
        let rows: Vec<Vec<Value>> = e.iter().map(|r| r.to_vec()).collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
        assert!(e.sorted_values().is_some());
    }

    #[test]
    fn reencoding_a_frozen_db_is_stable() {
        let db = sample_db();
        let bytes = encode_store(&db, 3, 42);
        let loaded = load_store_bytes(&bytes).unwrap();
        let again = encode_store(&loaded.db, 3, 42);
        assert_eq!(bytes, again);
    }
}
