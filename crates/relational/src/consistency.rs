//! Local consistency: the pairwise-consistency fixpoint and the join-tree
//! full reducer.
//!
//! Pairwise consistency (every view agrees with every other view on shared
//! columns) is the engine behind Lemma 4.3 (polynomial-time cores) and
//! Theorem 3.7: by the classical Beeri–Fagin–Maier–Yannakakis theorem, on an
//! acyclic schema pairwise consistency implies *global* consistency, i.e.
//! every view tuple extends to a full solution. The full reducer achieves
//! the same along a join tree with two semijoin sweeps.

use crate::Bindings;

/// Enforces pairwise consistency on a set of views by semijoining every pair
/// until a fixpoint is reached. Returns `true` if all views are nonempty at
/// the fixpoint (the emptiness test used by Lemma 4.3's homomorphism check).
///
/// Runs Jacobi-style rounds: each round reduces every view against the
/// previous round's snapshot, with the per-view reductions spread across
/// the worker pool. Semijoins only ever *shrink* views and the greatest
/// pairwise-consistent subinstance is unique, so the fixpoint — and hence
/// the views left behind on a `true` return — is independent of both the
/// round structure and the scheduling (it matches the sequential
/// Gauss–Seidel sweep byte for byte).
pub fn pairwise_consistency(views: &mut [Bindings]) -> bool {
    let n = views.len();
    if n == 0 {
        return true;
    }
    let indices: Vec<usize> = (0..n).collect();
    loop {
        let reduced: Vec<Bindings> = cqcount_exec::par_map(&indices, |&i| {
            let mut v = views[i].clone();
            for (j, w) in views.iter().enumerate() {
                if i != j {
                    let r = v.semijoin(w);
                    if r.len() != v.len() {
                        v = r;
                    }
                }
            }
            v
        });
        let mut changed = false;
        for (slot, v) in views.iter_mut().zip(reduced) {
            if v.len() != slot.len() {
                *slot = v;
                changed = true;
            }
        }
        if views.iter().any(Bindings::is_empty) {
            // By definition the fixpoint answer is already "no".
            return false;
        }
        if !changed {
            return true;
        }
    }
}

/// Full reducer over a rooted join forest: one upward sweep (parents
/// semijoined with children, bottom-up) and one downward sweep (children
/// semijoined with parents, top-down).
///
/// `parent[i]` is the parent of vertex `i` (`None` for roots) and `order`
/// must list children before parents (as produced by
/// `cqcount_hypergraph::join_forest`). On an acyclic schema the result is
/// globally consistent.
pub fn full_reduce(views: &mut [Bindings], parent: &[Option<usize>], order: &[usize]) {
    assert_eq!(views.len(), parent.len());
    assert_eq!(views.len(), order.len());
    // Upward: process children before parents.
    for &v in order {
        if let Some(p) = parent[v] {
            views[p] = views[p].semijoin(&views[v]);
        }
    }
    // Downward: process parents before children.
    for &v in order.iter().rev() {
        if let Some(p) = parent[v] {
            views[v] = views[v].semijoin(&views[p]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn v(id: u32) -> Value {
        Value(id)
    }

    fn b(cols: &[u32], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter()
                .map(|r| r.iter().map(|&x| v(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn pairwise_removes_dangling() {
        // R(1,2) = {(1,10),(2,20)}, S(2,3) = {(10,100)}: (2,20) dangles.
        let mut views = vec![b(&[1, 2], &[&[1, 10], &[2, 20]]), b(&[2, 3], &[&[10, 100]])];
        assert!(pairwise_consistency(&mut views));
        assert_eq!(views[0].len(), 1);
        assert!(views[0].contains(&[v(1), v(10)]));
    }

    #[test]
    fn pairwise_detects_emptiness() {
        let mut views = vec![b(&[1], &[&[1]]), b(&[1], &[&[2]])];
        assert!(!pairwise_consistency(&mut views));
    }

    #[test]
    fn pairwise_propagates_transitively() {
        // Chain R(1,2) - S(2,3) - T(3,4); T constrains S which constrains R.
        let mut views = vec![
            b(&[1, 2], &[&[1, 10], &[2, 20]]),
            b(&[2, 3], &[&[10, 100], &[20, 200]]),
            b(&[3, 4], &[&[100, 7]]),
        ];
        assert!(pairwise_consistency(&mut views));
        assert_eq!(views[0].len(), 1);
        assert_eq!(views[1].len(), 1);
    }

    #[test]
    fn full_reduce_on_path() {
        // Join tree: 0 - 1 - 2 rooted at 0 (parent[1]=0, parent[2]=1).
        let mut views = vec![
            b(&[1, 2], &[&[1, 10], &[2, 20]]),
            b(&[2, 3], &[&[10, 100], &[20, 200], &[30, 300]]),
            b(&[3, 4], &[&[100, 7]]),
        ];
        let parent = vec![None, Some(0), Some(1)];
        let order = vec![2, 1, 0];
        full_reduce(&mut views, &parent, &order);
        assert_eq!(views[0].len(), 1);
        assert_eq!(views[1].len(), 1);
        assert_eq!(views[2].len(), 1);
        // Global consistency on this acyclic instance: the single surviving
        // tuples join into the unique solution (1,10,100,7).
        let sol = views[0].join(&views[1]).join(&views[2]);
        assert_eq!(sol.len(), 1);
        assert!(sol.contains(&[v(1), v(10), v(100), v(7)]));
    }

    #[test]
    fn full_reduce_matches_pairwise_on_tree_schemas() {
        // On an acyclic schema both procedures yield the same reduced views.
        let make = || {
            vec![
                b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 30]]),
                b(&[2, 3], &[&[10, 5], &[20, 6]]),
                b(&[2, 4], &[&[10, 9], &[30, 9]]),
            ]
        };
        let mut a = make();
        // star rooted at 0: children 1 and 2
        full_reduce(&mut a, &[None, Some(0), Some(0)], &[1, 2, 0]);
        let mut b2 = make();
        pairwise_consistency(&mut b2);
        assert_eq!(a, b2);
    }

    #[test]
    fn empty_inputs() {
        let mut none: Vec<Bindings> = vec![];
        assert!(pairwise_consistency(&mut none));
        full_reduce(&mut none, &[], &[]);
    }
}
