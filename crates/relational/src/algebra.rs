//! Sets of substitutions and the relational algebra of Section 2.
//!
//! A [`Bindings`] value is a set of substitutions `θ : cols → Values` over a
//! fixed, sorted column list — the paper's sets `S` of substitutions with
//! domain `W`. The operations are exactly those the paper uses: natural join
//! `S₁ ⋈ S₂`, semijoin `S₁ ⋉ S₂ = π_{W₁}(S₁ ⋈ S₂)`, projection `π_W`, and
//! selection `σ_θ`.
//!
//! The representation is canonical (columns ascending, rows sorted and
//! deduplicated), so `Bindings` values can be compared, hashed and used as
//! the `#`-relation elements of the Pichler–Skritek algorithm (Figure 13).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::{Col, Relation, Tuple, Value};

/// A term in an atom evaluation: a column (variable) or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColTerm {
    /// A variable, identified by its column id.
    Var(Col),
    /// A constant value.
    Const(Value),
}

/// A set of substitutions over a sorted column list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Bindings {
    cols: Vec<Col>,
    /// Sorted, deduplicated rows; `rows[i][j]` is the value of `cols[j]`.
    rows: Vec<Tuple>,
}

impl Bindings {
    /// The unit: zero columns, one (empty) substitution. Identity for ⋈.
    pub fn unit() -> Bindings {
        Bindings {
            cols: vec![],
            rows: vec![Box::new([])],
        }
    }

    /// No substitutions at all over the given columns.
    pub fn empty(mut cols: Vec<Col>) -> Bindings {
        cols.sort_unstable();
        cols.dedup();
        Bindings { cols, rows: vec![] }
    }

    /// Builds a bindings set from a column list and rows (one value per
    /// column, in the order given). Columns are sorted, rows permuted
    /// accordingly, then sorted and deduplicated.
    ///
    /// Panics on duplicate columns or row arity mismatch.
    pub fn from_rows(cols: Vec<Col>, rows: Vec<Vec<Value>>) -> Bindings {
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.sort_unstable_by_key(|&i| cols[i]);
        let sorted_cols: Vec<Col> = order.iter().map(|&i| cols[i]).collect();
        assert!(
            sorted_cols.windows(2).all(|w| w[0] < w[1]),
            "duplicate columns in Bindings::from_rows"
        );
        let mut out: Vec<Tuple> = rows
            .into_iter()
            .map(|r| {
                assert_eq!(r.len(), order.len(), "row arity mismatch");
                order.iter().map(|&i| r[i]).collect()
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        Bindings {
            cols: sorted_cols,
            rows: out,
        }
    }

    /// Evaluates an atom `r(t₁, ..., tρ)` against a stored relation:
    /// constants are matched, repeated variables force equality, and the
    /// result is the set of substitutions over the atom's distinct columns.
    ///
    /// Panics if `terms.len() != relation.arity()`.
    pub fn from_atom(relation: &Relation, terms: &[ColTerm]) -> Bindings {
        assert_eq!(terms.len(), relation.arity(), "atom arity mismatch");
        // First occurrence position of each distinct column.
        let mut cols: Vec<Col> = Vec::new();
        let mut first_pos: Vec<usize> = Vec::new();
        for (i, t) in terms.iter().enumerate() {
            if let ColTerm::Var(c) = t {
                if !cols.contains(c) {
                    cols.push(*c);
                    first_pos.push(i);
                }
            }
        }
        let mut rows = Vec::new();
        'tuple: for tup in relation.iter() {
            for (i, t) in terms.iter().enumerate() {
                match t {
                    ColTerm::Const(v) => {
                        if tup[i] != *v {
                            continue 'tuple;
                        }
                    }
                    ColTerm::Var(c) => {
                        // Repeated variable: must match its first occurrence.
                        let fp = first_pos[cols.iter().position(|x| x == c).unwrap()];
                        if tup[i] != tup[fp] {
                            continue 'tuple;
                        }
                    }
                }
            }
            rows.push(first_pos.iter().map(|&p| tup[p]).collect());
        }
        Bindings::from_rows(cols, rows)
    }

    /// The (sorted) column list.
    pub fn cols(&self) -> &[Col] {
        &self.cols
    }

    /// The canonical (sorted) rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of substitutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` iff there are no substitutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns `true` iff the given row (in column order) is present.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.binary_search_by(|t| t.as_ref().cmp(row)).is_ok()
    }

    /// Positions in `self.cols` of the columns shared with `other`.
    fn shared_positions(&self, other: &Bindings) -> (Vec<usize>, Vec<usize>) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.cols.len() && j < other.cols.len() {
            match self.cols[i].cmp(&other.cols[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    left.push(i);
                    right.push(j);
                    i += 1;
                    j += 1;
                }
            }
        }
        (left, right)
    }

    fn key_of(row: &Tuple, positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&p| row[p]).collect()
    }

    /// Natural join `self ⋈ other`.
    pub fn join(&self, other: &Bindings) -> Bindings {
        let (lpos, rpos) = self.shared_positions(other);
        // Index the smaller side.
        if other.rows.len() < self.rows.len() {
            return other.join(self);
        }
        let mut index: FxHashMap<Vec<Value>, Vec<&Tuple>> = FxHashMap::default();
        for row in &other.rows {
            index
                .entry(Self::key_of(row, &rpos))
                .or_default()
                .push(row);
        }
        // Output columns: union, with a merge plan.
        let mut out_cols: Vec<Col> = self.cols.clone();
        let extra_positions: Vec<usize> = (0..other.cols.len())
            .filter(|p| !rpos.contains(p))
            .collect();
        out_cols.extend(extra_positions.iter().map(|&p| other.cols[p]));
        let col_order: Vec<usize> = {
            let mut order: Vec<usize> = (0..out_cols.len()).collect();
            order.sort_unstable_by_key(|&i| out_cols[i]);
            order
        };
        let mut rows = Vec::new();
        for lrow in &self.rows {
            if let Some(matches) = index.get(&Self::key_of(lrow, &lpos)) {
                for rrow in matches {
                    let combined: Vec<Value> = lrow
                        .iter()
                        .copied()
                        .chain(extra_positions.iter().map(|&p| rrow[p]))
                        .collect();
                    let tuple: Tuple = col_order.iter().map(|&i| combined[i]).collect();
                    rows.push(tuple);
                }
            }
        }
        rows.sort_unstable();
        rows.dedup();
        let sorted_cols: Vec<Col> = col_order.iter().map(|&i| out_cols[i]).collect();
        Bindings {
            cols: sorted_cols,
            rows,
        }
    }

    /// Semijoin `self ⋉ other = π_{cols(self)}(self ⋈ other)`.
    pub fn semijoin(&self, other: &Bindings) -> Bindings {
        let (lpos, rpos) = self.shared_positions(other);
        if lpos.is_empty() {
            // No shared columns: keep everything iff `other` is nonempty.
            return if other.is_empty() {
                Bindings {
                    cols: self.cols.clone(),
                    rows: vec![],
                }
            } else {
                self.clone()
            };
        }
        let keys: FxHashSet<Vec<Value>> = other
            .rows
            .iter()
            .map(|r| Self::key_of(r, &rpos))
            .collect();
        let rows = self
            .rows
            .iter()
            .filter(|r| keys.contains(&Self::key_of(r, &lpos)))
            .cloned()
            .collect();
        Bindings {
            cols: self.cols.clone(),
            rows,
        }
    }

    /// Projection `π_keep(self)` (columns not present are ignored).
    pub fn project(&self, keep: &[Col]) -> Bindings {
        let positions: Vec<usize> = (0..self.cols.len())
            .filter(|&i| keep.contains(&self.cols[i]))
            .collect();
        let mut rows: Vec<Tuple> = self
            .rows
            .iter()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        Bindings {
            cols: positions.iter().map(|&p| self.cols[p]).collect(),
            rows,
        }
    }

    /// Selection `σ_{col = value}`.
    pub fn select_eq(&self, col: Col, value: Value) -> Bindings {
        let Some(pos) = self.cols.iter().position(|&c| c == col) else {
            return self.clone();
        };
        Bindings {
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r[pos] == value)
                .cloned()
                .collect(),
        }
    }

    /// Selection by a full sub-tuple over a set of columns: keeps the rows
    /// whose projection onto `sel.cols` equals `sel`'s single row. This is
    /// the paper's `σ_θ(S)`.
    pub fn select_theta(&self, theta_cols: &[Col], theta: &[Value]) -> Bindings {
        let positions: Vec<usize> = theta_cols
            .iter()
            .map(|c| {
                self.cols
                    .iter()
                    .position(|x| x == c)
                    .expect("theta column not present")
            })
            .collect();
        Bindings {
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| positions.iter().zip(theta).all(|(&p, v)| r[p] == *v))
                .cloned()
                .collect(),
        }
    }

    /// Groups the rows by their projection onto `group_cols ∩ cols`,
    /// returning `(key, σ_key(self))` pairs — the initialization step
    /// `R_p⁰ = { σ_θ(r_p) | θ ∈ π_F(r_p) }` of Figure 13.
    pub fn partition_by(&self, group_cols: &[Col]) -> Vec<(Tuple, Bindings)> {
        let positions: Vec<usize> = (0..self.cols.len())
            .filter(|&i| group_cols.contains(&self.cols[i]))
            .collect();
        let mut groups: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        let mut key_order: Vec<Tuple> = Vec::new();
        for row in &self.rows {
            let key: Tuple = positions.iter().map(|&p| row[p]).collect();
            match groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().push(row.clone());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![row.clone()]);
                    key_order.push(key);
                }
            }
        }
        key_order.sort_unstable();
        key_order
            .into_iter()
            .map(|k| {
                let rows = groups.remove(&k).unwrap();
                (
                    k,
                    Bindings {
                        cols: self.cols.clone(),
                        rows, // already sorted: subsequence of sorted rows
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Value {
        Value(id)
    }

    fn b(cols: &[Col], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter().map(|r| r.iter().map(|&x| v(x)).collect()).collect(),
        )
    }

    #[test]
    fn canonicalization() {
        // Columns get sorted and rows permuted to match.
        let x = Bindings::from_rows(vec![2, 1], vec![vec![v(20), v(10)]]);
        assert_eq!(x.cols(), &[1, 2]);
        assert_eq!(x.rows()[0].as_ref(), &[v(10), v(20)]);
        // Duplicate rows collapse.
        let y = b(&[1], &[&[5], &[5], &[6]]);
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn unit_and_empty() {
        let u = Bindings::unit();
        assert_eq!(u.len(), 1);
        let r = b(&[1, 2], &[&[1, 2], &[3, 4]]);
        assert_eq!(u.join(&r), r);
        let e = Bindings::empty(vec![1]);
        assert!(e.is_empty());
        assert!(e.join(&r).is_empty());
    }

    #[test]
    fn join_on_shared_column() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20]]);
        let r = b(&[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = l.join(&r);
        assert_eq!(j.cols(), &[1, 2, 3]);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[v(1), v(10), v(100)]));
        assert!(j.contains(&[v(1), v(10), v(101)]));
    }

    #[test]
    fn join_is_commutative() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 10]]);
        let r = b(&[2, 3], &[&[10, 100], &[20, 200]]);
        assert_eq!(l.join(&r), r.join(&l));
    }

    #[test]
    fn cartesian_product_when_disjoint() {
        let l = b(&[1], &[&[1], &[2]]);
        let r = b(&[2], &[&[10], &[20], &[30]]);
        assert_eq!(l.join(&r).len(), 6);
    }

    #[test]
    fn semijoin() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = b(&[2], &[&[10], &[30]]);
        let s = l.semijoin(&r);
        assert_eq!(s.cols(), &[1, 2]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[v(1), v(10)]) && s.contains(&[v(3), v(30)]));
        // ⋉ equals π(⋈)
        assert_eq!(s, l.join(&r).project(&[1, 2]));
    }

    #[test]
    fn semijoin_no_shared_cols() {
        let l = b(&[1], &[&[1]]);
        assert_eq!(l.semijoin(&b(&[2], &[&[9]])), l);
        assert!(l.semijoin(&Bindings::empty(vec![2])).is_empty());
    }

    #[test]
    fn project() {
        let x = b(&[1, 2, 3], &[&[1, 10, 100], &[1, 10, 101], &[2, 20, 200]]);
        let p = x.project(&[1, 2]);
        assert_eq!(p.cols(), &[1, 2]);
        assert_eq!(p.len(), 2);
        // projecting to nothing yields unit iff nonempty
        let all = x.project(&[]);
        assert_eq!(all, Bindings::unit());
        assert_eq!(Bindings::empty(vec![1]).project(&[]).len(), 0);
    }

    #[test]
    fn select() {
        let x = b(&[1, 2], &[&[1, 10], &[2, 20]]);
        assert_eq!(x.select_eq(1, v(1)).len(), 1);
        assert_eq!(x.select_eq(9, v(1)), x); // absent column: no-op
        let t = x.select_theta(&[1, 2], &[v(2), v(20)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_atom_with_constants_and_repeats() {
        let r = Relation::from_rows(vec![
            vec![v(1), v(1), v(5)],
            vec![v(1), v(2), v(5)],
            vec![v(2), v(2), v(7)],
        ]);
        // r(X, X, 5): repeated variable + constant
        let out = Bindings::from_atom(&r, &[ColTerm::Var(0), ColTerm::Var(0), ColTerm::Const(v(5))]);
        assert_eq!(out.cols(), &[0]);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[v(1)]));
    }

    #[test]
    fn partition_by_groups() {
        let x = b(&[1, 2], &[&[1, 10], &[1, 11], &[2, 20]]);
        let parts = x.partition_by(&[1]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0.as_ref(), &[v(1)]);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].1.len(), 1);
        // partitioning by no columns returns one group with everything
        let whole = x.partition_by(&[]);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].1, x);
    }
}
