//! Sets of substitutions and the relational algebra of Section 2.
//!
//! A [`Bindings`] value is a set of substitutions `θ : cols → Values` over a
//! fixed, sorted column list — the paper's sets `S` of substitutions with
//! domain `W`. The operations are exactly those the paper uses: natural join
//! `S₁ ⋈ S₂`, semijoin `S₁ ⋉ S₂ = π_{W₁}(S₁ ⋈ S₂)`, projection `π_W`, and
//! selection `σ_θ`.
//!
//! The representation is canonical (columns ascending, rows sorted and
//! deduplicated), so `Bindings` values can be compared, hashed and used as
//! the `#`-relation elements of the Pichler–Skritek algorithm (Figure 13).
//!
//! # Kernel design
//!
//! The join/semijoin/grouping kernels never materialize per-row keys. Each
//! operation first builds a small *plan* from the two (sorted) column lists
//! — shared positions, output layout — and then works on the rows through
//! position-indexed comparators over borrowed slices. Joins run as
//! sort-merge over key-grouped row indices; when the shared columns are a
//! prefix of a side's column list, the canonical row order *is* key order
//! and the grouping sort is skipped entirely (the sort-merge fast path).
//! Because the canonical form sorts and dedups at the end, the parallel
//! row-chunked paths (via [`cqcount_exec::par_chunks`]) are byte-identical
//! to the sequential ones.

use crate::fxhash::FxHashMap;
use crate::{Col, Relation, Tuple, Value};
use cqcount_obs as obs;
use std::cmp::Ordering;

/// Total size in bytes of the tuples a result materializes, for the
/// `bytes_out` span counter.
fn bytes_of(b: &Bindings) -> u64 {
    (b.rows.len() * b.cols.len() * std::mem::size_of::<Value>()) as u64
}

/// Row-count threshold below which the kernels stay sequential: chunking
/// costs more than it saves on small inputs, and tiny Bindings dominate the
/// decomposition pipelines.
const PAR_MIN_ROWS: usize = 4096;

/// Half-open `[start, end)` range of row indices within a sorted order.
type Span = (u32, u32);

/// A term in an atom evaluation: a column (variable) or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColTerm {
    /// A variable, identified by its column id.
    Var(Col),
    /// A constant value.
    Const(Value),
}

/// A set of substitutions over a sorted column list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Bindings {
    cols: Vec<Col>,
    /// Sorted, deduplicated rows; `rows[i][j]` is the value of `cols[j]`.
    rows: Vec<Tuple>,
}

/// Compares two rows by their values at the given position lists
/// (`a[apos[k]]` vs `b[bpos[k]]`), without materializing either key.
#[inline]
fn cmp_keys(a: &[Value], apos: &[usize], b: &[Value], bpos: &[usize]) -> Ordering {
    debug_assert_eq!(apos.len(), bpos.len());
    for (&pa, &pb) in apos.iter().zip(bpos) {
        match a[pa].cmp(&b[pb]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// True iff `positions` is exactly `0..positions.len()` — the key columns
/// are a prefix of the row, so canonical (lexicographic) row order is
/// already key order.
#[inline]
fn is_prefix(positions: &[usize]) -> bool {
    positions.iter().enumerate().all(|(i, &p)| i == p)
}

/// Row indices of `rows` arranged so equal keys (values at `positions`)
/// are contiguous and key-ascending, plus the `(start, end)` group bounds.
/// Skips the sort when the key is a row prefix (canonical order suffices).
fn key_groups(rows: &[Tuple], positions: &[usize]) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut order: Vec<u32> = (0..rows.len() as u32).collect();
    if !is_prefix(positions) {
        // Stable: rows are globally sorted, so equal-key runs stay in
        // canonical row order, which partition_by relies on.
        order
            .sort_by(|&a, &b| cmp_keys(&rows[a as usize], positions, &rows[b as usize], positions));
    }
    let mut groups = Vec::new();
    let mut start = 0u32;
    for i in 1..=order.len() as u32 {
        let boundary = i == order.len() as u32
            || cmp_keys(
                &rows[order[start as usize] as usize],
                positions,
                &rows[order[i as usize] as usize],
                positions,
            ) != Ordering::Equal;
        if boundary {
            groups.push((start, i));
            start = i;
        }
    }
    (order, groups)
}

/// Precomputed layout for `self ⋈ other`: shared key positions on both
/// sides and, for every output column (sorted union), which side and
/// position it is read from.
struct JoinPlan {
    lpos: Vec<usize>,
    rpos: Vec<usize>,
    out_cols: Vec<Col>,
    /// `(from_left, position)` per output column, in output order.
    emit: Vec<(bool, usize)>,
}

impl JoinPlan {
    fn new(lcols: &[Col], rcols: &[Col]) -> JoinPlan {
        let mut plan = JoinPlan {
            lpos: Vec::new(),
            rpos: Vec::new(),
            out_cols: Vec::with_capacity(lcols.len() + rcols.len()),
            emit: Vec::with_capacity(lcols.len() + rcols.len()),
        };
        let (mut i, mut j) = (0, 0);
        while i < lcols.len() && j < rcols.len() {
            match lcols[i].cmp(&rcols[j]) {
                Ordering::Less => {
                    plan.out_cols.push(lcols[i]);
                    plan.emit.push((true, i));
                    i += 1;
                }
                Ordering::Greater => {
                    plan.out_cols.push(rcols[j]);
                    plan.emit.push((false, j));
                    j += 1;
                }
                Ordering::Equal => {
                    plan.lpos.push(i);
                    plan.rpos.push(j);
                    plan.out_cols.push(lcols[i]);
                    plan.emit.push((true, i));
                    i += 1;
                    j += 1;
                }
            }
        }
        for (p, &c) in lcols.iter().enumerate().skip(i) {
            plan.out_cols.push(c);
            plan.emit.push((true, p));
        }
        for (p, &c) in rcols.iter().enumerate().skip(j) {
            plan.out_cols.push(c);
            plan.emit.push((false, p));
        }
        plan
    }

    /// Emits the combined tuple for a matched row pair, directly in output
    /// column order — one allocation per output row, nothing else.
    #[inline]
    fn emit_row(&self, lrow: &[Value], rrow: &[Value]) -> Tuple {
        self.emit
            .iter()
            .map(|&(from_left, p)| if from_left { lrow[p] } else { rrow[p] })
            .collect()
    }
}

impl Bindings {
    /// The unit: zero columns, one (empty) substitution. Identity for ⋈.
    pub fn unit() -> Bindings {
        Bindings {
            cols: vec![],
            rows: vec![Box::new([])],
        }
    }

    /// No substitutions at all over the given columns.
    pub fn empty(mut cols: Vec<Col>) -> Bindings {
        cols.sort_unstable();
        cols.dedup();
        Bindings { cols, rows: vec![] }
    }

    /// Builds a bindings set from a column list and rows (one value per
    /// column, in the order given). Columns are sorted, rows permuted
    /// accordingly, then sorted and deduplicated.
    ///
    /// Panics on duplicate columns or row arity mismatch.
    pub fn from_rows(cols: Vec<Col>, rows: Vec<Vec<Value>>) -> Bindings {
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.sort_unstable_by_key(|&i| cols[i]);
        let sorted_cols: Vec<Col> = order.iter().map(|&i| cols[i]).collect();
        assert!(
            sorted_cols.windows(2).all(|w| w[0] < w[1]),
            "duplicate columns in Bindings::from_rows"
        );
        let out: Vec<Tuple> = rows
            .into_iter()
            .map(|r| {
                assert_eq!(r.len(), order.len(), "row arity mismatch");
                order.iter().map(|&i| r[i]).collect()
            })
            .collect();
        Bindings::from_parts(sorted_cols, out)
    }

    /// Wraps rows the caller guarantees are already sorted, distinct, and
    /// in sorted column order — the wcoj kernel emits in exactly that
    /// order, so canonicalization is free there.
    pub(crate) fn from_sorted_rows(cols: Vec<Col>, rows: Vec<Tuple>) -> Bindings {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        Bindings { cols, rows }
    }

    /// Canonicalizes pre-permuted rows: sort + dedup over sorted columns.
    /// The single chokepoint that makes every parallel production
    /// deterministic — whatever order chunks arrive in, the canonical form
    /// is the same.
    fn from_parts(cols: Vec<Col>, mut rows: Vec<Tuple>) -> Bindings {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        rows.sort_unstable();
        rows.dedup();
        Bindings { cols, rows }
    }

    /// Evaluates an atom `r(t₁, ..., tρ)` against a stored relation:
    /// constants are matched, repeated variables force equality, and the
    /// result is the set of substitutions over the atom's distinct columns.
    ///
    /// Panics if `terms.len() != relation.arity()`.
    pub fn from_atom(relation: &Relation, terms: &[ColTerm]) -> Bindings {
        assert_eq!(terms.len(), relation.arity(), "atom arity mismatch");
        let sp = obs::trace::span("algebra.scan");
        if sp.is_armed() {
            sp.add("rows_in", relation.len() as u64);
        }
        // Per-position action, precomputed once (not per tuple): constants
        // to match, repeated variables to check against their first
        // occurrence, and nothing for first occurrences themselves.
        enum Check {
            Const(Value),
            EqPos(usize),
            None,
        }
        let mut cols: Vec<Col> = Vec::new();
        let mut first_pos: Vec<usize> = Vec::new();
        let mut checks: Vec<Check> = Vec::with_capacity(terms.len());
        for (i, t) in terms.iter().enumerate() {
            match t {
                ColTerm::Const(v) => checks.push(Check::Const(*v)),
                ColTerm::Var(c) => match cols.iter().position(|x| x == c) {
                    Some(k) => checks.push(Check::EqPos(first_pos[k])),
                    None => {
                        cols.push(*c);
                        first_pos.push(i);
                        checks.push(Check::None);
                    }
                },
            }
        }
        // Emit rows directly in sorted column order.
        let mut order: Vec<usize> = (0..cols.len()).collect();
        order.sort_unstable_by_key(|&i| cols[i]);
        let sorted_cols: Vec<Col> = order.iter().map(|&i| cols[i]).collect();
        let emit_pos: Vec<usize> = order.iter().map(|&i| first_pos[i]).collect();
        // The scan reads borrowed row slices straight out of the
        // relation's flat value array — for a frozen relation that is the
        // mapped page itself, no copy.
        let scan_range = |start: usize, end: usize| -> Vec<Tuple> {
            (start..end)
                .map(|i| relation.row(i))
                .filter(|tup| {
                    checks.iter().enumerate().all(|(i, c)| match c {
                        Check::Const(v) => tup[i] == *v,
                        Check::EqPos(p) => tup[i] == tup[*p],
                        Check::None => true,
                    })
                })
                .map(|tup| emit_pos.iter().map(|&p| tup[p]).collect())
                .collect()
        };
        let n = relation.len();
        let rows: Vec<Tuple> = if n >= PAR_MIN_ROWS {
            let blocks: Vec<(usize, usize)> = (0..n.div_ceil(PAR_MIN_ROWS))
                .map(|b| (b * PAR_MIN_ROWS, ((b + 1) * PAR_MIN_ROWS).min(n)))
                .collect();
            cqcount_exec::par_map(&blocks, |&(s, e)| scan_range(s, e))
                .into_iter()
                .flatten()
                .collect()
        } else {
            scan_range(0, n)
        };
        let out = Bindings::from_parts(sorted_cols, rows);
        if sp.is_armed() {
            sp.add("rows_out", out.rows.len() as u64);
            sp.add("bytes_out", bytes_of(&out));
        }
        out
    }

    /// The (sorted) column list.
    pub fn cols(&self) -> &[Col] {
        &self.cols
    }

    /// The canonical (sorted) rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of substitutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` iff there are no substitutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns `true` iff the given row (in column order) is present.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.binary_search_by(|t| t.as_ref().cmp(row)).is_ok()
    }

    /// Positions in `self.cols` / `other.cols` of the shared columns.
    fn shared_positions(&self, other: &Bindings) -> (Vec<usize>, Vec<usize>) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.cols.len() && j < other.cols.len() {
            match self.cols[i].cmp(&other.cols[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    left.push(i);
                    right.push(j);
                    i += 1;
                    j += 1;
                }
            }
        }
        (left, right)
    }

    /// Natural join `self ⋈ other` — sort-merge over key-grouped row
    /// indices. No per-row key tuples are ever allocated: grouping and the
    /// merge compare values in place through the position plans, and each
    /// output row is built in one shot in canonical column order.
    pub fn join(&self, other: &Bindings) -> Bindings {
        let sp = obs::trace::span("algebra.join");
        if sp.is_armed() {
            sp.add("rows_left", self.rows.len() as u64);
            sp.add("rows_right", other.rows.len() as u64);
        }
        let out = self.join_merge(other, &sp);
        if sp.is_armed() {
            sp.add("rows_out", out.rows.len() as u64);
            sp.add("bytes_out", bytes_of(&out));
        }
        out
    }

    fn join_merge(&self, other: &Bindings, sp: &obs::trace::Span) -> Bindings {
        let plan = JoinPlan::new(&self.cols, &other.cols);
        if plan.lpos.is_empty() {
            return self.cross_product(other, &plan);
        }
        let (lorder, lgroups) = key_groups(&self.rows, &plan.lpos);
        let (rorder, rgroups) = key_groups(&other.rows, &plan.rpos);
        // Merge the two key-sorted group lists into matched group pairs.
        let mut matches: Vec<((u32, u32), (u32, u32))> = Vec::new();
        let mut comparisons = 0u64;
        let (mut gi, mut gj) = (0, 0);
        while gi < lgroups.len() && gj < rgroups.len() {
            let lrow = &self.rows[lorder[lgroups[gi].0 as usize] as usize];
            let rrow = &other.rows[rorder[rgroups[gj].0 as usize] as usize];
            comparisons += 1;
            match cmp_keys(lrow, &plan.lpos, rrow, &plan.rpos) {
                Ordering::Less => gi += 1,
                Ordering::Greater => gj += 1,
                Ordering::Equal => {
                    matches.push((lgroups[gi], rgroups[gj]));
                    gi += 1;
                    gj += 1;
                }
            }
        }
        if sp.is_armed() {
            sp.add("merge_comparisons", comparisons);
        }
        // Emit the per-pair products; chunked over matched groups so large
        // joins parallelize, concatenation order fixed by the chunk index.
        let total_pairs: usize = matches
            .iter()
            .map(|&((ls, le), (rs, re))| (le - ls) as usize * (re - rs) as usize)
            .sum();
        let emit_chunk = |pairs: &[(Span, Span)]| -> Vec<Tuple> {
            let mut out = Vec::new();
            for &((ls, le), (rs, re)) in pairs {
                for &li in &lorder[ls as usize..le as usize] {
                    let lrow = &self.rows[li as usize];
                    for &ri in &rorder[rs as usize..re as usize] {
                        out.push(plan.emit_row(lrow, &other.rows[ri as usize]));
                    }
                }
            }
            out
        };
        // Parallelize only when the products dominate the group count:
        // near-1:1 joins (avg fan-out < 4) spend their time in the final
        // canonicalizing sort, not here, and chunked emission just adds
        // allocator contention and a flatten copy — the measured 100k-row
        // regression in BENCH_join_kernels.json.
        let emit_dominates = total_pairs >= 4 * matches.len();
        let rows: Vec<Tuple> = if total_pairs >= PAR_MIN_ROWS && matches.len() > 1 && emit_dominates
        {
            cqcount_exec::par_chunks(&matches, 1, |_, chunk| emit_chunk(chunk))
                .into_iter()
                .flatten()
                .collect()
        } else {
            emit_chunk(&matches)
        };
        Bindings::from_parts(plan.out_cols, rows)
    }

    /// Cartesian product (a join with no shared columns).
    fn cross_product(&self, other: &Bindings, plan: &JoinPlan) -> Bindings {
        let emit_chunk = |lrows: &[Tuple]| -> Vec<Tuple> {
            let mut out = Vec::with_capacity(lrows.len() * other.rows.len());
            for lrow in lrows {
                for rrow in &other.rows {
                    out.push(plan.emit_row(lrow, rrow));
                }
            }
            out
        };
        let total = self.rows.len().saturating_mul(other.rows.len());
        let rows: Vec<Tuple> = if total >= PAR_MIN_ROWS && self.rows.len() > 1 {
            cqcount_exec::par_chunks(&self.rows, 1, |_, chunk| emit_chunk(chunk))
                .into_iter()
                .flatten()
                .collect()
        } else {
            emit_chunk(&self.rows)
        };
        Bindings::from_parts(plan.out_cols.clone(), rows)
    }

    /// Semijoin `self ⋉ other = π_{cols(self)}(self ⋈ other)`.
    ///
    /// Probes a key-sorted index of `other` by binary search — no key
    /// allocation, no hash set. Kept rows are a subsequence of the
    /// canonical rows, so the result needs no re-sort, and chunked
    /// filtering concatenates back in order.
    pub fn semijoin(&self, other: &Bindings) -> Bindings {
        let sp = obs::trace::span("algebra.semijoin");
        if sp.is_armed() {
            sp.add("rows_left", self.rows.len() as u64);
            sp.add("rows_right", other.rows.len() as u64);
        }
        let out = self.semijoin_probe(other);
        if sp.is_armed() {
            sp.add("probes", self.rows.len() as u64);
            sp.add("rows_out", out.rows.len() as u64);
            sp.add("bytes_out", bytes_of(&out));
        }
        out
    }

    fn semijoin_probe(&self, other: &Bindings) -> Bindings {
        let (lpos, rpos) = self.shared_positions(other);
        if lpos.is_empty() {
            // No shared columns: keep everything iff `other` is nonempty.
            return if other.is_empty() {
                Bindings {
                    cols: self.cols.clone(),
                    rows: vec![],
                }
            } else {
                self.clone()
            };
        }
        // Key-sorted view of the probe side (identity when key is prefix).
        let mut rorder: Vec<u32> = (0..other.rows.len() as u32).collect();
        if !is_prefix(&rpos) {
            rorder.sort_unstable_by(|&a, &b| {
                cmp_keys(
                    &other.rows[a as usize],
                    &rpos,
                    &other.rows[b as usize],
                    &rpos,
                )
            });
        }
        let hit = |row: &Tuple| -> bool {
            rorder
                .binary_search_by(|&ri| cmp_keys(&other.rows[ri as usize], &rpos, row, &lpos))
                .is_ok()
        };
        let rows: Vec<Tuple> = if self.rows.len() >= PAR_MIN_ROWS {
            cqcount_exec::par_chunks(&self.rows, PAR_MIN_ROWS, |_, chunk| {
                chunk.iter().filter(|r| hit(r)).cloned().collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            self.rows.iter().filter(|r| hit(r)).cloned().collect()
        };
        Bindings {
            cols: self.cols.clone(),
            rows,
        }
    }

    /// Positions of `self.cols` entries present in `keep`, via a sorted
    /// merge walk (O(|cols| + |keep| log |keep|), not O(|cols|·|keep|)).
    fn keep_positions(&self, keep: &[Col]) -> Vec<usize> {
        let mut sorted_keep = keep.to_vec();
        sorted_keep.sort_unstable();
        sorted_keep.dedup();
        let mut positions = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.cols.len() && j < sorted_keep.len() {
            match self.cols[i].cmp(&sorted_keep[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    positions.push(i);
                    i += 1;
                    j += 1;
                }
            }
        }
        positions
    }

    /// Projection `π_keep(self)` (columns not present are ignored).
    pub fn project(&self, keep: &[Col]) -> Bindings {
        let sp = obs::trace::span("algebra.project");
        if sp.is_armed() {
            sp.add("rows_in", self.rows.len() as u64);
        }
        let out = self.project_map(keep);
        if sp.is_armed() {
            sp.add("rows_out", out.rows.len() as u64);
            sp.add("bytes_out", bytes_of(&out));
        }
        out
    }

    fn project_map(&self, keep: &[Col]) -> Bindings {
        let positions = self.keep_positions(keep);
        if positions.len() == self.cols.len() {
            return self.clone(); // projecting onto all columns: no-op
        }
        let out_cols: Vec<Col> = positions.iter().map(|&p| self.cols[p]).collect();
        let map_chunk = |chunk: &[Tuple]| -> Vec<Tuple> {
            chunk
                .iter()
                .map(|r| positions.iter().map(|&p| r[p]).collect())
                .collect()
        };
        let mut rows: Vec<Tuple> = if self.rows.len() >= PAR_MIN_ROWS {
            cqcount_exec::par_chunks(&self.rows, PAR_MIN_ROWS, |_, chunk| map_chunk(chunk))
                .into_iter()
                .flatten()
                .collect()
        } else {
            map_chunk(&self.rows)
        };
        if is_prefix(&positions) {
            // Prefix projection preserves canonical order; dedup suffices.
            rows.dedup();
            Bindings {
                cols: out_cols,
                rows,
            }
        } else {
            Bindings::from_parts(out_cols, rows)
        }
    }

    /// Selection `σ_{col = value}`.
    pub fn select_eq(&self, col: Col, value: Value) -> Bindings {
        let Ok(pos) = self.cols.binary_search(&col) else {
            return self.clone();
        };
        Bindings {
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r[pos] == value)
                .cloned()
                .collect(),
        }
    }

    /// Selection by a full sub-tuple over a set of columns: keeps the rows
    /// whose projection onto `sel.cols` equals `sel`'s single row. This is
    /// the paper's `σ_θ(S)`.
    pub fn select_theta(&self, theta_cols: &[Col], theta: &[Value]) -> Bindings {
        let positions: Vec<usize> = theta_cols
            .iter()
            .map(|c| {
                self.cols
                    .binary_search(c)
                    .expect("theta column not present")
            })
            .collect();
        Bindings {
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| positions.iter().zip(theta).all(|(&p, v)| r[p] == *v))
                .cloned()
                .collect(),
        }
    }

    /// Groups the rows by their projection onto `group_cols ∩ cols`,
    /// returning `(key, σ_key(self))` pairs in key order — the
    /// initialization step `R_p⁰ = { σ_θ(r_p) | θ ∈ π_F(r_p) }` of
    /// Figure 13. Group keys are materialized once per *group* (not per
    /// row); when the group columns are a prefix, the canonical row order
    /// is already grouped and nothing is sorted or hashed at all.
    pub fn partition_by(&self, group_cols: &[Col]) -> Vec<(Tuple, Bindings)> {
        let positions = self.keep_positions(group_cols);
        let (order, groups) = key_groups(&self.rows, &positions);
        groups
            .into_iter()
            .map(|(start, end)| {
                let rows: Vec<Tuple> = order[start as usize..end as usize]
                    .iter()
                    .map(|&i| self.rows[i as usize].clone())
                    .collect();
                let first = &rows[0];
                let key: Tuple = positions.iter().map(|&p| first[p]).collect();
                debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
                (
                    key,
                    Bindings {
                        cols: self.cols.clone(),
                        rows,
                    },
                )
            })
            .collect()
    }
}

/// The straw-man join kept for benchmarking: hashes a materialized
/// `Vec<Value>` key per row into a per-call table, then permutes each
/// output row through a column order — the allocation profile the
/// sort-merge kernel in [`Bindings::join`] was written to eliminate. Not
/// used by any production path.
#[doc(hidden)]
pub fn join_hash_baseline(left: &Bindings, right: &Bindings) -> Bindings {
    let (lpos, rpos) = {
        let mut l = Vec::new();
        let mut r = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < left.cols.len() && j < right.cols.len() {
            match left.cols[i].cmp(&right.cols[j]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    l.push(i);
                    r.push(j);
                    i += 1;
                    j += 1;
                }
            }
        }
        (l, r)
    };
    let key_of = |row: &Tuple, positions: &[usize]| -> Vec<Value> {
        positions.iter().map(|&p| row[p]).collect()
    };
    let mut index: FxHashMap<Vec<Value>, Vec<&Tuple>> = FxHashMap::default();
    for row in &right.rows {
        index.entry(key_of(row, &rpos)).or_default().push(row);
    }
    let mut out_cols: Vec<Col> = left.cols.clone();
    let extra_positions: Vec<usize> = (0..right.cols.len())
        .filter(|p| !rpos.contains(p))
        .collect();
    out_cols.extend(extra_positions.iter().map(|&p| right.cols[p]));
    let col_order: Vec<usize> = {
        let mut order: Vec<usize> = (0..out_cols.len()).collect();
        order.sort_unstable_by_key(|&i| out_cols[i]);
        order
    };
    let mut rows = Vec::new();
    for lrow in &left.rows {
        if let Some(matches) = index.get(&key_of(lrow, &lpos)) {
            for rrow in matches {
                let combined: Vec<Value> = lrow
                    .iter()
                    .copied()
                    .chain(extra_positions.iter().map(|&p| rrow[p]))
                    .collect();
                let tuple: Tuple = col_order.iter().map(|&i| combined[i]).collect();
                rows.push(tuple);
            }
        }
    }
    rows.sort_unstable();
    rows.dedup();
    let sorted_cols: Vec<Col> = col_order.iter().map(|&i| out_cols[i]).collect();
    Bindings {
        cols: sorted_cols,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Value {
        Value(id)
    }

    fn b(cols: &[Col], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter()
                .map(|r| r.iter().map(|&x| v(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn canonicalization() {
        // Columns get sorted and rows permuted to match.
        let x = Bindings::from_rows(vec![2, 1], vec![vec![v(20), v(10)]]);
        assert_eq!(x.cols(), &[1, 2]);
        assert_eq!(x.rows()[0].as_ref(), &[v(10), v(20)]);
        // Duplicate rows collapse.
        let y = b(&[1], &[&[5], &[5], &[6]]);
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn unit_and_empty() {
        let u = Bindings::unit();
        assert_eq!(u.len(), 1);
        let r = b(&[1, 2], &[&[1, 2], &[3, 4]]);
        assert_eq!(u.join(&r), r);
        let e = Bindings::empty(vec![1]);
        assert!(e.is_empty());
        assert!(e.join(&r).is_empty());
    }

    #[test]
    fn join_on_shared_column() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20]]);
        let r = b(&[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = l.join(&r);
        assert_eq!(j.cols(), &[1, 2, 3]);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[v(1), v(10), v(100)]));
        assert!(j.contains(&[v(1), v(10), v(101)]));
    }

    #[test]
    fn join_is_commutative() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 10]]);
        let r = b(&[2, 3], &[&[10, 100], &[20, 200]]);
        assert_eq!(l.join(&r), r.join(&l));
    }

    #[test]
    fn join_prefix_fast_path_matches_general() {
        // Shared column 1 is a prefix of the left (cols [1,2]) and of the
        // right (cols [1,3]): both sides take the no-sort fast path.
        let l = b(&[1, 2], &[&[1, 10], &[1, 11], &[2, 20]]);
        let r = b(&[1, 3], &[&[1, 7], &[2, 8], &[2, 9]]);
        let j = l.join(&r);
        assert_eq!(j.cols(), &[1, 2, 3]);
        assert_eq!(j.len(), 4);
        // Shared column 3 is a suffix on the left (cols [1,3]): general path.
        let l2 = b(&[1, 3], &[&[1, 7], &[2, 7], &[3, 8]]);
        let r2 = b(&[3], &[&[7]]);
        let j2 = l2.join(&r2);
        assert_eq!(j2.len(), 2);
        assert_eq!(j2, join_hash_baseline(&l2, &r2));
    }

    #[test]
    fn join_matches_hash_baseline() {
        let l = b(&[1, 2, 4], &[&[1, 10, 5], &[2, 20, 5], &[3, 10, 6]]);
        let r = b(&[2, 3], &[&[10, 100], &[10, 101], &[20, 200]]);
        assert_eq!(l.join(&r), join_hash_baseline(&l, &r));
        assert_eq!(r.join(&l), join_hash_baseline(&r, &l));
    }

    #[test]
    fn cartesian_product_when_disjoint() {
        let l = b(&[1], &[&[1], &[2]]);
        let r = b(&[2], &[&[10], &[20], &[30]]);
        assert_eq!(l.join(&r).len(), 6);
    }

    #[test]
    fn semijoin() {
        let l = b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = b(&[2], &[&[10], &[30]]);
        let s = l.semijoin(&r);
        assert_eq!(s.cols(), &[1, 2]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[v(1), v(10)]) && s.contains(&[v(3), v(30)]));
        // ⋉ equals π(⋈)
        assert_eq!(s, l.join(&r).project(&[1, 2]));
    }

    #[test]
    fn semijoin_no_shared_cols() {
        let l = b(&[1], &[&[1]]);
        assert_eq!(l.semijoin(&b(&[2], &[&[9]])), l);
        assert!(l.semijoin(&Bindings::empty(vec![2])).is_empty());
    }

    #[test]
    fn project() {
        let x = b(&[1, 2, 3], &[&[1, 10, 100], &[1, 10, 101], &[2, 20, 200]]);
        let p = x.project(&[1, 2]);
        assert_eq!(p.cols(), &[1, 2]);
        assert_eq!(p.len(), 2);
        // non-prefix projection exercises the re-sorting path
        let q = x.project(&[3]);
        assert_eq!(q.cols(), &[3]);
        assert_eq!(q.len(), 3);
        // projecting to nothing yields unit iff nonempty
        let all = x.project(&[]);
        assert_eq!(all, Bindings::unit());
        assert_eq!(Bindings::empty(vec![1]).project(&[]).len(), 0);
    }

    #[test]
    fn select() {
        let x = b(&[1, 2], &[&[1, 10], &[2, 20]]);
        assert_eq!(x.select_eq(1, v(1)).len(), 1);
        assert_eq!(x.select_eq(9, v(1)), x); // absent column: no-op
        let t = x.select_theta(&[1, 2], &[v(2), v(20)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_atom_with_constants_and_repeats() {
        let r = Relation::from_rows(vec![
            vec![v(1), v(1), v(5)],
            vec![v(1), v(2), v(5)],
            vec![v(2), v(2), v(7)],
        ]);
        // r(X, X, 5): repeated variable + constant
        let out = Bindings::from_atom(
            &r,
            &[ColTerm::Var(0), ColTerm::Var(0), ColTerm::Const(v(5))],
        );
        assert_eq!(out.cols(), &[0]);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&[v(1)]));
    }

    #[test]
    fn from_atom_emits_sorted_columns_for_unsorted_terms() {
        let r = Relation::from_rows(vec![vec![v(1), v(2)], vec![v(3), v(4)]]);
        // r(Y, X) with X < Y: output columns must still come back sorted.
        let out = Bindings::from_atom(&r, &[ColTerm::Var(7), ColTerm::Var(2)]);
        assert_eq!(out.cols(), &[2, 7]);
        assert!(out.contains(&[v(2), v(1)]));
        assert!(out.contains(&[v(4), v(3)]));
    }

    #[test]
    fn partition_by_groups() {
        let x = b(&[1, 2], &[&[1, 10], &[1, 11], &[2, 20]]);
        let parts = x.partition_by(&[1]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0.as_ref(), &[v(1)]);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].1.len(), 1);
        // partitioning by no columns returns one group with everything
        let whole = x.partition_by(&[]);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].1, x);
    }

    #[test]
    fn partition_by_non_prefix_keys_sorted() {
        let x = b(&[1, 2], &[&[1, 20], &[2, 10], &[3, 20]]);
        let parts = x.partition_by(&[2]);
        assert_eq!(parts.len(), 2);
        // Keys ascend even though column 2 is not a row prefix.
        assert_eq!(parts[0].0.as_ref(), &[v(10)]);
        assert_eq!(parts[1].0.as_ref(), &[v(20)]);
        assert_eq!(parts[1].1.len(), 2);
        // Rows within each group stay canonically sorted.
        for (_, g) in &parts {
            assert!(g.rows().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parallel_kernels_match_sequential() {
        use cqcount_arith::prng::Rng;
        let mut rng = Rng::seed_from_u64(0xA11E);
        let mut lrows = Vec::new();
        let mut rrows = Vec::new();
        for _ in 0..6000 {
            lrows.push(vec![v(rng.range_u32(0, 50)), v(rng.range_u32(0, 50))]);
            rrows.push(vec![v(rng.range_u32(0, 50)), v(rng.range_u32(0, 50))]);
        }
        let l = Bindings::from_rows(vec![1, 2], lrows);
        let r = Bindings::from_rows(vec![2, 3], rrows);
        let (js, ss, ps) =
            cqcount_exec::with_threads(1, || (l.join(&r), l.semijoin(&r), l.project(&[2])));
        let (jp, sp, pp) =
            cqcount_exec::with_threads(4, || (l.join(&r), l.semijoin(&r), l.project(&[2])));
        assert_eq!(js, jp);
        assert_eq!(ss, sp);
        assert_eq!(ps, pp);
        assert_eq!(js, join_hash_baseline(&l, &r));
    }
}
