//! Interned constants.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned constant of the universe `U` (Section 2). Comparison and
/// hashing are O(1); the owning [`Interner`] recovers the printable name.
///
/// `repr(transparent)`: a `Value` is exactly a `u32` in memory, so the
/// store layer can view a mapped `&[u32]` page as `&[Value]` without
/// copying (see [`crate::store`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Value(pub u32);

impl Value {
    /// The raw id.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A string interner mapping constant names to dense [`Value`] ids.
#[derive(Clone, Default, Debug)]
pub struct Interner {
    names: Vec<String>,
    map: FxHashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its (stable) value id.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&id) = self.map.get(name) {
            return Value(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        Value(id)
    }

    /// Interns the decimal form of `n` (convenient for generated data).
    pub fn intern_u64(&mut self, n: u64) -> Value {
        self.intern(&n.to_string())
    }

    /// Rebuilds an interner from names in id order (id `i` = `names[i]`),
    /// as persisted by the store layer. Names must be distinct.
    pub fn from_names(names: Vec<String>) -> Interner {
        let map = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Interner { names, map }
    }

    /// Approximate heap footprint of the interner, in bytes (names plus
    /// the name→id map); used by the per-db memory stats.
    pub fn resident_bytes(&self) -> usize {
        let strings: usize = self
            .names
            .iter()
            .map(|s| s.capacity() + std::mem::size_of::<String>())
            .sum();
        // Each map entry holds a second copy of the name plus the id.
        strings * 2 + self.names.len() * std::mem::size_of::<u32>()
    }

    /// Looks up a name without interning.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.map.get(name).map(|&id| Value(id))
    }

    /// The printable name of a value.
    pub fn name(&self, v: Value) -> &str {
        &self.names[v.0 as usize]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned values.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        (0..self.names.len() as u32).map(Value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(a), "alpha");
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.get("gamma"), None);
    }

    #[test]
    fn numeric_interning() {
        let mut i = Interner::new();
        let v = i.intern_u64(42);
        assert_eq!(i.name(v), "42");
        assert_eq!(i.intern("42"), v);
    }

    #[test]
    fn values_iterates_all() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        assert_eq!(i.values().count(), 2);
    }
}
