//! Degree statistics (Definition 6.1 and the introduction of Section 6).
//!
//! For a set of columns `F` and a bindings set `S`, the *degree* of a tuple
//! `t ∈ π_F(S)` is `|σ_t(S)|` — the number of extensions of `t` to a full
//! row of `S`. `deg(F, S)` is the maximum degree over the tuples of the
//! projection. Functional dependencies (keys) give degree 1; quasi-keys give
//! small constants; the hybrid method of Section 6 exploits exactly this.

use crate::fxhash::FxHashMap;
use crate::{Bindings, Col, Tuple};

impl Bindings {
    /// `deg(F, self)`: the maximum number of rows sharing one projection
    /// onto `group_cols` (columns not present in `self` are ignored).
    /// Returns 0 for an empty bindings set.
    pub fn degree_wrt(&self, group_cols: &[Col]) -> usize {
        let positions: Vec<usize> = (0..self.cols().len())
            .filter(|&i| group_cols.contains(&self.cols()[i]))
            .collect();
        let mut counts: FxHashMap<Tuple, usize> = FxHashMap::default();
        let mut max = 0;
        for row in self.rows() {
            let key: Tuple = positions.iter().map(|&p| row[p]).collect();
            let c = counts.entry(key).or_insert(0);
            *c += 1;
            max = max.max(*c);
        }
        max
    }

    /// Returns `true` iff `group_cols` functionally determine the remaining
    /// columns (i.e. the degree is at most 1).
    pub fn is_key(&self, group_cols: &[Col]) -> bool {
        self.degree_wrt(group_cols) <= 1
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bindings, Value};

    fn v(id: u32) -> Value {
        Value(id)
    }

    fn b(cols: &[u32], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter()
                .map(|r| r.iter().map(|&x| v(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn degree_counts_extensions() {
        let s = b(&[1, 2], &[&[1, 10], &[1, 11], &[1, 12], &[2, 20]]);
        assert_eq!(s.degree_wrt(&[1]), 3);
        assert_eq!(s.degree_wrt(&[2]), 1);
        assert_eq!(s.degree_wrt(&[1, 2]), 1);
    }

    #[test]
    fn degree_with_no_group_cols_is_total_size() {
        let s = b(&[1], &[&[1], &[2], &[3]]);
        assert_eq!(s.degree_wrt(&[]), 3);
        // also when grouping by columns the bindings doesn't have
        assert_eq!(s.degree_wrt(&[99]), 3);
    }

    #[test]
    fn degree_of_empty_is_zero() {
        assert_eq!(Bindings::empty(vec![1]).degree_wrt(&[1]), 0);
    }

    #[test]
    fn keys() {
        // worker_id -> worker_info is a key (Example 1.5 flavour).
        let wi = b(&[1, 2], &[&[1, 100], &[2, 200], &[3, 300]]);
        assert!(wi.is_key(&[1]));
        assert!(!b(&[1, 2], &[&[1, 100], &[1, 200]]).is_key(&[1]));
    }
}
