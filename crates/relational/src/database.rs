//! Databases: named relations over a shared constant interner.

use crate::fxhash::FxHashMap;
use crate::{Interner, Relation, Value};

/// A database instance `D` (Section 2): a finite relational structure whose
/// universe is the set of interned constants.
#[derive(Clone, Debug, Default)]
pub struct Database {
    values: Interner,
    relations: FxHashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The constant interner.
    pub fn interner(&self) -> &Interner {
        &self.values
    }

    /// Mutable access to the constant interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.values
    }

    /// Interns a constant name.
    pub fn value(&mut self, name: &str) -> Value {
        self.values.intern(name)
    }

    /// Interns the decimal form of `n`.
    pub fn value_u64(&mut self, n: u64) -> Value {
        self.values.intern_u64(n)
    }

    /// Adds a ground atom `rel(values...)`, creating the relation on first
    /// use. Panics if the arity conflicts with earlier tuples.
    pub fn add_tuple(&mut self, rel: &str, values: Vec<Value>) {
        let arity = values.len();
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity))
            .insert(values);
    }

    /// Convenience: adds a ground atom with named constants.
    pub fn add_fact(&mut self, rel: &str, names: &[&str]) {
        let vals = names.iter().map(|n| self.values.intern(n)).collect();
        self.add_tuple(rel, vals);
    }

    /// Registers an empty relation of the given arity (so that queries over
    /// it are well-defined and evaluate to the empty set).
    pub fn ensure_relation(&mut self, rel: &str, arity: usize) {
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity));
    }

    /// Replaces (or installs) an entire relation.
    pub fn set_relation(&mut self, rel: &str, relation: Relation) {
        self.relations.insert(rel.to_owned(), relation);
    }

    /// Looks up a relation.
    pub fn relation(&self, rel: &str) -> Option<&Relation> {
        self.relations.get(rel)
    }

    /// Iterates over `(name, relation)` pairs (unordered).
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The largest relation cardinality `m` (Theorem 6.2's parameter).
    pub fn max_relation_size(&self) -> usize {
        self.relations
            .values()
            .map(Relation::len)
            .max()
            .unwrap_or(0)
    }

    /// Total number of tuples across all relations (a proxy for ‖D‖).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// A stable 64-bit content fingerprint of the instance, used by the
    /// serving layer to tag cached counts. Two databases with the same
    /// relations (by name) holding the same tuples (by constant *name*)
    /// fingerprint identically, regardless of interning order, insertion
    /// order, or unused interned constants; any added, removed or edited
    /// tuple changes the fingerprint (up to 64-bit collisions — cache
    /// *correctness* in the server comes from the epoch, not this hash).
    pub fn fingerprint(&self) -> u64 {
        // Per-value name hashes, computed once (FNV-1a, process-stable).
        let fnv = |bytes: &[u8]| -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        let value_hash: Vec<u64> = (0..self.values.len() as u32)
            .map(|i| fnv(self.values.name(Value(i)).as_bytes()))
            .collect();
        let mut total: u64 = 0;
        for (name, rel) in &self.relations {
            let seed = fnv(name.as_bytes()) ^ fnv(&(rel.arity() as u64).to_le_bytes());
            // Commutative tuple combine: insertion order is invisible.
            let mut tuples: u64 = 0;
            for tuple in rel.iter() {
                let mut h = seed;
                for v in tuple.iter() {
                    h = (h.rotate_left(13) ^ value_hash[v.id() as usize])
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
                tuples = tuples.wrapping_add(h | 1);
            }
            total = total.wrapping_add(seed.rotate_left(7) ^ tuples);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_lookup() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["b", "c"]);
        db.add_fact("edge", &["a", "b"]); // duplicate
        let r = db.relation("edge").unwrap();
        assert_eq!(r.len(), 2);
        assert!(db.relation("missing").is_none());
        let a = db.interner().get("a").unwrap();
        let b = db.interner().get("b").unwrap();
        assert!(r.contains(&[a, b]));
    }

    #[test]
    fn ensure_relation_creates_empty() {
        let mut db = Database::new();
        db.ensure_relation("r", 3);
        assert_eq!(db.relation("r").unwrap().arity(), 3);
        assert!(db.relation("r").unwrap().is_empty());
    }

    #[test]
    fn sizes() {
        let mut db = Database::new();
        db.add_fact("r", &["1", "2"]);
        db.add_fact("r", &["3", "4"]);
        db.add_fact("s", &["1"]);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn fingerprint_ignores_orders() {
        let mut a = Database::new();
        a.add_fact("r", &["x", "y"]);
        a.add_fact("r", &["y", "z"]);
        a.add_fact("s", &["x"]);
        // Different insertion order, different interning order.
        let mut b = Database::new();
        b.value("z");
        b.value("q_unused"); // unused constants are invisible
        b.add_fact("s", &["x"]);
        b.add_fact("r", &["y", "z"]);
        b.add_fact("r", &["x", "y"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sees_content_changes() {
        let mut a = Database::new();
        a.add_fact("r", &["x", "y"]);
        let base = a.fingerprint();
        let mut b = a.clone();
        b.add_fact("r", &["y", "x"]);
        assert_ne!(base, b.fingerprint());
        let mut c = Database::new();
        c.add_fact("r", &["x", "z"]);
        assert_ne!(base, c.fingerprint());
        let mut d = Database::new();
        d.add_fact("t", &["x", "y"]); // same tuple, different relation name
        assert_ne!(base, d.fingerprint());
        // column swap within a tuple is visible
        let mut e = Database::new();
        e.add_fact("r", &["y", "x"]);
        assert_ne!(base, e.fingerprint());
        // empty relation of a different arity is visible
        let mut f = a.clone();
        f.ensure_relation("empty", 3);
        assert_ne!(base, f.fingerprint());
    }

    #[test]
    fn set_relation_replaces() {
        let mut db = Database::new();
        db.add_fact("r", &["x"]);
        db.set_relation("r", Relation::new(2));
        assert_eq!(db.relation("r").unwrap().arity(), 2);
        assert!(db.relation("r").unwrap().is_empty());
    }
}
