//! Databases: named relations over a shared constant interner.

use crate::fxhash::FxHashMap;
use crate::{Interner, Relation, Value};

/// A database instance `D` (Section 2): a finite relational structure whose
/// universe is the set of interned constants.
#[derive(Clone, Debug, Default)]
pub struct Database {
    values: Interner,
    relations: FxHashMap<String, Relation>,
    /// Bumped by every *effective* [`insert_tuple`](Database::insert_tuple)
    /// / [`delete_tuple`](Database::delete_tuple) — a no-op mutation (tuple
    /// already present / already absent) leaves it unchanged. Distinct from
    /// the serving layer's RELOAD epoch: the epoch versions whole-instance
    /// swaps, the mutation sequence versions in-place tuple churn.
    mutation_seq: u64,
}

/// Why a single-tuple mutation was rejected. Rejected mutations leave the
/// database (and [`Database::mutation_seq`]) untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The tuple's width does not match the stored relation's arity.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// The stored relation's arity.
        expected: usize,
        /// The mutation's tuple width.
        got: usize,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::ArityMismatch { rel, expected, got } => {
                write!(f, "relation {rel} has arity {expected}, tuple has {got}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The constant interner.
    pub fn interner(&self) -> &Interner {
        &self.values
    }

    /// Mutable access to the constant interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.values
    }

    /// Interns a constant name.
    pub fn value(&mut self, name: &str) -> Value {
        self.values.intern(name)
    }

    /// Interns the decimal form of `n`.
    pub fn value_u64(&mut self, n: u64) -> Value {
        self.values.intern_u64(n)
    }

    /// Adds a ground atom `rel(values...)`, creating the relation on first
    /// use. Panics if the arity conflicts with earlier tuples.
    pub fn add_tuple(&mut self, rel: &str, values: Vec<Value>) {
        let arity = values.len();
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity))
            .insert(values);
    }

    /// Convenience: adds a ground atom with named constants.
    pub fn add_fact(&mut self, rel: &str, names: &[&str]) {
        let vals = names.iter().map(|n| self.values.intern(n)).collect();
        self.add_tuple(rel, vals);
    }

    /// Registers an empty relation of the given arity (so that queries over
    /// it are well-defined and evaluate to the empty set).
    pub fn ensure_relation(&mut self, rel: &str, arity: usize) {
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity));
    }

    /// Replaces (or installs) an entire relation.
    pub fn set_relation(&mut self, rel: &str, relation: Relation) {
        self.relations.insert(rel.to_owned(), relation);
    }

    /// Looks up a relation.
    pub fn relation(&self, rel: &str) -> Option<&Relation> {
        self.relations.get(rel)
    }

    /// Iterates over `(name, relation)` pairs (unordered).
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The largest relation cardinality `m` (Theorem 6.2's parameter).
    pub fn max_relation_size(&self) -> usize {
        self.relations
            .values()
            .map(Relation::len)
            .max()
            .unwrap_or(0)
    }

    /// Total number of tuples across all relations (a proxy for ‖D‖).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Single-tuple insert by constant names, creating the relation on
    /// first use (the serving layer treats a first-use relation as a
    /// structural change and falls back accordingly). Returns `true` iff
    /// the tuple was new; only an effective insert bumps
    /// [`mutation_seq`](Database::mutation_seq).
    pub fn insert_tuple(&mut self, rel: &str, names: &[&str]) -> Result<bool, MutationError> {
        if let Some(r) = self.relations.get(rel) {
            if r.arity() != names.len() {
                return Err(MutationError::ArityMismatch {
                    rel: rel.to_owned(),
                    expected: r.arity(),
                    got: names.len(),
                });
            }
        }
        let vals: Vec<Value> = names.iter().map(|n| self.values.intern(n)).collect();
        let arity = vals.len();
        let changed = self
            .relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity))
            .insert(vals);
        if changed {
            self.mutation_seq += 1;
        }
        Ok(changed)
    }

    /// Single-tuple delete by constant names. Deleting from an unknown
    /// relation, or a tuple naming a constant the database has never seen,
    /// is an effect-free `Ok(false)` — the tuple cannot be present. Only an
    /// effective delete bumps [`mutation_seq`](Database::mutation_seq).
    pub fn delete_tuple(&mut self, rel: &str, names: &[&str]) -> Result<bool, MutationError> {
        let Some(r) = self.relations.get_mut(rel) else {
            return Ok(false);
        };
        if r.arity() != names.len() {
            return Err(MutationError::ArityMismatch {
                rel: rel.to_owned(),
                expected: r.arity(),
                got: names.len(),
            });
        }
        let mut vals = Vec::with_capacity(names.len());
        for n in names {
            match self.values.get(n) {
                Some(v) => vals.push(v),
                None => return Ok(false),
            }
        }
        let changed = r.remove(&vals);
        if changed {
            self.mutation_seq += 1;
        }
        Ok(changed)
    }

    /// Assembles a database from recovered parts — the store loader's
    /// entry point ([`crate::store`]): an interner rebuilt from persisted
    /// names, relations (typically frozen pages), and the mutation
    /// sequence the image captured.
    pub fn from_parts(
        values: Interner,
        relations: Vec<(String, Relation)>,
        mutation_seq: u64,
    ) -> Database {
        Database {
            values,
            relations: relations.into_iter().collect(),
            mutation_seq,
        }
    }

    /// Bytes owned by the process allocator: heap relation storage plus
    /// the interner (approximate). Frozen pages in a real mmap region are
    /// excluded — they show up in [`mapped_bytes`](Database::mapped_bytes).
    pub fn resident_bytes(&self) -> usize {
        self.values.resident_bytes()
            + self
                .relations
                .values()
                .map(Relation::resident_bytes)
                .sum::<usize>()
    }

    /// Bytes borrowed from mmap'd store regions (shared page cache,
    /// reclaimable by the OS without touching the allocator).
    pub fn mapped_bytes(&self) -> usize {
        self.relations
            .values()
            .map(Relation::mapped_bytes)
            .sum::<usize>()
    }

    /// How many effective single-tuple mutations this instance has absorbed
    /// since construction (reloads reset it: a fresh instance starts at 0).
    pub fn mutation_seq(&self) -> u64 {
        self.mutation_seq
    }

    /// Restores the mutation sequence to a recorded value. Recovery uses
    /// this to make a database rebuilt from a snapshot (whose bulk loads
    /// do not count as mutations) report the sequence it had when the
    /// snapshot was taken, and to roll the counter back after un-applying
    /// a batch that could not be made durable.
    pub fn set_mutation_seq(&mut self, seq: u64) {
        self.mutation_seq = seq;
    }

    /// A stable 64-bit content fingerprint of the instance, used by the
    /// serving layer to tag cached counts. Two databases with the same
    /// relations (by name) holding the same tuples (by constant *name*)
    /// fingerprint identically, regardless of interning order, insertion
    /// order, or unused interned constants; any added, removed or edited
    /// tuple changes the fingerprint (up to 64-bit collisions — cache
    /// *correctness* in the server comes from the epoch, not this hash).
    pub fn fingerprint(&self) -> u64 {
        // Per-value name hashes, computed once (FNV-1a, process-stable).
        let fnv = |bytes: &[u8]| -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        let value_hash: Vec<u64> = (0..self.values.len() as u32)
            .map(|i| fnv(self.values.name(Value(i)).as_bytes()))
            .collect();
        let mut total: u64 = 0;
        for (name, rel) in &self.relations {
            let seed = fnv(name.as_bytes()) ^ fnv(&(rel.arity() as u64).to_le_bytes());
            // Commutative tuple combine: insertion order is invisible.
            let mut tuples: u64 = 0;
            for tuple in rel.iter() {
                let mut h = seed;
                for v in tuple.iter() {
                    h = (h.rotate_left(13) ^ value_hash[v.id() as usize])
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
                tuples = tuples.wrapping_add(h | 1);
            }
            total = total.wrapping_add(seed.rotate_left(7) ^ tuples);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_lookup() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["b", "c"]);
        db.add_fact("edge", &["a", "b"]); // duplicate
        let r = db.relation("edge").unwrap();
        assert_eq!(r.len(), 2);
        assert!(db.relation("missing").is_none());
        let a = db.interner().get("a").unwrap();
        let b = db.interner().get("b").unwrap();
        assert!(r.contains(&[a, b]));
    }

    #[test]
    fn ensure_relation_creates_empty() {
        let mut db = Database::new();
        db.ensure_relation("r", 3);
        assert_eq!(db.relation("r").unwrap().arity(), 3);
        assert!(db.relation("r").unwrap().is_empty());
    }

    #[test]
    fn sizes() {
        let mut db = Database::new();
        db.add_fact("r", &["1", "2"]);
        db.add_fact("r", &["3", "4"]);
        db.add_fact("s", &["1"]);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn fingerprint_ignores_orders() {
        let mut a = Database::new();
        a.add_fact("r", &["x", "y"]);
        a.add_fact("r", &["y", "z"]);
        a.add_fact("s", &["x"]);
        // Different insertion order, different interning order.
        let mut b = Database::new();
        b.value("z");
        b.value("q_unused"); // unused constants are invisible
        b.add_fact("s", &["x"]);
        b.add_fact("r", &["y", "z"]);
        b.add_fact("r", &["x", "y"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_sees_content_changes() {
        let mut a = Database::new();
        a.add_fact("r", &["x", "y"]);
        let base = a.fingerprint();
        let mut b = a.clone();
        b.add_fact("r", &["y", "x"]);
        assert_ne!(base, b.fingerprint());
        let mut c = Database::new();
        c.add_fact("r", &["x", "z"]);
        assert_ne!(base, c.fingerprint());
        let mut d = Database::new();
        d.add_fact("t", &["x", "y"]); // same tuple, different relation name
        assert_ne!(base, d.fingerprint());
        // column swap within a tuple is visible
        let mut e = Database::new();
        e.add_fact("r", &["y", "x"]);
        assert_ne!(base, e.fingerprint());
        // empty relation of a different arity is visible
        let mut f = a.clone();
        f.ensure_relation("empty", 3);
        assert_ne!(base, f.fingerprint());
    }

    #[test]
    fn mutation_roundtrip_and_seq() {
        let mut db = Database::new();
        db.add_fact("r", &["a", "b"]);
        assert_eq!(db.mutation_seq(), 0); // bulk loads are not mutations
        assert_eq!(db.insert_tuple("r", &["b", "c"]), Ok(true));
        assert_eq!(db.insert_tuple("r", &["b", "c"]), Ok(false)); // dup: no-op
        assert_eq!(db.mutation_seq(), 1);
        assert_eq!(db.delete_tuple("r", &["a", "b"]), Ok(true));
        assert_eq!(db.delete_tuple("r", &["a", "b"]), Ok(false));
        assert_eq!(db.mutation_seq(), 2);
        let r = db.relation("r").unwrap();
        assert_eq!(r.len(), 1);
        let (b, c) = (
            db.interner().get("b").unwrap(),
            db.interner().get("c").unwrap(),
        );
        assert!(r.contains(&[b, c]));
    }

    #[test]
    fn mutation_edge_cases() {
        let mut db = Database::new();
        db.add_fact("r", &["a", "b"]);
        // Arity conflicts are rejected without touching anything.
        assert!(matches!(
            db.insert_tuple("r", &["x"]),
            Err(MutationError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(db.delete_tuple("r", &["x", "y", "z"]).is_err());
        assert_eq!(db.mutation_seq(), 0);
        // Deletes of things that cannot exist are effect-free.
        assert_eq!(db.delete_tuple("nope", &["a"]), Ok(false));
        assert_eq!(db.delete_tuple("r", &["a", "never_interned"]), Ok(false));
        // Insert into a fresh relation creates it.
        assert_eq!(db.insert_tuple("s", &["a"]), Ok(true));
        assert_eq!(db.relation("s").unwrap().arity(), 1);
    }

    #[test]
    fn mutations_move_the_fingerprint_and_back() {
        let mut db = Database::new();
        db.add_fact("r", &["x", "y"]);
        let base = db.fingerprint();
        db.insert_tuple("r", &["y", "z"]).unwrap();
        assert_ne!(db.fingerprint(), base);
        db.delete_tuple("r", &["y", "z"]).unwrap();
        // Content-addressed: undoing the mutation restores the print.
        assert_eq!(db.fingerprint(), base);
    }

    #[test]
    fn set_relation_replaces() {
        let mut db = Database::new();
        db.add_fact("r", &["x"]);
        db.set_relation("r", Relation::new(2));
        assert_eq!(db.relation("r").unwrap().arity(), 2);
        assert!(db.relation("r").unwrap().is_empty());
    }
}
