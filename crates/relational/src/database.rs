//! Databases: named relations over a shared constant interner.

use crate::fxhash::FxHashMap;
use crate::{Interner, Relation, Value};

/// A database instance `D` (Section 2): a finite relational structure whose
/// universe is the set of interned constants.
#[derive(Clone, Debug, Default)]
pub struct Database {
    values: Interner,
    relations: FxHashMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The constant interner.
    pub fn interner(&self) -> &Interner {
        &self.values
    }

    /// Mutable access to the constant interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.values
    }

    /// Interns a constant name.
    pub fn value(&mut self, name: &str) -> Value {
        self.values.intern(name)
    }

    /// Interns the decimal form of `n`.
    pub fn value_u64(&mut self, n: u64) -> Value {
        self.values.intern_u64(n)
    }

    /// Adds a ground atom `rel(values...)`, creating the relation on first
    /// use. Panics if the arity conflicts with earlier tuples.
    pub fn add_tuple(&mut self, rel: &str, values: Vec<Value>) {
        let arity = values.len();
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity))
            .insert(values);
    }

    /// Convenience: adds a ground atom with named constants.
    pub fn add_fact(&mut self, rel: &str, names: &[&str]) {
        let vals = names.iter().map(|n| self.values.intern(n)).collect();
        self.add_tuple(rel, vals);
    }

    /// Registers an empty relation of the given arity (so that queries over
    /// it are well-defined and evaluate to the empty set).
    pub fn ensure_relation(&mut self, rel: &str, arity: usize) {
        self.relations
            .entry(rel.to_owned())
            .or_insert_with(|| Relation::new(arity));
    }

    /// Replaces (or installs) an entire relation.
    pub fn set_relation(&mut self, rel: &str, relation: Relation) {
        self.relations.insert(rel.to_owned(), relation);
    }

    /// Looks up a relation.
    pub fn relation(&self, rel: &str) -> Option<&Relation> {
        self.relations.get(rel)
    }

    /// Iterates over `(name, relation)` pairs (unordered).
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The largest relation cardinality `m` (Theorem 6.2's parameter).
    pub fn max_relation_size(&self) -> usize {
        self.relations
            .values()
            .map(Relation::len)
            .max()
            .unwrap_or(0)
    }

    /// Total number of tuples across all relations (a proxy for ‖D‖).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_lookup() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["b", "c"]);
        db.add_fact("edge", &["a", "b"]); // duplicate
        let r = db.relation("edge").unwrap();
        assert_eq!(r.len(), 2);
        assert!(db.relation("missing").is_none());
        let a = db.interner().get("a").unwrap();
        let b = db.interner().get("b").unwrap();
        assert!(r.contains(&[a, b]));
    }

    #[test]
    fn ensure_relation_creates_empty() {
        let mut db = Database::new();
        db.ensure_relation("r", 3);
        assert_eq!(db.relation("r").unwrap().arity(), 3);
        assert!(db.relation("r").unwrap().is_empty());
    }

    #[test]
    fn sizes() {
        let mut db = Database::new();
        db.add_fact("r", &["1", "2"]);
        db.add_fact("r", &["3", "4"]);
        db.add_fact("s", &["1"]);
        assert_eq!(db.max_relation_size(), 2);
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn set_relation_replaces() {
        let mut db = Database::new();
        db.add_fact("r", &["x"]);
        db.set_relation("r", Relation::new(2));
        assert_eq!(db.relation("r").unwrap().arity(), 2);
        assert!(db.relation("r").unwrap().is_empty());
    }
}
