//! Corruption matrix for the store format, in the style of the server's
//! durability tests: every damaged image must fail **closed** with a
//! typed [`StoreError`] — never a panic, never a silently wrong database.
//! Each case corrupts one specific section of a good image and asserts
//! the exact error class, both through the byte loader and through a file
//! (the mmap path when available, the heap fallback under
//! `CQCOUNT_NO_MMAP=1`).

use cqcount_relational::store::{encode_store, load_store_bytes, open_store, STORE_MAGIC};
use cqcount_relational::{Database, StoreError};

fn sample_db() -> Database {
    let mut db = Database::default();
    db.add_fact("edge", &["a", "b"]);
    db.add_fact("edge", &["b", "c"]);
    db.add_fact("edge", &["c", "a"]);
    db.add_fact("label", &["a", "x y z"]);
    db.add_fact("unit", &[]);
    db.ensure_relation("empty", 3);
    db
}

fn image() -> Vec<u8> {
    encode_store(&sample_db(), 5, 17)
}

#[test]
fn pristine_image_loads() {
    let loaded = load_store_bytes(&image()).expect("good image");
    assert_eq!(loaded.epoch, 5);
    assert_eq!(loaded.seq, 17);
    assert_eq!(loaded.db.fingerprint(), sample_db().fingerprint());
}

#[test]
fn truncations_at_every_boundary_fail_closed() {
    let full = image();
    // Every strict prefix must load as a typed error — walk a spread of
    // cut points including the header boundary and the last byte.
    for cut in [0, 1, 8, 71, 72, 100, full.len() - 1] {
        let err = load_store_bytes(&full[..cut]).expect_err("prefix must not load");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::CrcMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err}"
        );
    }
}

#[test]
fn bad_magic_is_its_own_error() {
    let mut bytes = image();
    bytes[..8].copy_from_slice(b"NOTSTORE");
    assert!(matches!(
        load_store_bytes(&bytes),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn unknown_version_is_rejected_before_any_parsing() {
    let mut bytes = image();
    // Version field lives at [8..12); bump it and fix the header CRC so
    // the version check (not the checksum) is what fires.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    patch_header_crc(&mut bytes);
    assert!(matches!(
        load_store_bytes(&bytes),
        Err(StoreError::BadVersion { found: 99 })
    ));
}

#[test]
fn foreign_endianness_is_rejected() {
    let mut bytes = image();
    // The endian tag at [12..16) is written native; byte-swapping it
    // simulates an image written on a foreign-endian host.
    bytes[12..16].reverse();
    patch_header_crc(&mut bytes);
    assert!(matches!(
        load_store_bytes(&bytes),
        Err(StoreError::BadEndian { .. })
    ));
}

#[test]
fn header_corruption_is_caught_by_the_header_crc() {
    let mut bytes = image();
    // Flip a bit in the epoch field (inside the header-CRC span).
    bytes[16] ^= 0x40;
    match load_store_bytes(&bytes) {
        Err(StoreError::CrcMismatch { section, .. }) => assert_eq!(section, "header"),
        other => panic!("expected header CRC mismatch, got {other:?}"),
    }
}

#[test]
fn meta_corruption_is_caught_by_the_meta_crc() {
    let mut bytes = image();
    // First byte past the header is interner-table territory.
    bytes[72] ^= 0xff;
    match load_store_bytes(&bytes) {
        Err(StoreError::CrcMismatch { section, .. }) => assert_eq!(section, "meta"),
        other => panic!("expected meta CRC mismatch, got {other:?}"),
    }
}

#[test]
fn page_corruption_is_caught_by_the_page_crc() {
    let mut bytes = image();
    // Flip the last byte: pages are laid out after the meta section, so
    // the tail of the image belongs to some relation's page span.
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    match load_store_bytes(&bytes) {
        Err(StoreError::CrcMismatch { section, .. }) => assert_eq!(section, "page"),
        other => panic!("expected page CRC mismatch, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = image();
    bytes.extend_from_slice(b"garbage after the declared total_len");
    assert!(matches!(
        load_store_bytes(&bytes),
        Err(StoreError::Truncated { .. })
    ));
}

#[test]
fn every_single_byte_flip_is_detected() {
    // The store's integrity boundary is its CRCs: no single-byte flip
    // anywhere in the image may load as a *different valid* database.
    let full = image();
    let good_fp = sample_db().fingerprint();
    for i in 0..full.len() {
        let mut bytes = full.clone();
        bytes[i] ^= 0x01;
        if let Ok(loaded) = load_store_bytes(&bytes) {
            assert_eq!(
                loaded.db.fingerprint(),
                good_fp,
                "flip at byte {i} produced a different database"
            );
            // A surviving flip can only be the reserved word or padding;
            // epoch/seq live under the header CRC, so they must match.
            assert_eq!((loaded.epoch, loaded.seq), (5, 17), "flip at byte {i}");
        }
    }
}

#[test]
fn zero_tuple_relations_round_trip() {
    let loaded = load_store_bytes(&image()).unwrap();
    let empty = loaded.db.relation("empty").expect("empty relation kept");
    assert_eq!(empty.arity(), 3);
    assert_eq!(empty.len(), 0);
    // Arity-0 relations (the unit fact) survive too.
    let unit = loaded.db.relation("unit").expect("unit relation kept");
    assert_eq!(unit.arity(), 0);
    assert_eq!(unit.len(), 1);
}

#[test]
fn file_path_reports_io_and_corruption_like_the_byte_path() {
    let dir = std::env::temp_dir().join(format!("cqstore_robust_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Missing file → Io.
    assert!(matches!(
        open_store(&dir.join("absent.cqs")),
        Err(StoreError::Io(_))
    ));

    // Corrupt file → same typed error as the byte loader.
    let mut bytes = image();
    bytes[16] ^= 0x40;
    let bad = dir.join("bad.cqs");
    std::fs::write(&bad, &bytes).unwrap();
    assert!(matches!(
        open_store(&bad),
        Err(StoreError::CrcMismatch {
            section: "header",
            ..
        })
    ));

    // Good file → loads, and sanity-check the magic really is on disk.
    let good = dir.join("good.cqs");
    std::fs::write(&good, image()).unwrap();
    let loaded = open_store(&good).unwrap();
    assert_eq!(loaded.db.fingerprint(), sample_db().fingerprint());
    assert_eq!(&std::fs::read(&good).unwrap()[..8], STORE_MAGIC);

    std::fs::remove_dir_all(&dir).ok();
}

/// Recomputes the header CRC at [68..72) over bytes [0..64), so tests can
/// tamper with individual header fields and still reach the later checks.
fn patch_header_crc(bytes: &mut [u8]) {
    let crc = cqcount_relational::store::crc32(&bytes[..64]);
    bytes[68..72].copy_from_slice(&crc.to_le_bytes());
}
