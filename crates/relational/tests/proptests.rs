//! Property tests for the relational algebra, checked against naive
//! nested-loop reference implementations. Cases come from the workspace
//! PRNG under fixed seeds; `exhaustive-tests` raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_relational::{Bindings, Value};
use std::collections::{BTreeMap, BTreeSet};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    2048
} else {
    256
};

type Row = BTreeMap<u32, u32>; // col -> value, the reference model

/// A random bindings set over the given columns (values in 0..4, up to 12
/// rows) plus its reference model.
fn arb_bindings(cols: &[u32], rng: &mut Rng) -> (Bindings, BTreeSet<Vec<u32>>) {
    let n = cols.len();
    let count = rng.range_usize(0, 13);
    let mut set: BTreeSet<Vec<u32>> = BTreeSet::new();
    for _ in 0..count {
        set.insert((0..n).map(|_| rng.range_u32(0, 4)).collect());
    }
    let b = Bindings::from_rows(
        cols.to_vec(),
        set.iter()
            .map(|r| r.iter().map(|&x| Value(x)).collect())
            .collect(),
    );
    (b, set)
}

fn to_model(cols: &[u32], rows: &BTreeSet<Vec<u32>>) -> BTreeSet<Row> {
    rows.iter()
        .map(|r| cols.iter().copied().zip(r.iter().copied()).collect())
        .collect()
}

fn model_of(b: &Bindings) -> BTreeSet<Row> {
    b.rows()
        .iter()
        .map(|r| {
            b.cols()
                .iter()
                .copied()
                .zip(r.iter().map(|v| v.0))
                .collect()
        })
        .collect()
}

fn compatible(a: &Row, b: &Row) -> bool {
    a.iter().all(|(k, v)| b.get(k).is_none_or(|w| w == v))
}

fn merge(a: &Row, b: &Row) -> Row {
    let mut out = a.clone();
    for (k, v) in b {
        out.insert(*k, *v);
    }
    out
}

#[test]
fn join_matches_nested_loop() {
    let mut rng = Rng::seed_from_u64(0x11);
    for _ in 0..CASES {
        let (l, lm) = arb_bindings(&[0, 1], &mut rng);
        let (r, rm) = arb_bindings(&[1, 2], &mut rng);
        let got = model_of(&l.join(&r));
        let lmod = to_model(&[0, 1], &lm);
        let rmod = to_model(&[1, 2], &rm);
        let mut expect = BTreeSet::new();
        for a in &lmod {
            for b in &rmod {
                if compatible(a, b) {
                    expect.insert(merge(a, b));
                }
            }
        }
        assert_eq!(got, expect);
    }
}

#[test]
fn join_disjoint_is_product() {
    let mut rng = Rng::seed_from_u64(0x12);
    for _ in 0..CASES {
        let (l, lm) = arb_bindings(&[0], &mut rng);
        let (r, rm) = arb_bindings(&[5], &mut rng);
        assert_eq!(l.join(&r).len(), lm.len() * rm.len());
    }
}

#[test]
fn semijoin_is_projected_join() {
    let mut rng = Rng::seed_from_u64(0x13);
    for _ in 0..CASES {
        let (l, _) = arb_bindings(&[0, 1], &mut rng);
        let (r, _) = arb_bindings(&[1, 2], &mut rng);
        assert_eq!(l.semijoin(&r), l.join(&r).project(l.cols()));
    }
}

#[test]
fn join_commutative_associative() {
    let mut rng = Rng::seed_from_u64(0x14);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1], &mut rng);
        let (b, _) = arb_bindings(&[1, 2], &mut rng);
        let (c, _) = arb_bindings(&[0, 2], &mut rng);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }
}

#[test]
fn join_matches_hash_baseline() {
    // The sort-merge kernel and the straw-man hash join must agree on
    // every input, including non-prefix key layouts.
    let mut rng = Rng::seed_from_u64(0x15);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1, 3], &mut rng);
        let (b, _) = arb_bindings(&[1, 2, 3], &mut rng);
        assert_eq!(
            a.join(&b),
            cqcount_relational::algebra::join_hash_baseline(&a, &b)
        );
        let (c, _) = arb_bindings(&[3], &mut rng);
        assert_eq!(
            a.join(&c),
            cqcount_relational::algebra::join_hash_baseline(&a, &c)
        );
    }
}

#[test]
fn project_is_idempotent_and_monotone() {
    let mut rng = Rng::seed_from_u64(0x16);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1, 2], &mut rng);
        let p = a.project(&[0, 2]);
        assert_eq!(p.project(&[0, 2]), p.clone());
        assert!(p.len() <= a.len());
        let pp = p.project(&[0]);
        assert_eq!(a.project(&[0]), pp);
    }
}

#[test]
fn partition_reassembles() {
    let mut rng = Rng::seed_from_u64(0x17);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1], &mut rng);
        let parts = a.partition_by(&[0]);
        let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, a.len());
        // every part selects to itself
        for (key, part) in &parts {
            let key_vals: Vec<Value> = key.to_vec();
            assert_eq!(&part.select_theta(&[0], &key_vals), part);
        }
    }
}

#[test]
fn degree_bounds() {
    let mut rng = Rng::seed_from_u64(0x18);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1], &mut rng);
        let d = a.degree_wrt(&[0]);
        assert!(d <= a.len());
        let groups = a.partition_by(&[0]);
        let max = groups.iter().map(|(_, g)| g.len()).max().unwrap_or(0);
        assert_eq!(d, max);
    }
}

#[test]
fn pairwise_consistency_sound() {
    let mut rng = Rng::seed_from_u64(0x19);
    for _ in 0..CASES {
        let (a, _) = arb_bindings(&[0, 1], &mut rng);
        let (b, _) = arb_bindings(&[1, 2], &mut rng);
        // After the fixpoint, every surviving tuple of each view joins with
        // some tuple of the other view (pairwise consistency definition).
        let mut views = vec![a.clone(), b.clone()];
        let ok = cqcount_relational::consistency::pairwise_consistency(&mut views);
        if ok {
            for t in views[0].rows() {
                let single = Bindings::from_rows(views[0].cols().to_vec(), vec![t.to_vec()]);
                assert!(!single.join(&views[1]).is_empty());
            }
        }
        // And it never changes the join result.
        assert_eq!(a.join(&b), views[0].join(&views[1]));
    }
}

#[test]
fn kernels_agree_across_thread_counts() {
    // The ISSUE's agreement property: join/semijoin/project/consistency
    // must be byte-identical between the forced-sequential path and a
    // multi-lane pool, across many seeded instances. Row counts are pushed
    // past the parallel threshold so the chunked paths actually run.
    let seeds: u64 = if cfg!(feature = "exhaustive-tests") {
        8
    } else {
        3
    };
    for seed in 0..seeds {
        let mut rng = Rng::seed_from_u64(0xC0DE + seed);
        let mk = |cols: &[u32], rng: &mut Rng| {
            let rows: Vec<Vec<Value>> = (0..6000)
                .map(|_| {
                    (0..cols.len())
                        .map(|_| Value(rng.range_u32(0, 64)))
                        .collect()
                })
                .collect();
            Bindings::from_rows(cols.to_vec(), rows)
        };
        let a = mk(&[0, 1], &mut rng);
        let b = mk(&[1, 2], &mut rng);
        let run = || {
            let mut views = vec![a.clone(), b.clone()];
            let ok = cqcount_relational::consistency::pairwise_consistency(&mut views);
            (a.join(&b), a.semijoin(&b), a.project(&[1]), views, ok)
        };
        let seq = cqcount_exec::with_threads(1, run);
        let par = cqcount_exec::with_threads(8, run);
        assert_eq!(seq, par, "seed {seed}");
    }
}
