//! Property tests for the relational algebra, checked against naive
//! nested-loop reference implementations.

use cqcount_relational::{Bindings, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

type Row = BTreeMap<u32, u32>; // col -> value, the reference model

fn arb_bindings(cols: Vec<u32>) -> impl Strategy<Value = (Bindings, BTreeSet<Vec<u32>>)> {
    let n = cols.len();
    proptest::collection::vec(proptest::collection::vec(0u32..4, n), 0..12).prop_map(move |rows| {
        let set: BTreeSet<Vec<u32>> = rows.iter().cloned().collect();
        let b = Bindings::from_rows(
            cols.clone(),
            set.iter()
                .map(|r| r.iter().map(|&x| Value(x)).collect())
                .collect(),
        );
        (b, set)
    })
}

fn to_model(cols: &[u32], rows: &BTreeSet<Vec<u32>>) -> BTreeSet<Row> {
    rows.iter()
        .map(|r| cols.iter().copied().zip(r.iter().copied()).collect())
        .collect()
}

fn model_of(b: &Bindings) -> BTreeSet<Row> {
    b.rows()
        .iter()
        .map(|r| {
            b.cols()
                .iter()
                .copied()
                .zip(r.iter().map(|v| v.0))
                .collect()
        })
        .collect()
}

fn compatible(a: &Row, b: &Row) -> bool {
    a.iter().all(|(k, v)| b.get(k).is_none_or(|w| w == v))
}

fn merge(a: &Row, b: &Row) -> Row {
    let mut out = a.clone();
    for (k, v) in b {
        out.insert(*k, *v);
    }
    out
}

proptest! {
    #[test]
    fn join_matches_nested_loop(
        (l, lm) in arb_bindings(vec![0, 1]),
        (r, rm) in arb_bindings(vec![1, 2]),
    ) {
        let got = model_of(&l.join(&r));
        let lmod = to_model(&[0, 1], &lm);
        let rmod = to_model(&[1, 2], &rm);
        let mut expect = BTreeSet::new();
        for a in &lmod {
            for b in &rmod {
                if compatible(a, b) {
                    expect.insert(merge(a, b));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn join_disjoint_is_product(
        (l, lm) in arb_bindings(vec![0]),
        (r, rm) in arb_bindings(vec![5]),
    ) {
        prop_assert_eq!(l.join(&r).len(), lm.len() * rm.len());
    }

    #[test]
    fn semijoin_is_projected_join(
        (l, _) in arb_bindings(vec![0, 1]),
        (r, _) in arb_bindings(vec![1, 2]),
    ) {
        prop_assert_eq!(l.semijoin(&r), l.join(&r).project(l.cols()));
    }

    #[test]
    fn join_commutative_associative(
        (a, _) in arb_bindings(vec![0, 1]),
        (b, _) in arb_bindings(vec![1, 2]),
        (c, _) in arb_bindings(vec![0, 2]),
    ) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn project_is_idempotent_and_monotone((a, _) in arb_bindings(vec![0, 1, 2])) {
        let p = a.project(&[0, 2]);
        prop_assert_eq!(p.project(&[0, 2]), p.clone());
        prop_assert!(p.len() <= a.len());
        let pp = p.project(&[0]);
        prop_assert_eq!(a.project(&[0]), pp);
    }

    #[test]
    fn partition_reassembles((a, _) in arb_bindings(vec![0, 1])) {
        let parts = a.partition_by(&[0]);
        let total: usize = parts.iter().map(|(_, p)| p.len()).sum();
        prop_assert_eq!(total, a.len());
        // every part selects to itself
        for (key, part) in &parts {
            let key_vals: Vec<Value> = key.to_vec();
            prop_assert_eq!(&part.select_theta(&[0], &key_vals), part);
        }
    }

    #[test]
    fn degree_bounds((a, _) in arb_bindings(vec![0, 1])) {
        let d = a.degree_wrt(&[0]);
        prop_assert!(d <= a.len());
        let groups = a.partition_by(&[0]);
        let max = groups.iter().map(|(_, g)| g.len()).max().unwrap_or(0);
        prop_assert_eq!(d, max);
    }

    #[test]
    fn pairwise_consistency_sound(
        (a, _) in arb_bindings(vec![0, 1]),
        (b, _) in arb_bindings(vec![1, 2]),
    ) {
        // After the fixpoint, every surviving tuple of each view joins with
        // some tuple of the other view (pairwise consistency definition).
        let mut views = vec![a.clone(), b.clone()];
        let ok = cqcount_relational::consistency::pairwise_consistency(&mut views);
        if ok {
            for t in views[0].rows() {
                let single = Bindings::from_rows(views[0].cols().to_vec(), vec![t.to_vec()]);
                prop_assert!(!single.join(&views[1]).is_empty());
            }
        }
        // And it never changes the join result.
        prop_assert_eq!(a.join(&b), views[0].join(&views[1]));
    }
}
