#[test]
fn frozen_arity0_wcoj() {
    use cqcount_relational::{store, wcoj_join, Database, WcojInput};
    let mut db = Database::new();
    db.add_fact("p", &[]); // nonempty zero-arity relation (true proposition)
    db.add_fact("e", &["a", "b"]);
    let loaded = store::load_store_bytes(&store::encode_store(&db, 0, 0)).unwrap();
    let p = loaded.db.relation("p").unwrap();
    let e = loaded.db.relation("e").unwrap();
    assert_eq!(p.len(), 1, "p holds the empty tuple");
    assert!(p.is_frozen());
    let cols_p: [u32; 0] = [];
    let cols_e = [0u32, 1];
    let views = [
        WcojInput::from_frozen(p, &cols_p).unwrap(),
        WcojInput::from_frozen(e, &cols_e).unwrap(),
    ];
    let out = wcoj_join(&views);
    // p is true (len 1), so the join should equal e: 1 row.
    assert_eq!(out.rows().len(), 1, "nonempty nullary atom must be a no-op filter, got empty join");
}
