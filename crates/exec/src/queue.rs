//! A bounded multi-producer multi-consumer queue for admission control.
//!
//! `std::sync::mpsc` channels are unbounded (or rendezvous), which is the
//! wrong shape for a serving layer: an overloaded daemon must *reject*
//! new work immediately instead of buffering it until memory runs out.
//! [`BoundedQueue`] is the missing piece — `Mutex<VecDeque>` + `Condvar`,
//! non-blocking producers ([`BoundedQueue::try_push`] fails fast when
//! full), blocking consumers ([`BoundedQueue::pop`] parks until work or
//! shutdown).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// A fixed-capacity FIFO shared between producers and consumers.
///
/// Producers never block: a full (or closed) queue returns the rejected
/// item so the caller can answer "overloaded" right away. Consumers block
/// in [`BoundedQueue::pop`] until an item arrives or [`BoundedQueue::close`]
/// drains the queue, at which point they observe `None` and exit.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    rejected: AtomicU64,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes refused so far (queue full or closed) — the admission
    /// controller's overload count.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns `Err(item)` when the queue is
    /// full or closed — the caller keeps the item and reports overload.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.items.len() >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Enqueues a batch under one lock acquisition: items that fit are
    /// accepted in order, the overflow comes back in `Err`/the returned
    /// `Vec` so the caller can reject each with an overload reply. One
    /// `notify_all` covers the whole batch — this is the handoff path an
    /// event loop uses to admit every request decoded from one readiness
    /// sweep without `2 × batch` lock round-trips.
    ///
    /// Returns the items that did NOT fit (empty when all were accepted).
    pub fn try_push_batch(&self, items: impl IntoIterator<Item = T>) -> Vec<T> {
        let mut it = items.into_iter();
        let mut overflow = Vec::new();
        let mut accepted = 0usize;
        {
            let mut s = self.state.lock().unwrap();
            for item in it.by_ref() {
                if s.closed || s.items.len() >= self.capacity {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    overflow.push(item);
                    break;
                }
                s.items.push_back(item);
                accepted += 1;
            }
        }
        // The rest of the iterator is rejected without re-taking the lock:
        // the queue was full (or closed) at the cut point.
        for item in it {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            overflow.push(item);
        }
        match accepted {
            0 => {}
            1 => self.available.notify_one(),
            _ => self.available.notify_all(),
        }
        overflow
    }

    /// Blocks until an item is available (FIFO) or the queue is closed and
    /// drained, in which case it returns `None`.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap();
        }
    }

    /// Closes the queue: future pushes fail, and consumers drain what is
    /// left, then observe `None`. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.available.notify_all();
    }

    /// Has the queue been closed?
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn rejected_counts_full_and_closed_pushes() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.rejected(), 0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(2)); // full
        q.close();
        assert_eq!(q.try_push(3), Err(3)); // closed
        assert_eq!(q.rejected(), 2);
    }

    #[test]
    fn batch_push_accepts_a_prefix_and_returns_the_overflow() {
        let q = BoundedQueue::new(3);
        q.try_push(0).unwrap();
        let overflow = q.try_push_batch([1, 2, 3, 4]);
        assert_eq!(overflow, vec![3, 4], "capacity 3: two fit, two bounce");
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.try_push_batch(std::iter::empty::<i32>()).is_empty());
        q.close();
        assert_eq!(q.try_push_batch([9]), vec![9], "closed queue rejects all");
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays None
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..30 {
            while q.try_push(i).is_err() {
                thread::yield_now(); // queue full: wait for a consumer
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }
}
