//! The scoped worker pool: work-stealing deques over plain std primitives.
//!
//! Topology: one global injector queue plus one deque per worker. A worker
//! pops its own deque from the back (LIFO, cache-hot), steals from other
//! workers' deques from the front (FIFO, coarse-grained), and falls back to
//! the injector. Tasks submitted from outside the pool land in the
//! injector; tasks submitted *by a worker* (nested parallelism) land in
//! that worker's own deque, which is what makes the stealing real.
//!
//! Scoped execution: [`Pool::run_scoped`] erases the lifetime of the
//! submitted closures (they only borrow data owned by the caller's stack
//! frame) and blocks until every task has completed — while blocked, the
//! submitting thread *helps* drain tasks, so nested `par_map` calls from
//! inside a worker cannot deadlock the pool. The completion latch is what
//! makes the lifetime erasure sound: no task outlives `run_scoped`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A captured panic payload, carried from the worker that caught it back
/// to the thread that owns the scope.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A unit of work. Lifetimes are erased in `run_scoped`; the latch
/// guarantees no task survives the scope that borrowed its environment.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        })
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().unwrap() == 0
    }

    /// Waits briefly for completion; returns `true` when the latch hit 0.
    fn wait_a_little(&self) -> bool {
        let left = self.remaining.lock().unwrap();
        if *left == 0 {
            return true;
        }
        let (left, _) = self
            .done
            .wait_timeout(left, Duration::from_millis(1))
            .unwrap();
        *left == 0
    }
}

struct Shared {
    injector: Mutex<VecDeque<Task>>,
    /// One stealable deque per worker thread.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Wakes sleeping workers when work arrives.
    wake: Condvar,
    sleep_lock: Mutex<()>,
    shutdown: AtomicBool,
    /// Round-robin steal origin so thieves don't all hammer worker 0.
    steal_hint: AtomicUsize,
    /// Tasks that panicked instead of completing, across all scopes.
    panics: AtomicU64,
    /// Tasks handed to the pool over its lifetime (inline mode included).
    spawned: AtomicU64,
    /// Tasks that ran to completion without panicking.
    completed: AtomicU64,
    /// Tasks taken from another worker's deque.
    steals: AtomicU64,
    /// High-water mark of any single queue (injector or deque) observed at
    /// submission time.
    max_queue_depth: AtomicU64,
}

impl Shared {
    /// Grabs one task: own deque (back) → steal (front) → injector.
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(me) = own {
            if let Some(t) = self.deques[me].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        let n = self.deques.len();
        if n > 0 {
            let start = self.steal_hint.fetch_add(1, Ordering::Relaxed) % n;
            for k in 0..n {
                let victim = (start + k) % n;
                if Some(victim) == own {
                    continue;
                }
                if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                    // Taking from a deque we don't own is a steal; `own ==
                    // None` is the scope owner helping, which steals too.
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
        }
        self.injector.lock().unwrap().pop_front()
    }
}

/// A snapshot of a pool's lifetime scheduling counters, from
/// [`Pool::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks handed to the pool (inline mode included).
    pub spawned: u64,
    /// Tasks that ran to completion without panicking.
    pub completed: u64,
    /// Tasks that panicked (contained by the scope's catch_unwind).
    pub panicked: u64,
    /// Tasks a lane took from another worker's deque.
    pub steals: u64,
    /// High-water mark of any single queue at submission time.
    pub max_queue_depth: u64,
}

thread_local! {
    /// Set inside pool workers: (shared-state identity, worker index).
    static WORKER: std::cell::RefCell<Option<(usize, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// A fixed-size worker pool. `threads == 1` means "no worker threads":
/// every submission runs inline on the calling thread, in order — the
/// guaranteed-sequential mode behind `CQCOUNT_THREADS=1`.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Builds a pool driving `threads` lanes of execution. One of the lanes
    /// is the submitting thread itself (it helps while waiting), so
    /// `threads - 1` OS worker threads are spawned.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            wake: Condvar::new(),
            sleep_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            steal_hint: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cqcount-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
        }
    }

    /// The number of execution lanes (worker threads + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tasks that panicked instead of completing, over the pool's lifetime.
    /// Workers survive panicking tasks; the first panic of a scope is
    /// re-raised on the thread that called [`Pool::run_scoped`].
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Lifetime scheduling counters for this pool. `spawned` always equals
    /// `completed + panicked` once every scope has returned.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.shared.spawned.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            panicked: self.shared.panics.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Runs `tasks` to completion. Tasks may borrow from the caller's
    /// frame: this function does not return until every task has run, and
    /// the calling thread helps execute queued tasks while it waits.
    ///
    /// Completion order is arbitrary; callers get determinism by writing
    /// results into per-task slots (as [`crate::par_map`] does), never by
    /// relying on execution order.
    ///
    /// Panic safety: a panicking task does not kill its worker thread or
    /// wedge the scope. Every task counts down the completion latch even
    /// when it unwinds; the remaining tasks of the scope still run, and the
    /// first captured payload is re-raised here once the scope is drained.
    pub fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        self.shared
            .spawned
            .fetch_add(tasks.len() as u64, Ordering::Relaxed);
        if self.threads == 1 {
            let mut first_panic: Option<PanicPayload> = None;
            for t in tasks {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                    self.shared.panics.fetch_add(1, Ordering::Relaxed);
                    first_panic.get_or_insert(payload);
                } else {
                    self.shared.completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            return;
        }
        let latch = Latch::new(tasks.len());
        let first_panic: Arc<Mutex<Option<PanicPayload>>> = Arc::new(Mutex::new(None));
        let me = WORKER.with(|w| match *w.borrow() {
            Some((pool_id, idx)) if pool_id == Arc::as_ptr(&self.shared) as usize => Some(idx),
            _ => None,
        });
        {
            // Erase the scope lifetime: sound because we hold the latch
            // open until every task has finished executing.
            let erased: Vec<Task> = tasks
                .into_iter()
                .map(|t| {
                    let latch = Arc::clone(&latch);
                    let shared = Arc::clone(&self.shared);
                    let first_panic = Arc::clone(&first_panic);
                    let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                        // Catch unwinds so a panicking task cannot kill its
                        // worker thread or leave the latch hanging; the
                        // payload travels back to the scope owner instead.
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                            shared.panics.fetch_add(1, Ordering::Relaxed);
                            first_panic.lock().unwrap().get_or_insert(payload);
                        } else {
                            shared.completed.fetch_add(1, Ordering::Relaxed);
                        }
                        latch.count_down();
                    });
                    // SAFETY: `wrapped` only borrows data that outlives the
                    // wait loop below; `run_scoped` blocks until the latch
                    // reports all wrapped tasks done.
                    unsafe {
                        std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped)
                    }
                })
                .collect();
            let depth = match me {
                // Nested submission from a worker: feed its own deque so
                // idle siblings can steal from the front while the worker
                // chews the back.
                Some(idx) => {
                    let mut dq = self.shared.deques[idx].lock().unwrap();
                    dq.extend(erased);
                    dq.len()
                }
                None => {
                    let mut inj = self.shared.injector.lock().unwrap();
                    inj.extend(erased);
                    inj.len()
                }
            };
            self.shared
                .max_queue_depth
                .fetch_max(depth as u64, Ordering::Relaxed);
            self.shared.wake.notify_all();
        }
        // Help until everything in this scope has completed.
        loop {
            if let Some(task) = self.shared.find_task(me) {
                task();
                continue;
            }
            if latch.is_done() || latch.wait_a_little() {
                break;
            }
        }
        // The latch is closed, so no task of this scope is still running:
        // taking the payload out of the mutex races with nothing.
        let payload = first_panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::as_ptr(&shared) as usize, index)));
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.sleep_lock.lock().unwrap();
        // Re-check under the lock to avoid sleeping through a wake-up.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        pool.run_scoped(tasks); // empty is fine
        let log = Mutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..5)
            .map(|i| {
                let log = &log;
                Box::new(move || log.lock().unwrap().push(i)) as _
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_completes_all_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|_| {
                let pool = &pool;
                let hits = &hits;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                        .map(|_| {
                            Box::new(move || {
                                hits.fetch_add(1, Ordering::SeqCst);
                            }) as _
                        })
                        .collect();
                    pool.run_scoped(inner);
                }) as _
            })
            .collect();
        pool.run_scoped(outer);
        assert_eq!(hits.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = Pool::new(3);
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_task_does_not_wedge_the_scope() {
        let pool = Pool::new(4);
        let done = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 7 {
                        panic!("injected task failure");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_scoped(tasks)));
        let payload = caught.expect_err("the scope re-raises the task panic");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"injected task failure")
        );
        // Every non-panicking task still ran, the counter saw the failure,
        // and the pool remains usable for the next scope.
        assert_eq!(done.load(Ordering::SeqCst), 15);
        assert_eq!(pool.panics(), 1);
        let again: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|_| {
                let done = &done;
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        pool.run_scoped(again);
        assert_eq!(done.load(Ordering::SeqCst), 23);
    }

    #[test]
    fn stats_reflects_spawned_completed_and_panicked_tasks() {
        let pool = Pool::new(4);
        // A clean scope first: everything spawned completes.
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..32).map(|_| Box::new(|| ()) as _).collect();
        pool.run_scoped(tasks);
        let s = pool.stats();
        assert_eq!(s.spawned, 32);
        assert_eq!(s.completed, 32);
        assert_eq!(s.panicked, 0);
        assert!(s.max_queue_depth > 0, "submission filled a queue");

        // Now a scope where 3 of 16 tasks panic (the catch_unwind path):
        // the panics must surface in stats(), and the ledger must balance.
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|i| {
                Box::new(move || {
                    if i % 5 == 0 {
                        panic!("injected");
                    }
                }) as _
            })
            .collect();
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run_scoped(tasks))).is_err());
        let s = pool.stats();
        assert_eq!(s.spawned, 48);
        assert_eq!(s.panicked, 4, "tasks 0, 5, 10, 15 panicked");
        assert_eq!(s.completed, 44);
        assert_eq!(s.spawned, s.completed + s.panicked);
        assert_eq!(s.panicked, pool.panics(), "stats() mirrors panics()");
    }

    #[test]
    fn taking_from_a_sibling_deque_counts_as_a_steal() {
        // Exercise find_task directly on a hand-built Shared (no live
        // workers to race with): scheduling on a loaded single-core host
        // makes pool-level steal timing unreliable, but the accounting
        // semantics are deterministic.
        let shared = Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..2).map(|_| Mutex::new(VecDeque::new())).collect(),
            wake: Condvar::new(),
            sleep_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            steal_hint: AtomicUsize::new(0),
            panics: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        };
        let plant = |idx: usize| {
            shared.deques[idx]
                .lock()
                .unwrap()
                .push_back(Box::new(|| ()) as Task);
        };

        // Popping your own deque is not a steal.
        plant(0);
        assert!(shared.find_task(Some(0)).is_some());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 0);

        // Worker 1 taking worker 0's task is.
        plant(0);
        assert!(shared.find_task(Some(1)).is_some());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 1);

        // The scope owner (no deque of its own) stealing counts too.
        plant(1);
        assert!(shared.find_task(None).is_some());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);

        // Draining the injector is not a steal.
        shared
            .injector
            .lock()
            .unwrap()
            .push_back(Box::new(|| ()) as Task);
        assert!(shared.find_task(None).is_some());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn inline_pool_counts_and_reraises_panics() {
        let pool = Pool::new(1);
        let done = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 1 {
                        panic!("inline failure");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }) as _
            })
            .collect();
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run_scoped(tasks))).is_err());
        assert_eq!(done.load(Ordering::SeqCst), 3); // later tasks still ran
        assert_eq!(pool.panics(), 1);
    }
}
