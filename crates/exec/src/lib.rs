//! `cqcount-exec`: a dependency-free parallel execution layer.
//!
//! Everything here is built on `std` only — no rayon, no crossbeam — so the
//! workspace stays buildable in a sealed container. The public surface is
//! deliberately tiny:
//!
//! * [`par_map`] — map a function over a slice, results in input order;
//! * [`par_chunks`] — map a function over contiguous chunks of a slice,
//!   chunk results in offset order;
//! * [`with_threads`] — force a thread count for the duration of a closure
//!   (used by the seq-vs-par agreement tests);
//! * [`current_threads`] / [`default_thread_count`] — introspection;
//! * [`BoundedQueue`] — a fixed-capacity MPMC queue with non-blocking
//!   producers, the admission-control primitive of the serving layer;
//! * [`poll`] (unix) — a `libc`-free `poll(2)` wrapper plus a self-wake
//!   pipe, the readiness primitives behind the server's evented front end.
//!
//! Thread count resolution: the `CQCOUNT_THREADS` environment variable if
//! set (clamped to ≥ 1), otherwise [`std::thread::available_parallelism`].
//! With one thread every helper degrades to a plain sequential loop on the
//! calling thread — no pool, no locks — which is the reference semantics
//! the parallel paths are required to reproduce byte-for-byte.
//!
//! Determinism: results are written into pre-allocated per-task slots and
//! reassembled in input order, so the *values* returned by `par_map` and
//! `par_chunks` never depend on scheduling. Callers that fold results must
//! fold in slot order (they receive a `Vec` in that order, so the natural
//! left fold is already deterministic).

#[cfg(unix)]
pub mod poll;
mod pool;
pub mod queue;

pub use pool::{Pool, PoolStats};
pub use queue::BoundedQueue;

use cqcount_obs as obs;
use std::sync::{Mutex, OnceLock};

/// Resolves the default worker count: `CQCOUNT_THREADS` if set and ≥ 1,
/// else the machine's available parallelism, else 1.
pub fn default_thread_count() -> usize {
    if let Ok(v) = std::env::var("CQCOUNT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, created on first use with [`default_thread_count`].
fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(default_thread_count()))
}

thread_local! {
    /// Per-thread override installed by [`with_threads`]. A stack so that
    /// nested overrides restore correctly.
    static OVERRIDE: std::cell::RefCell<Vec<OverridePool>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

enum OverridePool {
    Sequential,
    Owned(std::sync::Arc<Pool>),
}

/// The number of execution lanes the *next* parallel call on this thread
/// will use.
pub fn current_threads() -> usize {
    OVERRIDE.with(|o| match o.borrow().last() {
        Some(OverridePool::Sequential) => 1,
        Some(OverridePool::Owned(p)) => p.threads(),
        None => global_pool().threads(),
    })
}

/// Runs `f` with all parallel helpers on this thread pinned to `threads`
/// lanes. `threads == 1` forces the pure sequential path (no pool at all);
/// larger counts spin up a temporary pool torn down when `f` returns.
///
/// This is how the agreement tests compare `CQCOUNT_THREADS=1` semantics
/// against a parallel run inside a single process.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let entry = if threads <= 1 {
        OverridePool::Sequential
    } else {
        OverridePool::Owned(std::sync::Arc::new(Pool::new(threads)))
    };
    OVERRIDE.with(|o| o.borrow_mut().push(entry));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

fn run_on_current<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let over = OVERRIDE.with(|o| match o.borrow().last() {
        Some(OverridePool::Sequential) => Some(None),
        Some(OverridePool::Owned(p)) => Some(Some(std::sync::Arc::clone(p))),
        None => None,
    });
    match over {
        Some(None) => {
            for t in tasks {
                t();
            }
        }
        Some(Some(pool)) => pool.run_scoped(tasks),
        None => global_pool().run_scoped(tasks),
    }
}

/// Maps `f` over `items` in parallel; `out[i] == f(&items[i])`, always.
///
/// Items are grouped into contiguous blocks (a few blocks per lane) so the
/// per-task overhead stays negligible even for cheap `f`.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = current_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let blocks = (threads * 4).min(items.len());
    let block_len = items.len().div_ceil(blocks);
    let blocks = items.len().div_ceil(block_len);
    let slots: Vec<Mutex<Vec<R>>> = (0..blocks).map(|_| Mutex::new(Vec::new())).collect();
    let f = &f;
    // Capture the submitting thread's span so block tasks executing on
    // pool workers attribute their queue-wait and run time to the request
    // that spawned them. `SpanId::NONE` (tracing off / no active span)
    // makes the per-task span a no-op.
    let parent = obs::trace::current();
    let submitted_ns = if parent.is_none() {
        0
    } else {
        obs::trace::now_ns()
    };
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter()
        .enumerate()
        .map(|(b, slot)| {
            let start = b * block_len;
            let end = ((b + 1) * block_len).min(items.len());
            Box::new(move || {
                let sp = obs::trace::span_under(parent, "exec.task");
                if sp.is_armed() {
                    sp.add("wait_ns", obs::trace::now_ns().saturating_sub(submitted_ns));
                    sp.add("items", (end - start) as u64);
                }
                let out: Vec<R> = items[start..end].iter().map(f).collect();
                *slot.lock().unwrap() = out;
            }) as _
        })
        .collect();
    run_on_current(tasks);
    slots
        .into_iter()
        .flat_map(|s| s.into_inner().unwrap())
        .collect()
}

/// Splits `items` into contiguous chunks of at least `min_chunk` elements
/// (one chunk per lane when the slice is large enough) and maps `f` over
/// each; `f` receives the chunk's starting offset and the chunk itself.
/// Results come back in offset order.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    min_chunk: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    let threads = current_threads();
    let min_chunk = min_chunk.max(1);
    if threads <= 1 || items.len() <= min_chunk {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![f(0, items)];
    }
    let chunks = (items.len().div_ceil(min_chunk)).min(threads * 2);
    let chunk_len = items.len().div_ceil(chunks);
    let chunks = items.len().div_ceil(chunk_len);
    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let f = &f;
    let parent = obs::trace::current();
    let submitted_ns = if parent.is_none() {
        0
    } else {
        obs::trace::now_ns()
    };
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter()
        .enumerate()
        .map(|(c, slot)| {
            let start = c * chunk_len;
            let end = ((c + 1) * chunk_len).min(items.len());
            Box::new(move || {
                let sp = obs::trace::span_under(parent, "exec.task");
                if sp.is_armed() {
                    sp.add("wait_ns", obs::trace::now_ns().saturating_sub(submitted_ns));
                    sp.add("items", (end - start) as u64);
                }
                *slot.lock().unwrap() = Some(f(start, &items[start..end]));
            }) as _
        })
        .collect();
    run_on_current(tasks);
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("chunk task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let got = with_threads(4, || par_map(&items, |x| x * x));
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_sequential_override_matches() {
        let items: Vec<u64> = (0..257).collect();
        let seq = with_threads(1, || par_map(&items, |x| x + 7));
        let par = with_threads(8, || par_map(&items, |x| x + 7));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let items: Vec<u64> = (0..10_000).collect();
        let sums = with_threads(4, || {
            par_chunks(&items, 64, |_, chunk| chunk.iter().sum::<u64>())
        });
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
    }

    #[test]
    fn par_chunks_offsets_are_sorted_and_contiguous() {
        let items: Vec<u8> = vec![0; 5000];
        let spans = with_threads(3, || {
            par_chunks(&items, 10, |off, chunk| (off, chunk.len()))
        });
        let mut expect = 0usize;
        for (off, len) in spans {
            assert_eq!(off, expect);
            expect += len;
        }
        assert_eq!(expect, items.len());
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(4, || {
            assert_eq!(current_threads(), 4);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 4);
        });
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(with_threads(4, || par_map(&empty, |x| *x)).is_empty());
        assert!(with_threads(4, || par_chunks(&empty, 8, |_, c| c.len())).is_empty());
    }
}
