//! A `libc`-free readiness primitive: a raw `poll(2)` wrapper plus a
//! self-wake pipe, the two building blocks of an evented serving loop.
//!
//! The workspace is `std`-only, but `std` exposes no readiness API — only
//! blocking reads. The serving layer needs to watch many nonblocking
//! sockets at once, so this module declares the one POSIX entry point it
//! needs (`poll`) as an `extern "C"` item. Every libc that Rust's `std`
//! itself links (glibc, musl, Apple libSystem) exports it with exactly
//! this signature, so no new dependency is introduced: the symbol is
//! already in the process image.
//!
//! [`WakePipe`] rides on [`std::os::unix::net::UnixStream::pair`] — a
//! socketpair, which `poll` treats like any other fd — so worker threads
//! can interrupt a sleeping event loop without a timeout dance.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// `struct pollfd` from `<poll.h>`; layout fixed by POSIX.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

/// Readable (or a peer hangup that reads as EOF).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// The fd is not open — a bookkeeping bug on our side.
pub const POLLNVAL: i16 = 0x020;

impl PollFd {
    /// Watches `fd` for the interest set `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel flag any of `mask` on the last poll?
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Readable, hung up, or errored — any reason to attempt a read.
    pub fn readable(&self) -> bool {
        self.has(POLLIN | POLLHUP | POLLERR | POLLNVAL)
    }

    /// Writable or errored — any reason to attempt a write.
    pub fn writable(&self) -> bool {
        self.has(POLLOUT | POLLERR | POLLHUP | POLLNVAL)
    }
}

// The POSIX `nfds_t` is `unsigned long` on every platform std supports.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Blocks until at least one fd in `fds` is ready, the timeout elapses
/// (`None` = wait forever), or a non-EINTR error occurs. Returns the
/// number of ready fds (0 on timeout); `revents` is filled in place.
///
/// EINTR is retried internally with the timeout re-armed, so callers
/// never observe spurious wakeups from signals.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        None => -1,
        // Round up so a 1 ns timeout still sleeps, and saturate far below
        // c_int::MAX to dodge overflow on 16-bit-int platforms (none that
        // std supports, but the clamp is free).
        Some(d) => d.as_millis().min(i32::MAX as u128 / 2) as std::ffi::c_int,
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-wake channel for an event loop: the loop polls the receiving
/// end for `POLLIN`; any thread calls [`WakePipe::wake`] to make the next
/// (or current) poll return immediately.
///
/// Built on a nonblocking socketpair. Wakes coalesce: a full pipe means a
/// wake is already pending, which is exactly the semantic we want, so
/// `WouldBlock` on the write side is success.
#[derive(Debug)]
pub struct WakePipe {
    rx: UnixStream,
    tx: UnixStream,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(WakePipe { rx, tx })
    }

    /// The fd the event loop adds to its poll set (interest: `POLLIN`).
    pub fn poll_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A cloneable waker handle for producer threads.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }

    /// Drains pending wake bytes so the next poll blocks again. Call this
    /// whenever the poll reports the wake fd readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // peer gone: nothing more will arrive
                Ok(_) => continue,
                Err(_) => return, // WouldBlock or a real error: stop either way
            }
        }
    }
}

/// The sending half of a [`WakePipe`]; cheap to clone across threads.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Interrupts the event loop. Never blocks; a full pipe already holds
    /// a pending wake, so dropping the byte is correct.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            tx: self.tx.try_clone().expect("clone wake pipe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_an_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "no data was sent, poll must time out");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        drop(client);
    }

    #[test]
    fn poll_reports_readable_after_a_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn poll_reports_hangup_or_eof_after_peer_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "EOF must surface as readable/hup");
    }

    #[test]
    fn wake_pipe_interrupts_a_sleeping_poll() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1, "the wake must interrupt the poll");
        assert!(t0.elapsed() < Duration::from_secs(5));
        pipe.drain();
        // Drained: the next poll times out instead of spinning.
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drained wake pipe must be quiet");
        handle.join().unwrap();
    }

    #[test]
    fn wakes_coalesce_and_never_block() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker().unwrap();
        // Far more wakes than the pipe buffers: must not block or error.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap(), 1);
        pipe.drain();
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap(),
            0
        );
    }
}
