//! Executable case-complexity reductions (Section 5 of the paper).
//!
//! The hardness half of the trichotomy (Theorem 1.6) is proved through
//! counting slice reductions. This crate makes the *constructions inside
//! those proofs* executable and testable:
//!
//! * [`clique`] — `#Clique → #CQ` (clique queries; the reduction that makes
//!   unbounded-width classes `#W[1]`-hard) and the converse direction as a
//!   solver;
//! * [`fullcolor`] — Lemma 5.10: counting `fullcolor(Q)`-answers with a
//!   `count(Q, ·)` oracle, via the automorphism group, inclusion–exclusion
//!   over the free variables, and Vandermonde interpolation on blown-up
//!   structures;
//! * [`simple`] — Claim 5.16: counting answers of `simple(Q)` through
//!   `fullcolor(Q)` on a product structure;
//! * [`oracle`] — the counting-oracle plumbing shared by the reductions.

pub mod clique;
pub mod counting_slice;
pub mod fullcolor;
pub mod oracle;
pub mod simple;
pub mod slice;
pub mod thm_c4;

pub use clique::{count_cliques_via_cq, count_cliques_via_cq_with};
pub use counting_slice::{lemma_5_10_reduction, CountingSliceReduction, TargetOracle};
pub use fullcolor::{count_fullcolor_via_oracle, free_automorphism_count};
pub use oracle::{CountOracle, OracleStats};
pub use simple::{simple_to_general, SimpleReductionError};
pub use slice::{
    frontier_query, graph_query, lemma_5_25_frontier, obs_5_19_graph, obs_5_20_deletion,
    ParsimoniousReduction,
};
pub use thm_c4::thm_c4_gadget;
