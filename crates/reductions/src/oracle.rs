//! Counting-oracle plumbing for the slice reductions.

use cqcount_arith::Natural;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::Database;

/// Statistics about oracle usage (the "cost" of a counting slice reduction
/// is measured in oracle calls on instances of bounded size).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of `count(Q, ·)` invocations.
    pub calls: usize,
    /// Total tuples across all databases passed to the oracle.
    pub total_tuples: usize,
    /// Largest database passed (in tuples).
    pub max_tuples: usize,
}

/// The boxed counting function an oracle wraps.
type Counter<'a> = Box<dyn FnMut(&ConjunctiveQuery, &Database) -> Natural + 'a>;

/// A `count(Q, ·)` oracle with call accounting.
pub struct CountOracle<'a> {
    counter: Counter<'a>,
    stats: OracleStats,
}

impl<'a> CountOracle<'a> {
    /// Wraps any counting function as an oracle.
    pub fn new(f: impl FnMut(&ConjunctiveQuery, &Database) -> Natural + 'a) -> CountOracle<'a> {
        CountOracle {
            counter: Box::new(f),
            stats: OracleStats::default(),
        }
    }

    /// Invokes the oracle.
    pub fn count(&mut self, q: &ConjunctiveQuery, db: &Database) -> Natural {
        self.stats.calls += 1;
        let t = db.total_tuples();
        self.stats.total_tuples += t;
        self.stats.max_tuples = self.stats.max_tuples.max(t);
        (self.counter)(q, db)
    }

    /// Usage statistics so far.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::count_brute_force;
    use cqcount_query::parse_program;

    #[test]
    fn oracle_counts_calls() {
        let (q, db) = parse_program("r(a, b). ans(X) :- r(X, Y).").unwrap();
        let q = q.unwrap();
        let mut o = CountOracle::new(count_brute_force);
        assert_eq!(o.count(&q, &db), 1u64.into());
        assert_eq!(o.count(&q, &db), 1u64.into());
        assert_eq!(o.stats().calls, 2);
        assert_eq!(o.stats().total_tuples, 2);
        assert_eq!(o.stats().max_tuples, 1);
    }
}
