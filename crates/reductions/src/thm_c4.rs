//! The Theorem C.4 hardness gadget, executable.
//!
//! Theorem C.4 shows that computing D-optimal hypertree decompositions over
//! the *unrestricted* class `C_k` is NP-hard, by reducing full width-`k`
//! query decompositions to degree optimization: from a query `Q` it builds
//! a query `Q'` (each atom `q_j` doubled by a primed copy `q'_j` carrying a
//! fresh free variable `X_j`) and a database `D` over constants
//! `c_0..c_n` designed so that only decompositions mirroring a query
//! decomposition keep the degree below `n - k`.
//!
//! We implement the construction and test the degree properties its proof
//! asserts; the full biconditional is the NP-hardness argument itself and
//! is exercised structurally (shapes, cardinalities, per-relation degrees).

use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::Database;

/// The Theorem C.4 construction: builds `(Q', D)` from a constant-free
/// query `Q` with atoms `q_1..q_n`.
///
/// * `vars(Q') = vars(Q) ∪ {X_1..X_n}`, `free(Q') = {X_1..X_n}`;
/// * `atoms(Q') = atoms(Q) ∪ {q'_j}` with `vars(q'_j) = vars(q_j) ∪ {X_j}`
///   (the primed copy over a fresh relation symbol);
/// * `q_j^D = { θ_i|vars(q_j) : i ∈ 1..n }` where `θ_i` maps every
///   variable to `c_i`;
/// * `q'_j^D = {c_0} × { θ_i|vars(q_j) : i ≠ j } ∪ {c_j} × r_{-j}` where
///   `r_{-j}` maps one variable of `q_j` to `c_j` and all others to a
///   common constant in `c_1..c_n`.
pub fn thm_c4_gadget(q: &ConjunctiveQuery) -> (ConjunctiveQuery, Database) {
    assert!(
        q.atoms()
            .iter()
            .all(|a| a.terms.iter().all(|t| matches!(t, Term::Var(_)))),
        "Theorem C.4 gadget requires a constant-free query"
    );
    let n = q.atoms().len();

    // Q': original atoms + primed copies with the fresh free X_j.
    let mut qp = q.clone();
    let mut xs: Vec<Var> = Vec::with_capacity(n);
    for j in 0..n {
        let xj = qp.var(&format!("Xc4_{j}"));
        xs.push(xj);
        let base = &q.atoms()[j];
        let mut terms = base.terms.clone();
        terms.push(Term::Var(xj));
        qp.add_atom(&format!("{}@prime{j}", base.rel), terms);
    }
    qp.set_free(xs);

    // D over c_0..c_n.
    let mut db = Database::new();
    let constant = |db: &mut Database, i: usize| db.value(&format!("c{i}"));
    for (j, atom) in q.atoms().iter().enumerate() {
        let arity = atom.terms.len();
        let distinct_vars = atom.vars().len();
        // q_j^D: the diagonal tuples θ_i, i = 1..n.
        for i in 1..=n {
            let c = constant(&mut db, i);
            db.add_tuple(&atom.rel, vec![c; arity]);
        }
        // q'_j^D part 1: X_j = c_0, body = θ_i for i ≠ j.
        let prime = format!("{}@prime{j}", atom.rel);
        for i in 1..=n {
            if i == j + 1 {
                continue;
            }
            let c = constant(&mut db, i);
            let c0 = constant(&mut db, 0);
            let mut row = vec![c; arity];
            row.push(c0);
            db.add_tuple(&prime, row);
        }
        // q'_j^D part 2: X_j = c_{j+1}, body ∈ r_{-j}: one distinct
        // variable ↦ c_{j+1}, the others ↦ a common constant in c_1..c_n.
        let vars = atom.vars();
        for special in 0..distinct_vars {
            for i in 1..=n {
                let cj = constant(&mut db, j + 1);
                let ci = constant(&mut db, i);
                let row: Vec<_> = atom
                    .terms
                    .iter()
                    .map(|t| {
                        let Term::Var(v) = t else { unreachable!() };
                        let pos = vars.iter().position(|x| x == v).unwrap();
                        if pos == special {
                            cj
                        } else {
                            ci
                        }
                    })
                    .chain(std::iter::once(cj))
                    .collect();
                db.add_tuple(&prime, row);
            }
        }
    }
    (qp, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_program;
    use cqcount_relational::{Bindings, ColTerm};

    fn base_query() -> ConjunctiveQuery {
        // each atom with a distinguished variable, as the proof assumes
        parse_program("ans() :- r(A, B, S1), s(B, C, S2), t(C, A, S3).")
            .unwrap()
            .0
            .unwrap()
    }

    fn bindings_of(db: &Database, rel: &str, arity: usize) -> Bindings {
        let terms: Vec<ColTerm> = (0..arity as u32).map(ColTerm::Var).collect();
        Bindings::from_atom(db.relation(rel).unwrap(), &terms)
    }

    #[test]
    fn gadget_shapes() {
        let q = base_query();
        let n = q.atoms().len();
        let (qp, db) = thm_c4_gadget(&q);
        assert_eq!(qp.atoms().len(), 2 * n);
        assert_eq!(qp.free().len(), n);
        // unprimed relations have exactly n (diagonal) tuples
        for atom in q.atoms() {
            assert_eq!(db.relation(&atom.rel).unwrap().len(), n);
        }
    }

    #[test]
    fn property_1_c0_rows() {
        // Proof property (1): the substitutions assigning c_0 to X_j number
        // n - 1 (only the value c_j is missing among the diagonals).
        let q = base_query();
        let n = q.atoms().len();
        let (_qp, db) = thm_c4_gadget(&q);
        for (j, atom) in q.atoms().iter().enumerate() {
            let prime = format!("{}@prime{j}", atom.rel);
            let arity = atom.terms.len() + 1;
            let b = bindings_of(&db, &prime, arity);
            let x_col = arity as u32 - 1;
            let c0 = db.interner().get("c0").unwrap();
            let with_c0 = b.select_eq(x_col, c0);
            assert_eq!(with_c0.len(), n - 1, "atom {j}");
        }
    }

    #[test]
    fn property_2_cj_rows_join_everywhere() {
        // Proof property (2): the X_j = c_j rows are r_{-j}: exactly one
        // variable carries c_j... so each unprimed relation (diagonal
        // c_1..c_n) joins some of them, giving the controlled blow-up.
        let q = base_query();
        let n = q.atoms().len();
        let (_qp, db) = thm_c4_gadget(&q);
        for (j, atom) in q.atoms().iter().enumerate() {
            let prime = format!("{}@prime{j}", atom.rel);
            let arity = atom.terms.len() + 1;
            let b = bindings_of(&db, &prime, arity);
            let x_col = arity as u32 - 1;
            let cj = db.interner().get(&format!("c{}", j + 1)).unwrap();
            let with_cj = b.select_eq(x_col, cj);
            // |r_{-j}| = |vars(q_j)| × n rows minus duplicates where all
            // values coincide (special var ↦ c_j with i = j+1 collapses).
            let distinct_vars = atom.vars().len();
            assert!(with_cj.len() <= distinct_vars * n);
            assert!(with_cj.len() >= distinct_vars * (n - 1), "atom {j}");
        }
    }

    #[test]
    fn gadget_answers_exist_and_are_countable() {
        // The construction is a real instance: counting must succeed and
        // agree across algorithms (it is exactly the kind of adversarial
        // instance the optimizer faces).
        let q = parse_program("ans() :- r(A, S1), s(A, S2).")
            .unwrap()
            .0
            .unwrap();
        let (qp, db) = thm_c4_gadget(&q);
        let brute = cqcount_core::count_brute_force(&qp, &db);
        let auto = cqcount_core::count_auto(&qp, &db);
        assert_eq!(brute, auto);
        assert!(brute > cqcount_arith::Natural::ZERO);
    }

    #[test]
    fn degree_is_high_without_structure() {
        // The gadget's whole point: naive decompositions see degree ~n.
        // Check the primed relations have degree > 1 w.r.t. their X_j.
        let q = base_query();
        let (_qp, db) = thm_c4_gadget(&q);
        for (j, atom) in q.atoms().iter().enumerate() {
            let prime = format!("{}@prime{j}", atom.rel);
            let arity = atom.terms.len() + 1;
            let b = bindings_of(&db, &prime, arity);
            let x_col = arity as u32 - 1;
            assert!(b.degree_wrt(&[x_col]) > 1, "atom {j}");
        }
    }
}
