//! Lemma 5.10, executable: counting the answers of `fullcolor(Q)` on a
//! structure `B` using only a `count(Q, ·)` oracle.
//!
//! The proof's machinery, faithfully implemented:
//!
//! 1. build the pair structure `D` over elements `(X, b)` with
//!    `b ∈ r_X^B`;
//! 2. the wanted quantity is `|N| = |N'| / |I|` (Claim 5.13), where `N'`
//!    are the answers whose variable-components cover all of `free(Q)` and
//!    `I` is the set of restrictions-to-`free(Q)` of automorphisms of `Q`;
//! 3. `|N'|` comes from inclusion–exclusion over subsets `T ⊆ free(Q)`
//!    (equation (3) of the proof);
//! 4. each `|N_T|` comes from Vandermonde interpolation: blowing the
//!    `T`-part of the domain up into `j` copies multiplies every answer
//!    with `i` `T`-mapped free variables by `j^i`, so the oracle counts on
//!    `D_{j,T}` for `j = 1..f+1` determine the stratified counts exactly.
//!
//! Precondition (as in the lemma): `color(Q)` is a core and `Q` is
//! constant-free; the function panics otherwise.

use crate::oracle::CountOracle;
use cqcount_arith::{linalg, Int, Natural, Rational};
use cqcount_query::color::{color, COLOR_PREFIX};
use cqcount_query::core_of::core_exact;
use cqcount_query::hom::enumerate_homomorphisms;
use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::{Database, Value};
use std::collections::BTreeSet;

/// The number of distinct restrictions to `free(Q)` of automorphisms of
/// `Q` (the `|I|` of Claim 5.13).
pub fn free_automorphism_count(q: &ConjunctiveQuery) -> usize {
    let vars = q.vars_in_atoms();
    let free: Vec<Var> = q.free().into_iter().collect();
    let mut restrictions: BTreeSet<Vec<Term>> = BTreeSet::new();
    for h in enumerate_homomorphisms(q, q) {
        // Bijective on the variables ⇒ automorphism (finite structure).
        let image: BTreeSet<&Term> = h.values().collect();
        let var_image: BTreeSet<Var> = image.iter().filter_map(|t| t.as_var()).collect();
        let maps_free_to_free = free
            .iter()
            .all(|v| h[v].as_var().is_some_and(|img| q.free().contains(&img)));
        if var_image.len() == vars.len() && h.len() == vars.len() && maps_free_to_free {
            restrictions.insert(free.iter().map(|v| h[v].clone()).collect());
        }
    }
    restrictions.len()
}

/// The name of the unary color relation for variable `X` of `q` — the
/// relations a Lemma 5.10 input structure `B` must provide.
pub fn color_relation_name(q: &ConjunctiveQuery, v: Var) -> String {
    format!("{COLOR_PREFIX}{}", q.var_name(v))
}

/// Counts `|fullcolor(Q)(B)|` — the answers of the fully colored query on
/// `B` — using only `count(Q, ·)` oracle calls (Lemma 5.10).
///
/// `b` must provide `q`'s relations plus a unary relation
/// [`color_relation_name`]`(q, X)` for every variable `X` listing its
/// admissible values. Panics if `q` contains constants or if `color(q)` is
/// not a core (the lemma's hypotheses).
pub fn count_fullcolor_via_oracle(
    q: &ConjunctiveQuery,
    b: &Database,
    oracle: &mut CountOracle,
) -> Natural {
    assert!(
        q.atoms()
            .iter()
            .all(|a| a.terms.iter().all(|t| matches!(t, Term::Var(_)))),
        "Lemma 5.10 machinery requires constant-free queries"
    );
    let colored = color(q);
    assert_eq!(
        core_exact(&colored).atoms().len(),
        colored.atoms().len(),
        "Lemma 5.10 requires color(Q) to be a core"
    );

    let free: Vec<Var> = q.free().into_iter().collect();
    let f = free.len();

    // Domain membership: (X, val) ∈ D iff val ∈ r_X^B.
    let in_domain = |x: Var, val: Value| -> bool {
        b.relation(&color_relation_name(q, x))
            .is_some_and(|r| r.contains(&[val]))
    };

    // |N_T| by interpolation, for every T ⊆ free.
    let mut n_prime = Int::ZERO;
    for mask in 0u32..(1 << f) {
        let t_set: BTreeSet<Var> = free
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        // rhs[j-1] = count(Q, D_{j,T}) for j = 1..f+1.
        let mut rhs = Vec::with_capacity(f + 1);
        for j in 1..=(f + 1) as u64 {
            let db = blowup_structure(q, b, &t_set, j as usize, &in_domain);
            rhs.push(Rational::from(Int::from(oracle.count(q, &db))));
        }
        // Solve Σ_{i=0..f} j^i · N_{T,i} = rhs_j  (matrix A[j-1][i] = j^i).
        let a: Vec<Vec<Rational>> = (1..=(f + 1) as i64)
            .map(|j| {
                let mut row = Vec::with_capacity(f + 1);
                let mut pow = Rational::ONE;
                for _ in 0..=f {
                    row.push(pow.clone());
                    pow = pow * Rational::from(j);
                }
                row
            })
            .collect();
        let solution = linalg::solve(&a, &rhs).expect("interpolation matrix is nonsingular");
        let n_t = solution[f]
            .to_int()
            .expect("stratified counts are integers");
        // inclusion–exclusion sign (-1)^{f - |T|}
        let sign = if (f - t_set.len()).is_multiple_of(2) {
            1i64
        } else {
            -1
        };
        n_prime += &(Int::from(sign) * &n_t);
    }

    assert!(
        !n_prime.is_negative(),
        "inclusion–exclusion produced a negative count: bug"
    );
    let i_count = free_automorphism_count(q);
    let n_prime = n_prime.into_magnitude();
    let (quotient, rem) = n_prime.divmod(&Natural::from(i_count as u64));
    assert!(rem.is_zero(), "|N'| must be divisible by |I| (Claim 5.13)");
    quotient
}

/// Builds `D_{j,T}`: the pair structure over elements `(X, val)` (with `j`
/// copies of the elements whose variable lies in `T`), with
/// `r^{D_{j,T}} = ⋃_{tuples} B(d₁) × ... × B(d_s)`.
fn blowup_structure(
    q: &ConjunctiveQuery,
    b: &Database,
    t_set: &BTreeSet<Var>,
    j: usize,
    in_domain: &impl Fn(Var, Value) -> bool,
) -> Database {
    let mut out = Database::new();
    for atom in q.atoms() {
        out.ensure_relation(&atom.rel, atom.terms.len());
        let Some(rel) = b.relation(&atom.rel) else {
            continue;
        };
        if rel.arity() != atom.terms.len() {
            continue;
        }
        let vars: Vec<Var> = atom
            .terms
            .iter()
            .map(|t| t.as_var().expect("constant-free"))
            .collect();
        'tuple: for tuple in rel.iter() {
            for (i, &x) in vars.iter().enumerate() {
                if !in_domain(x, tuple[i]) {
                    continue 'tuple;
                }
            }
            // copies per position: j if the position's variable ∈ T
            let copy_counts: Vec<usize> = vars
                .iter()
                .map(|x| if t_set.contains(x) { j } else { 1 })
                .collect();
            let mut choice = vec![0usize; vars.len()];
            loop {
                let row: Vec<Value> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        let val_name = b.interner().name(tuple[i]);
                        out.value(&format!("p@{}#{}@{}", q.var_name(x), choice[i], val_name))
                    })
                    .collect();
                out.add_tuple(&atom.rel, row);
                // next multi-index
                let mut pos = 0;
                loop {
                    if pos == vars.len() {
                        break;
                    }
                    choice[pos] += 1;
                    if choice[pos] < copy_counts[pos] {
                        break;
                    }
                    choice[pos] = 0;
                    pos += 1;
                }
                if pos == vars.len() {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::count_brute_force;
    use cqcount_query::color::fullcolor;
    use cqcount_query::parse_program;

    /// Builds a B-structure: base facts plus full color relations (every
    /// variable may take every listed value).
    fn with_colors(q: &ConjunctiveQuery, base: &str, values: &[&str]) -> Database {
        let (_, mut db) = parse_program(base).unwrap();
        for v in q.vars_in_atoms() {
            for val in values {
                let val = db.value(val);
                db.add_tuple(&color_relation_name(q, v), vec![val]);
            }
        }
        db
    }

    fn check(q: &ConjunctiveQuery, b: &Database) {
        let direct = count_brute_force(&fullcolor(q), b);
        let mut oracle = CountOracle::new(count_brute_force);
        let via_reduction = count_fullcolor_via_oracle(q, b, &mut oracle);
        assert_eq!(via_reduction, direct, "reduction vs direct");
        // the reduction used (f+1) · 2^f oracle calls
        let f = q.free().len();
        assert_eq!(oracle.stats().calls, (f + 1) * (1 << f));
    }

    #[test]
    fn single_edge_query() {
        // Q = r(X, Y), free {X}; color(Q) is a core.
        let (q, _) = parse_program("ans(X) :- r(X, Y).").unwrap();
        let q = q.unwrap();
        let b = with_colors(&q, "r(a, b). r(b, c). r(c, c).", &["a", "b", "c"]);
        check(&q, &b);
    }

    #[test]
    fn asymmetric_colors() {
        let (q, _) = parse_program("ans(X) :- r(X, Y).").unwrap();
        let q = q.unwrap();
        // X may only be 'a'; Y may be anything.
        let (_, mut b) = parse_program("r(a, b). r(b, c). r(a, c).").unwrap();
        let x = q.find_var("X").unwrap();
        let y = q.find_var("Y").unwrap();
        let va = b.value("a");
        b.add_tuple(&color_relation_name(&q, x), vec![va]);
        for val in ["a", "b", "c"] {
            let v = b.value(val);
            b.add_tuple(&color_relation_name(&q, y), vec![v]);
        }
        let direct = count_brute_force(&fullcolor(&q), &b);
        assert_eq!(direct, 1u64.into()); // only X = a
        let mut oracle = CountOracle::new(count_brute_force);
        assert_eq!(count_fullcolor_via_oracle(&q, &b, &mut oracle), direct);
    }

    #[test]
    fn path_query_two_free() {
        let (q, _) = parse_program("ans(X, Z) :- r(X, Y), r(Y, Z).").unwrap();
        let q = q.unwrap();
        let b = with_colors(&q, "r(a, b). r(b, c). r(c, a). r(a, a).", &["a", "b", "c"]);
        check(&q, &b);
    }

    #[test]
    fn query_with_nontrivial_free_automorphisms() {
        // ans(X1, X2) :- r(X1, Y), r(X2, Y): swapping X1, X2 extends to an
        // automorphism, so |I| = 2 and the division is exercised.
        let (q, _) = parse_program("ans(X1, X2) :- r(X1, Y), r(X2, Y).").unwrap();
        let q = q.unwrap();
        assert_eq!(free_automorphism_count(&q), 2);
        let b = with_colors(&q, "r(a, u). r(b, u). r(c, w).", &["a", "b", "c", "u", "w"]);
        check(&q, &b);
    }

    #[test]
    fn boolean_fullcolor() {
        let (q, _) = parse_program("ans() :- r(X, Y), r(Y, X).").unwrap();
        let q = q.unwrap();
        // color(Q) = Q here (no free vars); is it a core? r(X,Y),r(Y,X)
        // cannot fold (collapsing X=Y needs a loop r(Z,Z) in the query:
        // mapping both to X requires atom r(X,X) — absent). So yes.
        let b = with_colors(&q, "r(a, b). r(b, a).", &["a", "b"]);
        check(&q, &b);
        // and an unsatisfiable B
        let b2 = with_colors(&q, "r(a, b).", &["a", "b"]);
        check(&q, &b2);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn non_core_coloring_rejected() {
        // ans(X) :- r(X, Y), r(X, Z): Y and Z collapse, color(Q) not a core.
        let (q, _) = parse_program("ans(X) :- r(X, Y), r(X, Z).").unwrap();
        let q = q.unwrap();
        let b = with_colors(&q, "r(a, b).", &["a", "b"]);
        let mut oracle = CountOracle::new(count_brute_force);
        let _ = count_fullcolor_via_oracle(&q, &b, &mut oracle);
    }
}
