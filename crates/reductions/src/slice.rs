//! Parsimonious slice reductions (Definition 5.2), as executable database
//! transformations — plus the concrete constructions the trichotomy proof
//! composes: Observation 5.19 (`graph(Q)`), Observation 5.20 (closure under
//! atom deletion) and Lemma 5.25 (the frontier-query reduction at the heart
//! of the hardness proof).
//!
//! A [`ParsimoniousReduction`] carries a *source* query, a *target* query
//! and a database transformation with `|source(B)| = |target(r(B))|` for
//! every database `B` of the source vocabulary. Reductions compose
//! (Theorem 5.4's transitivity, specialized to the parsimonious case).

use cqcount_hypergraph::{frontier_hypergraph, w_components, NodeSet};
use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::{Database, Relation, Value};
use std::collections::BTreeMap;
use std::rc::Rc;

/// An executable parsimonious slice reduction between two concrete queries:
/// for every database `B`, `|source(B)| = |target(transform(B))|`.
#[derive(Clone)]
pub struct ParsimoniousReduction {
    /// The query whose answers are being counted.
    pub source: ConjunctiveQuery,
    /// The query the counting is delegated to.
    pub target: ConjunctiveQuery,
    transform: Rc<dyn Fn(&Database) -> Database>,
}

impl ParsimoniousReduction {
    /// Builds a reduction from its parts.
    pub fn new(
        source: ConjunctiveQuery,
        target: ConjunctiveQuery,
        transform: impl Fn(&Database) -> Database + 'static,
    ) -> ParsimoniousReduction {
        ParsimoniousReduction {
            source,
            target,
            transform: Rc::new(transform),
        }
    }

    /// Applies the database transformation.
    pub fn transform(&self, db: &Database) -> Database {
        (self.transform)(db)
    }

    /// Composes two reductions (`self` first, then `next`); `next.source`
    /// must equal `self.target`.
    pub fn then(&self, next: &ParsimoniousReduction) -> ParsimoniousReduction {
        assert_eq!(
            self.target.atoms(),
            next.source.atoms(),
            "composition requires matching intermediate query"
        );
        let first = self.transform.clone();
        let second = next.transform.clone();
        ParsimoniousReduction {
            source: self.source.clone(),
            target: next.target.clone(),
            transform: Rc::new(move |db| second(&first(db))),
        }
    }
}

/// The primal-graph query `graph(Q)` of Observation 5.19: one fresh binary
/// atom `pe_i(u, v)` per primal-graph edge, same free variables.
pub fn graph_query(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut out = ConjunctiveQuery::new();
    let vars: BTreeMap<Var, Var> = q
        .vars_in_atoms()
        .into_iter()
        .map(|v| (v, out.var(q.var_name(v))))
        .collect();
    let primal = cqcount_hypergraph::primal::PrimalGraph::of(&q.hypergraph());
    let mut i = 0;
    let nodes: Vec<Var> = q.vars_in_atoms().into_iter().collect();
    for (ai, &u) in nodes.iter().enumerate() {
        for &v in &nodes[ai + 1..] {
            if primal.adjacent(u.node(), v.node()) {
                out.add_atom(
                    &format!("pe{i}"),
                    vec![Term::Var(vars[&u]), Term::Var(vars[&v])],
                );
                i += 1;
            }
        }
    }
    out.set_free(q.free().into_iter().map(|v| vars[&v]));
    out
}

/// Observation 5.19: reduces counting for `graph(Q)` to counting for `Q` —
/// the database transformation simulates each binary edge relation with the
/// atoms of `Q`: `r^B` contains the tuples whose projections to every
/// primal-edge pair are allowed by the corresponding `pe` relation.
///
/// `q` must be *simple* (distinct relation symbols) and constant-free.
pub fn obs_5_19_graph(q: &ConjunctiveQuery) -> ParsimoniousReduction {
    assert!(q.is_simple(), "Observation 5.19 requires a simple query");
    let gq = graph_query(q);
    let q_atoms = q.clone();
    // Map a variable pair to its pe-relation name (in graph_query order).
    let primal = cqcount_hypergraph::primal::PrimalGraph::of(&q.hypergraph());
    let nodes: Vec<Var> = q.vars_in_atoms().into_iter().collect();
    let mut pe_name: BTreeMap<(Var, Var), String> = BTreeMap::new();
    let mut i = 0;
    for (ai, &u) in nodes.iter().enumerate() {
        for &v in &nodes[ai + 1..] {
            if primal.adjacent(u.node(), v.node()) {
                pe_name.insert((u, v), format!("pe{i}"));
                pe_name.insert((v, u), format!("pe{i}")); // reversed lookup
                i += 1;
            }
        }
    }
    let pe_order: BTreeMap<(Var, Var), bool> = {
        // whether (u,v) is the stored orientation
        let mut m = BTreeMap::new();
        for (ai, &u) in nodes.iter().enumerate() {
            for &v in &nodes[ai + 1..] {
                if primal.adjacent(u.node(), v.node()) {
                    m.insert((u, v), true);
                    m.insert((v, u), false);
                }
            }
        }
        m
    };

    let transform = move |bprime: &Database| -> Database {
        let mut out = Database::new();
        // active domain of B'
        let mut domain: Vec<String> = Vec::new();
        for (_, rel) in bprime.relations() {
            for t in rel.iter() {
                for v in t.iter() {
                    let name = bprime.interner().name(*v).to_owned();
                    if !domain.contains(&name) {
                        domain.push(name);
                    }
                }
            }
        }
        let allowed = |u: Var, v: Var, bu: &str, bv: &str| -> bool {
            let Some(rel_name) = pe_name.get(&(u, v)) else {
                return true;
            };
            let Some(rel) = bprime.relation(rel_name) else {
                return false;
            };
            let (a, b) = if pe_order[&(u, v)] {
                (bu, bv)
            } else {
                (bv, bu)
            };
            match (bprime.interner().get(a), bprime.interner().get(b)) {
                (Some(av), Some(bv)) => rel.contains(&[av, bv]),
                _ => false,
            }
        };
        for atom in q_atoms.atoms() {
            let vars = atom.vars();
            out.ensure_relation(&atom.rel, atom.terms.len());
            // enumerate assignments of the atom's distinct vars over domain
            let k = vars.len();
            let mut choice = vec![0usize; k];
            if domain.is_empty() {
                continue;
            }
            loop {
                let assignment: Vec<&str> = choice.iter().map(|&c| domain[c].as_str()).collect();
                let ok = (0..k).all(|a| {
                    (a + 1..k).all(|b| allowed(vars[a], vars[b], assignment[a], assignment[b]))
                });
                if ok {
                    let tuple: Vec<Value> = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => {
                                let pos = vars.iter().position(|x| x == v).unwrap();
                                out.value(assignment[pos])
                            }
                            Term::Const(_) => unreachable!("constant-free"),
                        })
                        .collect();
                    out.add_tuple(&atom.rel, tuple);
                }
                // next multi-index
                let mut p = 0;
                loop {
                    if p == k {
                        break;
                    }
                    choice[p] += 1;
                    if choice[p] < domain.len() {
                        break;
                    }
                    choice[p] = 0;
                    p += 1;
                }
                if p == k {
                    break;
                }
            }
        }
        out
    };
    ParsimoniousReduction::new(gq, q.clone(), transform)
}

/// Observation 5.20: reduces counting for a sub-query `Q'` (atoms deleted)
/// to counting for `Q`: fill every deleted atom's relation with all tuples
/// over the active domain.
pub fn obs_5_20_deletion(q: &ConjunctiveQuery, kept: &[usize]) -> ParsimoniousReduction {
    let sub = q.sub_query(kept);
    let q_full = q.clone();
    let q_ret = q.clone();
    let kept: Vec<usize> = kept.to_vec();
    let transform = move |bprime: &Database| -> Database {
        let mut out = Database::new();
        let mut domain: Vec<String> = Vec::new();
        for (_, rel) in bprime.relations() {
            for t in rel.iter() {
                for v in t.iter() {
                    let name = bprime.interner().name(*v).to_owned();
                    if !domain.contains(&name) {
                        domain.push(name);
                    }
                }
            }
        }
        // copy kept relations
        for (name, rel) in bprime.relations() {
            out.ensure_relation(name, rel.arity());
            for t in rel.iter() {
                let vals = t
                    .iter()
                    .map(|v| {
                        let n = bprime.interner().name(*v).to_owned();
                        out.value(&n)
                    })
                    .collect();
                out.add_tuple(name, vals);
            }
        }
        // fill deleted atoms' relations with domain^arity
        for (i, atom) in q_full.atoms().iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            let arity = atom.terms.len();
            out.ensure_relation(&atom.rel, arity);
            let mut full = Relation::new(arity);
            let mut choice = vec![0usize; arity];
            if domain.is_empty() {
                continue;
            }
            loop {
                let tuple: Vec<Value> = choice.iter().map(|&c| out.value(&domain[c])).collect();
                full.insert(tuple);
                let mut p = 0;
                loop {
                    if p == arity {
                        break;
                    }
                    choice[p] += 1;
                    if choice[p] < domain.len() {
                        break;
                    }
                    choice[p] = 0;
                    p += 1;
                }
                if p == arity {
                    break;
                }
            }
            out.set_relation(&atom.rel, full);
        }
        out
    };
    ParsimoniousReduction::new(sub, q_ret, transform)
}

/// The frontier query of `Q`: a quantifier-free simple query with one atom
/// `fh_i(ē)` per hyperedge of `FH(Q, free(Q))` (Lemma 5.25's `Q'`).
pub fn frontier_query(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let fh = frontier_hypergraph(&q.hypergraph(), &q.free_nodes());
    let mut out = ConjunctiveQuery::new();
    let mut free = Vec::new();
    for v in q.free() {
        let nv = out.var(q.var_name(v));
        free.push(nv);
    }
    for (i, e) in fh.edges().iter().enumerate() {
        let terms: Vec<Term> = e
            .iter()
            .map(|n| Term::Var(out.var(q.var_name(Var(n)))))
            .collect();
        out.add_atom(&format!("fh{i}"), terms);
    }
    out.set_free(free);
    out
}

/// Lemma 5.25's construction: reduces counting for the frontier query of a
/// simple, constant-free `Q` to counting for `Q` itself. Every
/// `[free]`-component's variables get the encoded frontier-assignments as
/// their domain; atoms touching a component pin the free variables to the
/// encoded values; atoms over free variables only read the corresponding
/// frontier relation directly.
pub fn lemma_5_25_frontier(q: &ConjunctiveQuery) -> ParsimoniousReduction {
    assert!(q.is_simple(), "Lemma 5.25 requires a simple query");
    let fq = frontier_query(q);
    let q_owned = q.clone();

    // Map each frontier-hypergraph edge to its fh relation name, and each
    // component to its frontier edge.
    let h = q.hypergraph();
    let free_nodes = q.free_nodes();
    let fh = frontier_hypergraph(&h, &free_nodes);
    let fh_names: Vec<(NodeSet, String)> = fh
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.clone(), format!("fh{i}")))
        .collect();
    let components = w_components(&h, &free_nodes);

    let transform = move |bprime: &Database| -> Database {
        let mut out = Database::new();
        let q = &q_owned;
        // For each component: frontier edge, its fh relation rows, encoded
        // constants.
        struct CompInfo {
            vars: NodeSet,
            frontier: Vec<u32>, // sorted frontier nodes
            rows: Vec<Vec<String>>,
        }
        let infos: Vec<CompInfo> = components
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let frontier_set = c.edge_nodes(&q.hypergraph()).intersection(&free_nodes);
                let frontier = frontier_set.to_vec();
                let rows: Vec<Vec<String>> = if frontier.is_empty() {
                    vec![vec![]]
                } else {
                    let name = &fh_names
                        .iter()
                        .find(|(e, _)| *e == frontier_set)
                        .expect("frontier edge present")
                        .1;
                    bprime
                        .relation(name)
                        .map(|rel| {
                            rel.iter()
                                .map(|t| {
                                    // fh atom terms are in NodeSet iteration
                                    // order (sorted), matching `frontier`.
                                    t.iter()
                                        .map(|v| bprime.interner().name(*v).to_owned())
                                        .collect()
                                })
                                .collect()
                        })
                        .unwrap_or_default()
                };
                let _ = ci;
                CompInfo {
                    vars: c.nodes.clone(),
                    frontier,
                    rows,
                }
            })
            .collect();

        for atom in q.atoms() {
            let vars = atom.vars();
            out.ensure_relation(&atom.rel, atom.terms.len());
            let existential: Vec<Var> = vars
                .iter()
                .copied()
                .filter(|v| !free_nodes.contains(v.node()))
                .collect();
            if existential.is_empty() {
                // Atom over free vars only: its edge is in FH; copy rows.
                let edge: NodeSet = vars.iter().map(|v| v.node()).collect();
                let name = &fh_names
                    .iter()
                    .find(|(e, _)| *e == edge)
                    .expect("free atom edge in FH")
                    .1;
                if let Some(rel) = bprime.relation(name) {
                    // fh atom columns are sorted by node id; map positions.
                    let sorted: Vec<Var> = edge.iter().map(Var).collect();
                    for t in rel.iter() {
                        let value_of = |v: &Var| -> String {
                            let pos = sorted.iter().position(|x| x == v).unwrap();
                            bprime.interner().name(t[pos]).to_owned()
                        };
                        let tuple: Vec<Value> = atom
                            .terms
                            .iter()
                            .map(|term| match term {
                                Term::Var(v) => {
                                    let s = value_of(v);
                                    out.value(&s)
                                }
                                Term::Const(_) => unreachable!("constant-free"),
                            })
                            .collect();
                        out.add_tuple(&atom.rel, tuple);
                    }
                }
                continue;
            }
            // Atom touches exactly one component.
            let ci = infos
                .iter()
                .position(|info| info.vars.contains(existential[0].node()))
                .expect("existential var in a component");
            let info = &infos[ci];
            for (ri, row) in info.rows.iter().enumerate() {
                let enc = format!("comp{ci}@t{ri}");
                let tuple: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|term| match term {
                        Term::Var(v) => {
                            if info.vars.contains(v.node()) {
                                out.value(&enc)
                            } else {
                                // free var: pinned to the encoded value
                                let pos = info
                                    .frontier
                                    .iter()
                                    .position(|&f| f == v.node())
                                    .expect("free var of the atom is in the frontier");
                                let s = row[pos].clone();
                                out.value(&s)
                            }
                        }
                        Term::Const(_) => unreachable!("constant-free"),
                    })
                    .collect();
                out.add_tuple(&atom.rel, tuple);
            }
        }
        out
    };
    ParsimoniousReduction::new(fq, q.clone(), transform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::count_brute_force;
    use cqcount_query::parse_program;
    use cqcount_workloads::random::{random_database, RandomDbConfig};

    fn verify(red: &ParsimoniousReduction, bprime: &Database) {
        let b = red.transform(bprime);
        assert_eq!(
            count_brute_force(&red.source, bprime),
            count_brute_force(&red.target, &b),
            "parsimonious equality violated"
        );
    }

    fn q(src: &str) -> ConjunctiveQuery {
        parse_program(src).unwrap().0.unwrap()
    }

    #[test]
    fn graph_query_shape() {
        let query = q("ans(X) :- r(X, Y, Z), s(Z, W).");
        let g = graph_query(&query);
        // primal edges: XY XZ YZ ZW = 4 atoms, all binary, free {X}
        assert_eq!(g.atoms().len(), 4);
        assert!(g.atoms().iter().all(|a| a.terms.len() == 2));
        assert_eq!(g.free().len(), 1);
    }

    #[test]
    fn obs_5_19_counts_match() {
        let query = q("ans(X) :- r(X, Y, Z), s(Z, W).");
        let red = obs_5_19_graph(&query);
        for seed in 0..4 {
            let bprime = random_database(
                &red.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 4,
                },
                seed,
            );
            verify(&red, &bprime);
        }
    }

    #[test]
    fn obs_5_20_counts_match() {
        let query = q("ans(X) :- r(X, Y), s(Y, Z), t(Z, X).");
        // delete atom t: kept = {0, 1}
        let red = obs_5_20_deletion(&query, &[0, 1]);
        assert_eq!(red.source.atoms().len(), 2);
        for seed in 0..4 {
            let bprime = random_database(
                &red.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 5,
                },
                seed,
            );
            verify(&red, &bprime);
        }
    }

    #[test]
    fn frontier_query_shape() {
        // ans(X1,X2) :- r(Y,X1), s(Y,X2): frontier of {Y} is {X1,X2}.
        let query = q("ans(X1, X2) :- r(Y, X1), s(Y, X2).");
        let fq = frontier_query(&query);
        assert_eq!(fq.atoms().len(), 1);
        assert_eq!(fq.atoms()[0].terms.len(), 2);
        assert!(fq.existential().is_empty());
    }

    #[test]
    fn lemma_5_25_star() {
        let query = q("ans(X1, X2) :- r(Y, X1), s(Y, X2).");
        let red = lemma_5_25_frontier(&query);
        for seed in 0..5 {
            let bprime = random_database(
                &red.source,
                &RandomDbConfig {
                    domain: 4,
                    tuples_per_rel: 6,
                },
                seed,
            );
            verify(&red, &bprime);
        }
    }

    #[test]
    fn lemma_5_25_multiple_components_and_free_atoms() {
        // Two components ({Y}, {Z}) plus an atom over free vars only.
        let query = q("ans(X1, X2) :- r(Y, X1), s(Z, X2), e(X1, X2).");
        let red = lemma_5_25_frontier(&query);
        // The frontier query has atoms for {X1}, {X2} and {X1,X2}.
        assert_eq!(red.source.atoms().len(), 3);
        for seed in 0..5 {
            let bprime = random_database(
                &red.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 5,
                },
                seed,
            );
            verify(&red, &bprime);
        }
    }

    #[test]
    fn lemma_5_25_bigger_frontier() {
        // Component {Y1,Y2} with frontier {X1,X2,X3}.
        let query = q("ans(X1, X2, X3) :- r(Y1, X1), u(Y1, Y2), s(Y2, X2), t(Y2, X3).");
        let red = lemma_5_25_frontier(&query);
        for seed in 0..4 {
            let bprime = random_database(
                &red.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 8,
                },
                seed,
            );
            verify(&red, &bprime);
        }
    }

    #[test]
    fn composition() {
        // graph(Q) → Q composed with deletion: count for a sub-query of
        // graph(Q) via Q.
        let query = q("ans(X) :- r(X, Y, Z).");
        let g_red = obs_5_19_graph(&query); // graph(Q) → Q
        let gq = g_red.source.clone();
        let del = obs_5_20_deletion(&gq, &[0, 1]); // sub(graph(Q)) → graph(Q)
        let chain = del.then(&g_red);
        for seed in 0..3 {
            let bprime = random_database(
                &chain.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 4,
                },
                seed,
            );
            verify(&chain, &bprime);
        }
    }
}
