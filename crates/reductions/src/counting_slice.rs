//! Counting slice reductions (Definition 5.1) and their composition
//! (Theorem 5.4), executable.
//!
//! A counting slice reduction from `Q[S]` to `Q'[S']` answers
//! `Q(s, y)` with an FPT computation that may query an oracle for
//! `Q'(t, z)` on a finite target set `T ⊆ S'`. Here both sides are
//! concrete `#CQ` slices, so a [`CountingSliceReduction`] is: a source
//! query, a finite list of target queries, and a procedure mapping a source
//! database plus a target-oracle to the source count.
//!
//! [`ParsimoniousReduction`]s lift into the framework (Proposition 5.3),
//! and Lemma 5.10 is packaged as [`lemma_5_10_reduction`] — a genuinely
//! *counting* (non-parsimonious) reduction: it combines many oracle
//! answers through interpolation and inclusion–exclusion.

use crate::fullcolor::count_fullcolor_via_oracle;
use crate::oracle::CountOracle;
use crate::slice::ParsimoniousReduction;
use cqcount_arith::Natural;
use cqcount_query::color::fullcolor;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::Database;
use std::rc::Rc;

/// The oracle interface handed to a reduction: `answer(target_index, db)`.
pub type TargetOracle<'a> = dyn FnMut(usize, &Database) -> Natural + 'a;

type ComputeFn = dyn Fn(&Database, &mut TargetOracle) -> Natural;

/// An executable counting slice reduction between `#CQ` slices.
#[derive(Clone)]
pub struct CountingSliceReduction {
    /// The query whose answers are being counted.
    pub source: ConjunctiveQuery,
    /// The finite target set `T` the oracle may be queried on.
    pub targets: Vec<ConjunctiveQuery>,
    compute: Rc<ComputeFn>,
}

impl CountingSliceReduction {
    /// Builds a reduction from its parts.
    pub fn new(
        source: ConjunctiveQuery,
        targets: Vec<ConjunctiveQuery>,
        compute: impl Fn(&Database, &mut TargetOracle) -> Natural + 'static,
    ) -> CountingSliceReduction {
        CountingSliceReduction {
            source,
            targets,
            compute: Rc::new(compute),
        }
    }

    /// Counts `|source(db)|` through the oracle.
    pub fn count(&self, db: &Database, oracle: &mut TargetOracle) -> Natural {
        (self.compute)(db, oracle)
    }

    /// Counts using a concrete counting function as the oracle.
    pub fn count_with(
        &self,
        db: &Database,
        mut counter: impl FnMut(&ConjunctiveQuery, &Database) -> Natural,
    ) -> Natural {
        let targets = self.targets.clone();
        let mut oracle = move |i: usize, d: &Database| counter(&targets[i], d);
        self.count(db, &mut oracle)
    }

    /// Proposition 5.3: every parsimonious slice reduction is a counting
    /// slice reduction (one oracle call, identity on the count).
    pub fn from_parsimonious(p: &ParsimoniousReduction) -> CountingSliceReduction {
        let p = p.clone();
        let transform = p.clone();
        CountingSliceReduction {
            source: p.source.clone(),
            targets: vec![p.target.clone()],
            compute: Rc::new(move |db, oracle| oracle(0, &transform.transform(db))),
        }
    }

    /// Theorem 5.4: composition. `self`'s targets must all appear (in
    /// order) as the sources of `next`, i.e. `next[i].source == targets[i]`;
    /// the result's targets are the union of the `next[i]` targets.
    pub fn then(&self, next: &[CountingSliceReduction]) -> CountingSliceReduction {
        assert_eq!(next.len(), self.targets.len(), "one reduction per target");
        for (t, n) in self.targets.iter().zip(next) {
            assert_eq!(t.atoms(), n.source.atoms(), "target/source mismatch");
        }
        // Flatten the target sets, remembering each child's offset.
        let mut targets = Vec::new();
        let mut offsets = Vec::new();
        for n in next {
            offsets.push(targets.len());
            targets.extend(n.targets.iter().cloned());
        }
        let first = self.compute.clone();
        let children: Vec<Rc<ComputeFn>> = next.iter().map(|n| n.compute.clone()).collect();
        CountingSliceReduction {
            source: self.source.clone(),
            targets,
            compute: Rc::new(move |db, oracle| {
                // Answer the first reduction's oracle queries by running
                // the matching child reduction against the outer oracle.
                // (The borrow dance: children capture the outer oracle per
                // call.)
                let children = children.clone();
                let offsets = offsets.clone();
                let mut inner = |i: usize, d: &Database| -> Natural {
                    let off = offsets[i];
                    let mut routed = |j: usize, dd: &Database| -> Natural { oracle(off + j, dd) };
                    (children[i])(d, &mut routed)
                };
                first(db, &mut inner)
            }),
        }
    }
}

/// Lemma 5.10 as a counting slice reduction: source `fullcolor(q)`, single
/// target `q`. Preconditions as in
/// [`count_fullcolor_via_oracle`] (constant-free, `color(q)` a core).
pub fn lemma_5_10_reduction(q: &ConjunctiveQuery) -> CountingSliceReduction {
    let source = fullcolor(q);
    let q_owned = q.clone();
    CountingSliceReduction::new(source, vec![q.clone()], move |db, oracle| {
        let mut wrapped = CountOracle::new(|_qq: &ConjunctiveQuery, d: &Database| oracle(0, d));
        count_fullcolor_via_oracle(&q_owned, db, &mut wrapped)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{obs_5_19_graph, obs_5_20_deletion};
    use cqcount_core::count_brute_force;
    use cqcount_query::parse_program;
    use cqcount_workloads::random::{random_database, RandomDbConfig};

    fn q(src: &str) -> ConjunctiveQuery {
        parse_program(src).unwrap().0.unwrap()
    }

    #[test]
    fn parsimonious_lifts() {
        let query = q("ans(X) :- r(X, Y, Z), s(Z, W).");
        let p = obs_5_19_graph(&query);
        let c = CountingSliceReduction::from_parsimonious(&p);
        for seed in 0..3 {
            let b = random_database(
                &c.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 4,
                },
                seed,
            );
            let via = c.count_with(&b, count_brute_force);
            assert_eq!(via, count_brute_force(&c.source, &b));
        }
    }

    #[test]
    fn lemma_5_10_as_counting_reduction() {
        let query = q("ans(X, Z) :- r(X, Y), r(Y, Z).");
        let red = lemma_5_10_reduction(&query);
        assert_eq!(red.targets.len(), 1);
        // Input: a B-structure with full colors.
        let (_, mut b) = parse_program("r(a, b). r(b, c). r(c, a).").unwrap();
        for v in query.vars_in_atoms() {
            for val in ["a", "b", "c"] {
                let vv = b.value(val);
                b.add_tuple(&crate::fullcolor::color_relation_name(&query, v), vec![vv]);
            }
        }
        let via = red.count_with(&b, count_brute_force);
        assert_eq!(via, count_brute_force(&red.source, &b));
    }

    #[test]
    fn composition_theorem_5_4() {
        // Chain: sub(graph(Q)) → graph(Q) → Q, all through the framework.
        let query = q("ans(X) :- r(X, Y, Z).");
        let g_red = CountingSliceReduction::from_parsimonious(&obs_5_19_graph(&query));
        let gq = g_red.source.clone();
        let del = CountingSliceReduction::from_parsimonious(&obs_5_20_deletion(&gq, &[0, 1]));
        let chain = del.then(std::slice::from_ref(&g_red));
        assert_eq!(chain.targets.len(), 1);
        assert_eq!(chain.targets[0].atoms(), query.atoms());
        for seed in 0..3 {
            let b = random_database(
                &chain.source,
                &RandomDbConfig {
                    domain: 3,
                    tuples_per_rel: 4,
                },
                seed,
            );
            let via = chain.count_with(&b, count_brute_force);
            assert_eq!(via, count_brute_force(&chain.source, &b), "seed {seed}");
        }
    }
}
