//! `#Clique ↔ #CQ` (the engine of Theorem 1.6's hardness side).
//!
//! The parameterized reduction from `#Clique[ℕ]` maps a graph `G` and `k`
//! to the clique query `ans(X₁..Xₖ) :- ⋀_{i<j} e(Xᵢ,Xⱼ)` over the symmetric
//! loop-free edge relation of `G`: its answers are the *ordered* cliques,
//! so `#cliques = count / k!`. The clique-query class has unbounded
//! treewidth, which is exactly why bounded `#`-hypertree width is necessary
//! for tractability (Theorem 5.24 / Lemma 5.22).

use cqcount_arith::Natural;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::Database;
use cqcount_workloads::graphs::{clique_query, factorial, Graph};

/// Counts `k`-cliques of `g` through the `#CQ` reduction, with a caller
/// supplied counting algorithm.
pub fn count_cliques_via_cq_with(
    g: &Graph,
    k: usize,
    count: impl FnOnce(&ConjunctiveQuery, &Database) -> Natural,
) -> Natural {
    let q = clique_query(k);
    let db = g.to_database();
    let ordered = count(&q, &db);
    ordered.exact_div(&factorial(k))
}

/// Counts `k`-cliques of `g` through the `#CQ` reduction using the
/// brute-force counter (any counter works; the reduction is the point).
pub fn count_cliques_via_cq(g: &Graph, k: usize) -> Natural {
    count_cliques_via_cq_with(g, k, cqcount_core::count_brute_force)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_workloads::graphs::{count_cliques_direct, random_graph};

    #[test]
    fn reduction_agrees_with_direct_counting() {
        for seed in 0..5 {
            let g = random_graph(8, 0.5, seed);
            for k in 2..=4 {
                assert_eq!(
                    count_cliques_via_cq(&g, k),
                    count_cliques_direct(&g, k),
                    "seed {seed}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn dense_graph_k5() {
        let g = random_graph(7, 0.9, 11);
        assert_eq!(count_cliques_via_cq(&g, 5), count_cliques_direct(&g, 5));
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = random_graph(6, 0.0, 0);
        assert_eq!(count_cliques_via_cq(&g, 3), Natural::ZERO);
    }

    #[test]
    fn works_with_structural_counters_too() {
        // The planner (auto) must agree with brute force inside the
        // reduction as well.
        let g = random_graph(7, 0.6, 3);
        let via_auto = count_cliques_via_cq_with(&g, 3, cqcount_core::count_auto);
        assert_eq!(via_auto, count_cliques_direct(&g, 3));
    }
}
