//! Claim 5.16, executable: counting answers of a *simple* query through the
//! fully colored general query on a product structure.
//!
//! Given `Q̂` and its simple version `Q_s = simple(Q̂)` (fresh relation
//! symbol per atom), and a database `B` for `Q_s`, the construction builds
//! `B̂` over `fullcolor(Q̂)`'s vocabulary with domain `vars(Q_s) × B`: the
//! `i`-th atom of `Q̂` (symbol `r`, terms `X̄`) contributes the tuples
//! `((X₁,b₁), ..., (X_k,b_k))` for `(b̄) ∈ r_i'^B`, and the color relation
//! of `X` holds exactly the pairs `(X, b)`. Then
//! `|Q_s(B)| = |fullcolor(Q̂)(B̂)|`.

use std::fmt;

use cqcount_query::color::fullcolor;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;

/// Why the Claim 5.16 construction rejected its input. These were
/// `panic!`/`assert!` failures before the serving layer existed; a daemon
/// handed a malformed reduction request must report, not die.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimpleReductionError {
    /// `qs` is not `qhat.to_simple()`: the atom lists have different
    /// lengths.
    AtomCountMismatch {
        /// Atoms in the general query `Q̂`.
        general: usize,
        /// Atoms in the supposed simple version.
        simple: usize,
    },
    /// Atom `index` of `qs` carries different terms than atom `index` of
    /// `qhat`, so the two queries do not align.
    TermMismatch {
        /// Index of the offending atom pair.
        index: usize,
    },
    /// The machinery requires constant-free queries; atom `index` of `Q̂`
    /// contains a constant.
    ConstantInQuery {
        /// Index of the offending atom.
        index: usize,
    },
}

impl fmt::Display for SimpleReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleReductionError::AtomCountMismatch { general, simple } => write!(
                f,
                "reduction error: atom lists must align \
                 ({general} general vs {simple} simple atoms)"
            ),
            SimpleReductionError::TermMismatch { index } => {
                write!(f, "reduction error: term lists differ at atom {index}")
            }
            SimpleReductionError::ConstantInQuery { index } => write!(
                f,
                "reduction error: constant in atom {index}; \
                 Claim 5.16 machinery requires constant-free queries"
            ),
        }
    }
}

impl std::error::Error for SimpleReductionError {}

/// The Claim 5.16 construction. `qs` must be `qhat.to_simple()` (atoms in
/// the same order); `b` is a database for `qs`. Returns
/// `(fullcolor(qhat), B̂)` with `|qs(B)| = |fullcolor(qhat)(B̂)|`, or a
/// typed error when the inputs do not align.
pub fn simple_to_general(
    qhat: &ConjunctiveQuery,
    qs: &ConjunctiveQuery,
    b: &Database,
) -> Result<(ConjunctiveQuery, Database), SimpleReductionError> {
    if qhat.atoms().len() != qs.atoms().len() {
        return Err(SimpleReductionError::AtomCountMismatch {
            general: qhat.atoms().len(),
            simple: qs.atoms().len(),
        });
    }
    let mut out = Database::new();
    let pair = |db: &mut Database, var_name: &str, val_name: &str| {
        db.value(&format!("p@{var_name}@{val_name}"))
    };

    for (index, (general, simple)) in qhat.atoms().iter().zip(qs.atoms()).enumerate() {
        if general.terms != simple.terms {
            return Err(SimpleReductionError::TermMismatch { index });
        }
        if general.terms.iter().any(|t| matches!(t, Term::Const(_))) {
            return Err(SimpleReductionError::ConstantInQuery { index });
        }
        out.ensure_relation(&general.rel, general.terms.len());
        let Some(rel) = b.relation(&simple.rel) else {
            continue;
        };
        if rel.arity() != general.terms.len() {
            continue;
        }
        for tuple in rel.iter() {
            let row: Vec<_> = general
                .terms
                .iter()
                .zip(tuple.iter())
                .map(|(t, v)| {
                    let Term::Var(x) = t else {
                        unreachable!("constants rejected above");
                    };
                    let val_name = b.interner().name(*v).to_owned();
                    pair(&mut out, qhat.var_name(*x), &val_name)
                })
                .collect();
            out.add_tuple(&general.rel, row);
        }
    }
    // Color relations r_X = {(X, b) | b ∈ B}.
    let domain: Vec<String> = b
        .interner()
        .values()
        .map(|v| b.interner().name(v).to_owned())
        .collect();
    for x in qhat.vars_in_atoms() {
        let rel = format!("{}{}", cqcount_query::color::COLOR_PREFIX, qhat.var_name(x));
        out.ensure_relation(&rel, 1);
        for val in &domain {
            let p = pair(&mut out, qhat.var_name(x), val);
            out.add_tuple(&rel, vec![p]);
        }
    }
    Ok((fullcolor(qhat), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::count_brute_force;
    use cqcount_query::parse_program;
    use cqcount_workloads::random::{
        random_database, random_query, RandomCqConfig, RandomDbConfig,
    };

    fn check(qhat: &ConjunctiveQuery, b_src: Option<&str>) {
        let qs = qhat.to_simple();
        let b = match b_src {
            Some(src) => {
                // facts use the simple names r#i
                let (_, db) = parse_program(src).unwrap();
                db
            }
            None => random_database(&qs, &RandomDbConfig::default(), 17),
        };
        let (fc, bhat) = simple_to_general(qhat, &qs, &b).unwrap();
        assert_eq!(
            count_brute_force(&qs, &b),
            count_brute_force(&fc, &bhat),
            "Claim 5.16 equality"
        );
    }

    #[test]
    fn repeated_symbols_query() {
        let (q, _) = parse_program("ans(X) :- r(X, Y), r(Y, Z), r(Z, X).").unwrap();
        check(&q.unwrap(), None);
    }

    #[test]
    fn q0_shape() {
        let q = cqcount_workloads::paper::q0_query();
        check(&q, None);
    }

    #[test]
    fn random_queries_roundtrip() {
        for seed in 0..8 {
            let q = random_query(
                &RandomCqConfig {
                    atoms: 4,
                    vars: 4,
                    max_arity: 2,
                    rels: 2,
                    free_prob: 0.5,
                },
                seed,
            );
            check(&q, None);
        }
    }

    #[test]
    fn explicit_small_case() {
        let (q, _) = parse_program("ans(X) :- e(X, Y), e(Y, X).").unwrap();
        let q = q.unwrap();
        let qs = q.to_simple();
        // facts for e#0 and e#1 differ: the simple query is genuinely more
        // general than the original.
        let mut b = Database::new();
        for (rel, pairs) in [
            ("e#0", vec![("a", "b"), ("b", "a"), ("b", "c")]),
            ("e#1", vec![("b", "a"), ("c", "b")]),
        ] {
            for (u, v) in pairs {
                let uu = b.value(u);
                let vv = b.value(v);
                b.add_tuple(rel, vec![uu, vv]);
            }
        }
        let (fc, bhat) = simple_to_general(&q, &qs, &b).unwrap();
        assert_eq!(count_brute_force(&qs, &b), count_brute_force(&fc, &bhat));
        assert_eq!(count_brute_force(&qs, &b), 2u64.into()); // X ∈ {a, b}
    }

    #[test]
    fn misaligned_inputs_yield_typed_errors() {
        let (q, _) = parse_program("ans(X) :- r(X, Y), r(Y, X).").unwrap();
        let q = q.unwrap();
        let qs = q.to_simple();
        let b = Database::new();

        // Wrong atom count: only the first simple atom.
        let mut short = ConjunctiveQuery::new();
        let sx = short.var("X");
        let sy = short.var("Y");
        short.add_atom(&qs.atoms()[0].rel, vec![Term::Var(sx), Term::Var(sy)]);
        assert_eq!(
            simple_to_general(&q, &short, &b).unwrap_err(),
            SimpleReductionError::AtomCountMismatch {
                general: 2,
                simple: 1
            }
        );

        // Same length, but atom 1's terms swapped: `r#1(X, Y)` instead of
        // `r#1(Y, X)`.
        let mut twisted = ConjunctiveQuery::new();
        let x = twisted.var("X");
        let y = twisted.var("Y");
        twisted.add_atom(&qs.atoms()[0].rel, vec![Term::Var(x), Term::Var(y)]);
        twisted.add_atom(&qs.atoms()[1].rel, vec![Term::Var(x), Term::Var(y)]);
        assert_eq!(
            simple_to_general(&q, &twisted, &b).unwrap_err(),
            SimpleReductionError::TermMismatch { index: 1 }
        );

        // Constants are rejected with the atom index.
        let (qc, _) = parse_program("ans(X) :- r(X, c).").unwrap();
        let qc = qc.unwrap();
        let qcs = qc.to_simple();
        assert_eq!(
            simple_to_general(&qc, &qcs, &b).unwrap_err(),
            SimpleReductionError::ConstantInQuery { index: 0 }
        );
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            SimpleReductionError::AtomCountMismatch {
                general: 2,
                simple: 1
            }
            .to_string(),
            "reduction error: atom lists must align (2 general vs 1 simple atoms)"
        );
        assert_eq!(
            SimpleReductionError::TermMismatch { index: 3 }.to_string(),
            "reduction error: term lists differ at atom 3"
        );
    }
}
