//! Claim 5.16, executable: counting answers of a *simple* query through the
//! fully colored general query on a product structure.
//!
//! Given `Q̂` and its simple version `Q_s = simple(Q̂)` (fresh relation
//! symbol per atom), and a database `B` for `Q_s`, the construction builds
//! `B̂` over `fullcolor(Q̂)`'s vocabulary with domain `vars(Q_s) × B`: the
//! `i`-th atom of `Q̂` (symbol `r`, terms `X̄`) contributes the tuples
//! `((X₁,b₁), ..., (X_k,b_k))` for `(b̄) ∈ r_i'^B`, and the color relation
//! of `X` holds exactly the pairs `(X, b)`. Then
//! `|Q_s(B)| = |fullcolor(Q̂)(B̂)|`.

use cqcount_query::color::fullcolor;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;

/// The Claim 5.16 construction. `qs` must be `qhat.to_simple()` (atoms in
/// the same order); `b` is a database for `qs`. Returns
/// `(fullcolor(qhat), B̂)` with `|qs(B)| = |fullcolor(qhat)(B̂)|`.
pub fn simple_to_general(
    qhat: &ConjunctiveQuery,
    qs: &ConjunctiveQuery,
    b: &Database,
) -> (ConjunctiveQuery, Database) {
    assert_eq!(
        qhat.atoms().len(),
        qs.atoms().len(),
        "atom lists must align"
    );
    let mut out = Database::new();
    let pair = |db: &mut Database, var_name: &str, val_name: &str| {
        db.value(&format!("p@{var_name}@{val_name}"))
    };

    for (general, simple) in qhat.atoms().iter().zip(qs.atoms()) {
        assert_eq!(general.terms, simple.terms, "term lists must align");
        out.ensure_relation(&general.rel, general.terms.len());
        let Some(rel) = b.relation(&simple.rel) else {
            continue;
        };
        if rel.arity() != general.terms.len() {
            continue;
        }
        for tuple in rel.iter() {
            let row: Vec<_> = general
                .terms
                .iter()
                .zip(tuple.iter())
                .map(|(t, v)| {
                    let Term::Var(x) = t else {
                        panic!("Claim 5.16 machinery requires constant-free queries");
                    };
                    let val_name = b.interner().name(*v).to_owned();
                    pair(&mut out, qhat.var_name(*x), &val_name)
                })
                .collect();
            out.add_tuple(&general.rel, row);
        }
    }
    // Color relations r_X = {(X, b) | b ∈ B}.
    let domain: Vec<String> = b
        .interner()
        .values()
        .map(|v| b.interner().name(v).to_owned())
        .collect();
    for x in qhat.vars_in_atoms() {
        let rel = format!("{}{}", cqcount_query::color::COLOR_PREFIX, qhat.var_name(x));
        out.ensure_relation(&rel, 1);
        for val in &domain {
            let p = pair(&mut out, qhat.var_name(x), val);
            out.add_tuple(&rel, vec![p]);
        }
    }
    (fullcolor(qhat), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::count_brute_force;
    use cqcount_query::parse_program;
    use cqcount_workloads::random::{
        random_database, random_query, RandomCqConfig, RandomDbConfig,
    };

    fn check(qhat: &ConjunctiveQuery, b_src: Option<&str>) {
        let qs = qhat.to_simple();
        let b = match b_src {
            Some(src) => {
                // facts use the simple names r#i
                let (_, db) = parse_program(src).unwrap();
                db
            }
            None => random_database(&qs, &RandomDbConfig::default(), 17),
        };
        let (fc, bhat) = simple_to_general(qhat, &qs, &b);
        assert_eq!(
            count_brute_force(&qs, &b),
            count_brute_force(&fc, &bhat),
            "Claim 5.16 equality"
        );
    }

    #[test]
    fn repeated_symbols_query() {
        let (q, _) = parse_program("ans(X) :- r(X, Y), r(Y, Z), r(Z, X).").unwrap();
        check(&q.unwrap(), None);
    }

    #[test]
    fn q0_shape() {
        let q = cqcount_workloads::paper::q0_query();
        check(&q, None);
    }

    #[test]
    fn random_queries_roundtrip() {
        for seed in 0..8 {
            let q = random_query(
                &RandomCqConfig {
                    atoms: 4,
                    vars: 4,
                    max_arity: 2,
                    rels: 2,
                    free_prob: 0.5,
                },
                seed,
            );
            check(&q, None);
        }
    }

    #[test]
    fn explicit_small_case() {
        let (q, _) = parse_program("ans(X) :- e(X, Y), e(Y, X).").unwrap();
        let q = q.unwrap();
        let qs = q.to_simple();
        // facts for e#0 and e#1 differ: the simple query is genuinely more
        // general than the original.
        let mut b = Database::new();
        for (rel, pairs) in [
            ("e#0", vec![("a", "b"), ("b", "a"), ("b", "c")]),
            ("e#1", vec![("b", "a"), ("c", "b")]),
        ] {
            for (u, v) in pairs {
                let uu = b.value(u);
                let vv = b.value(v);
                b.add_tuple(rel, vec![uu, vv]);
            }
        }
        let (fc, bhat) = simple_to_general(&q, &qs, &b);
        assert_eq!(count_brute_force(&qs, &b), count_brute_force(&fc, &bhat));
        assert_eq!(count_brute_force(&qs, &b), 2u64.into()); // X ∈ {a, b}
    }
}
