//! Stall watchdog: heartbeats for polled loops and deadline-scoped
//! workers, scanned by a supervisor thread.
//!
//! Two member kinds, two stall rules:
//!
//! * [`HeartbeatKind::Polled`] — an event loop (a reactor shard) that must
//!   call [`Heartbeat::beat`] every iteration. It stalls when the time
//!   since its last beat exceeds the stall threshold: the loop has stopped
//!   polling (deadlocked, blocked in a syscall, or wedged on a poisoned
//!   lock).
//! * [`HeartbeatKind::Worker`] — a pool thread that brackets each job with
//!   [`Heartbeat::begin_work`] / [`Heartbeat::end_work`]. It stalls when a
//!   single job has been running longer than the stall threshold, or past
//!   the job's declared deadline budget (the budget itself is the
//!   tolerance) — an idle worker (blocked on the queue) is never flagged.
//!
//! [`Watchdog::scan`] is edge-triggered on top of level state: the report
//! carries both every currently-stalled member (for gauges) and the members
//! that stalled *since the previous scan* (for incident logging), so a
//! wedged shard produces one incident, not one per scan tick.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What kind of liveness contract a member signed up for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeartbeatKind {
    /// Must beat every loop iteration; stalls on beat silence.
    Polled,
    /// Must bracket jobs; stalls on one job running too long.
    Worker,
}

/// One member's liveness state. All methods are lock-free relaxed atomics
/// — beating is cheap enough for a reactor's per-sweep path.
#[derive(Debug)]
pub struct Heartbeat {
    name: String,
    kind: HeartbeatKind,
    /// Last `beat` time (ns on the caller's monotonic clock).
    last_beat_ns: AtomicU64,
    /// Start of the in-flight job; 0 = idle.
    busy_since_ns: AtomicU64,
    /// Declared deadline of the in-flight job; 0 = none.
    deadline_ns: AtomicU64,
}

impl Heartbeat {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn kind(&self) -> HeartbeatKind {
        self.kind
    }

    /// Record liveness at `now_ns`.
    #[inline]
    pub fn beat(&self, now_ns: u64) {
        self.last_beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Mark a job started at `now_ns` with an optional deadline
    /// (`deadline_ns == 0` means none declared).
    #[inline]
    pub fn begin_work(&self, now_ns: u64, deadline_ns: u64) {
        self.deadline_ns.store(deadline_ns, Ordering::Relaxed);
        self.busy_since_ns.store(now_ns.max(1), Ordering::Relaxed);
        self.last_beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Mark the in-flight job finished.
    #[inline]
    pub fn end_work(&self) {
        self.busy_since_ns.store(0, Ordering::Relaxed);
        self.deadline_ns.store(0, Ordering::Relaxed);
    }

    fn stalled(&self, now_ns: u64, stall_ns: u64) -> bool {
        match self.kind {
            HeartbeatKind::Polled => {
                now_ns.saturating_sub(self.last_beat_ns.load(Ordering::Relaxed)) > stall_ns
            }
            HeartbeatKind::Worker => {
                let busy_since = self.busy_since_ns.load(Ordering::Relaxed);
                if busy_since == 0 {
                    return false;
                }
                if now_ns.saturating_sub(busy_since) > stall_ns {
                    return true;
                }
                // A job still running past its declared deadline is stuck
                // by definition — the budget was its tolerance. Callers
                // fold any grace into the deadline they declare.
                let deadline = self.deadline_ns.load(Ordering::Relaxed);
                deadline != 0 && now_ns > deadline
            }
        }
    }
}

/// One scan's verdict.
#[derive(Debug, Default)]
pub struct WatchdogReport {
    /// Every currently-stalled member's name.
    pub stalled: Vec<String>,
    /// Members that transitioned into the stalled state since the last
    /// scan (edge-triggered; feed these to incident logging).
    pub newly_stalled: Vec<String>,
    /// Currently-stalled polled loops.
    pub stalled_polled: u64,
    /// Currently-stalled workers.
    pub stalled_workers: u64,
}

/// The registry of heartbeats plus per-member edge state.
pub struct Watchdog {
    stall_ns: u64,
    members: Mutex<Vec<Member>>,
}

struct Member {
    hb: Arc<Heartbeat>,
    was_stalled: bool,
}

impl Watchdog {
    /// A watchdog flagging members silent/busy past `stall_ns`.
    pub fn new(stall_ns: u64) -> Watchdog {
        Watchdog {
            stall_ns: stall_ns.max(1),
            members: Mutex::new(Vec::new()),
        }
    }

    /// Register a member, born alive at `now_ns`.
    pub fn register(&self, name: String, kind: HeartbeatKind, now_ns: u64) -> Arc<Heartbeat> {
        let hb = Arc::new(Heartbeat {
            name,
            kind,
            last_beat_ns: AtomicU64::new(now_ns),
            busy_since_ns: AtomicU64::new(0),
            deadline_ns: AtomicU64::new(0),
        });
        self.members.lock().unwrap().push(Member {
            hb: Arc::clone(&hb),
            was_stalled: false,
        });
        hb
    }

    /// Evaluate every member at `now_ns`.
    pub fn scan(&self, now_ns: u64) -> WatchdogReport {
        let mut report = WatchdogReport::default();
        let mut members = self.members.lock().unwrap();
        for m in members.iter_mut() {
            let stalled = m.hb.stalled(now_ns, self.stall_ns);
            if stalled {
                report.stalled.push(m.hb.name.clone());
                match m.hb.kind {
                    HeartbeatKind::Polled => report.stalled_polled += 1,
                    HeartbeatKind::Worker => report.stalled_workers += 1,
                }
                if !m.was_stalled {
                    report.newly_stalled.push(m.hb.name.clone());
                }
            }
            m.was_stalled = stalled;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn polled_members_stall_on_beat_silence() {
        let dog = Watchdog::new(10 * MS);
        let hb = dog.register("reactor-0".into(), HeartbeatKind::Polled, 0);
        assert!(dog.scan(5 * MS).stalled.is_empty());
        hb.beat(8 * MS);
        assert!(dog.scan(15 * MS).stalled.is_empty(), "beat 7ms ago");
        let r = dog.scan(25 * MS);
        assert_eq!(r.stalled, vec!["reactor-0"], "silent for 17ms");
        assert_eq!(r.stalled_polled, 1);
        // Edge triggering: the second scan sees it stalled but not *newly*.
        assert_eq!(r.newly_stalled, vec!["reactor-0"]);
        let r = dog.scan(30 * MS);
        assert_eq!(r.stalled.len(), 1);
        assert!(r.newly_stalled.is_empty());
        // Recovery clears both, and a re-stall fires a fresh edge.
        hb.beat(31 * MS);
        assert!(dog.scan(32 * MS).stalled.is_empty());
        assert_eq!(dog.scan(60 * MS).newly_stalled, vec!["reactor-0"]);
    }

    #[test]
    fn idle_workers_never_stall_and_busy_workers_do() {
        let dog = Watchdog::new(10 * MS);
        let hb = dog.register("worker-0".into(), HeartbeatKind::Worker, 0);
        // Idle forever: a worker blocked on the queue is healthy.
        assert!(dog.scan(1000 * MS).stalled.is_empty());
        hb.begin_work(1000 * MS, 0);
        assert!(dog.scan(1005 * MS).stalled.is_empty(), "busy 5ms");
        let r = dog.scan(1020 * MS);
        assert_eq!(r.stalled, vec!["worker-0"], "busy 20ms > 10ms stall");
        assert_eq!(r.stalled_workers, 1);
        hb.end_work();
        assert!(dog.scan(1021 * MS).stalled.is_empty());
    }

    #[test]
    fn workers_stall_past_their_declared_deadline() {
        // Stall threshold 100ms, but the job declared a 5ms deadline: the
        // worker is flagged as soon as the deadline is blown, well before
        // the generic busy threshold would fire.
        let dog = Watchdog::new(100 * MS);
        let hb = dog.register("worker-1".into(), HeartbeatKind::Worker, 0);
        hb.begin_work(0, 5 * MS);
        assert!(dog.scan(4 * MS).stalled.is_empty(), "within deadline");
        assert_eq!(dog.scan(6 * MS).stalled, vec!["worker-1"]);
        // Finishing clears the flag even though the deadline stays blown.
        hb.end_work();
        assert!(dog.scan(7 * MS).stalled.is_empty());
    }
}
