//! The flight recorder: a bounded in-memory "slow query log" with full
//! span attribution and zero pre-selection.
//!
//! Every request is *speculatively* traced into the thread-local span
//! rings (see [`crate::trace`]); when the request finishes, its collected
//! span tree is either **retained** here — because the request landed
//! above a self-calibrating latency threshold or ended in an error,
//! degradation, delta fallback, or read-only flip — or simply dropped.
//! Retention is the exception, so the recorder's two ring buffers stay
//! small and the steady-state cost is the speculative tracing itself
//! (measured by the `trace_overhead` bench's `recorder_armed` column).
//!
//! The recorder also keeps a second ring of **incidents**: discrete
//! operational events (watchdog stall flags, read-only flips) that are not
//! tied to a single request's span tree but belong in the same forensic
//! timeline.
//!
//! Both rings are drop-oldest: a flood of interesting requests evicts the
//! oldest captures (counted in [`FlightRecorder::evicted`]) instead of
//! growing without bound.

use crate::trace::TreeNode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Why a request's span tree was retained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetainReason {
    /// Latency above the per-opcode threshold (live p99, floored by the
    /// configured minimum).
    Slow,
    /// The request answered with an error reply.
    Error,
    /// The count was served by a degraded (fallback) plan.
    Degraded,
    /// Incremental maintenance dropped a materialization mid-mutation.
    DeltaFault,
    /// The request flipped (or hit) a read-only database.
    ReadOnly,
    /// Retained on behalf of the stall watchdog.
    Watchdog,
}

impl RetainReason {
    /// Stable wire / display name.
    pub fn name(self) -> &'static str {
        match self {
            RetainReason::Slow => "slow",
            RetainReason::Error => "error",
            RetainReason::Degraded => "degraded",
            RetainReason::DeltaFault => "delta_fault",
            RetainReason::ReadOnly => "read_only",
            RetainReason::Watchdog => "watchdog",
        }
    }
}

/// One retained request: the full span tree plus the retention verdict.
#[derive(Clone, Debug)]
pub struct CapturedTrace {
    /// Monotonic capture sequence (shared with incidents, so the two rings
    /// interleave into one timeline).
    pub seq: u64,
    /// Opcode label (`count`, `mutate`, …).
    pub op: String,
    pub reason: RetainReason,
    /// End-to-end latency (admission to reply-ready), microseconds.
    pub latency_us: u64,
    /// The threshold in force when the verdict was made (0 for non-latency
    /// retentions).
    pub threshold_us: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The request's collected span tree.
    pub root: TreeNode,
}

/// A discrete operational event retained alongside the traces.
#[derive(Clone, Debug)]
pub struct Incident {
    pub seq: u64,
    /// Short machine-readable kind (`stall`, `read_only`, …).
    pub kind: String,
    pub detail: String,
    pub unix_ms: u64,
}

/// Bounded retention of interesting traces and incidents. All methods are
/// thread-safe; retention takes one short mutex tap (never on the
/// non-retained path, which doesn't call in at all).
pub struct FlightRecorder {
    trace_cap: usize,
    incident_cap: usize,
    traces: Mutex<VecDeque<CapturedTrace>>,
    incidents: Mutex<VecDeque<Incident>>,
    seq: AtomicU64,
    retained: AtomicU64,
    evicted: AtomicU64,
    incidents_total: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `trace_cap` span trees and
    /// `incident_cap` incidents (oldest evicted first).
    pub fn new(trace_cap: usize, incident_cap: usize) -> FlightRecorder {
        FlightRecorder {
            trace_cap: trace_cap.max(1),
            incident_cap: incident_cap.max(1),
            traces: Mutex::new(VecDeque::new()),
            incidents: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            incidents_total: AtomicU64::new(0),
        }
    }

    /// Must be called with the destination ring's lock held, so each
    /// ring's push order matches its capture-sequence order (concurrent
    /// retentions would otherwise draw a seq and race to the push).
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Retain one request's span tree. Returns the capture sequence.
    pub fn retain(
        &self,
        op: &str,
        reason: RetainReason,
        latency_us: u64,
        threshold_us: u64,
        root: TreeNode,
    ) -> u64 {
        self.retained.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.traces.lock().unwrap();
        let seq = self.next_seq();
        if ring.len() >= self.trace_cap {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(CapturedTrace {
            seq,
            op: op.to_owned(),
            reason,
            latency_us,
            threshold_us,
            unix_ms: unix_ms(),
            root,
        });
        seq
    }

    /// Record a discrete incident. Returns the capture sequence.
    pub fn incident(&self, kind: &str, detail: String) -> u64 {
        self.incidents_total.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.incidents.lock().unwrap();
        let seq = self.next_seq();
        if ring.len() >= self.incident_cap {
            ring.pop_front();
        }
        ring.push_back(Incident {
            seq,
            kind: kind.to_owned(),
            detail,
            unix_ms: unix_ms(),
        });
        seq
    }

    /// The most recent `limit` retained traces, oldest first.
    pub fn traces(&self, limit: usize) -> Vec<CapturedTrace> {
        let ring = self.traces.lock().unwrap();
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The most recent `limit` incidents, oldest first.
    pub fn incidents(&self, limit: usize) -> Vec<Incident> {
        let ring = self.incidents.lock().unwrap();
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Total traces ever retained (evictions included).
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Retained traces evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Total incidents ever recorded.
    pub fn incident_count(&self) -> u64 {
        self.incidents_total.load(Ordering::Relaxed)
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanRecord, TreeNode};

    fn leaf(name: &'static str) -> TreeNode {
        TreeNode {
            record: SpanRecord {
                id: 1,
                parent: 0,
                name,
                start_ns: 0,
                end_ns: 10,
                counters: Vec::new(),
                tags: Vec::new(),
            },
            children: Vec::new(),
        }
    }

    #[test]
    fn retention_is_bounded_and_drop_oldest() {
        let rec = FlightRecorder::new(4, 2);
        for i in 0..100u64 {
            rec.retain("count", RetainReason::Slow, 1000 + i, 500, leaf("request"));
        }
        let kept = rec.traces(100);
        assert_eq!(kept.len(), 4);
        // The survivors are the four newest, oldest first.
        assert_eq!(
            kept.iter().map(|t| t.latency_us).collect::<Vec<_>>(),
            vec![1096, 1097, 1098, 1099]
        );
        assert_eq!(rec.retained(), 100);
        assert_eq!(rec.evicted(), 96);

        for i in 0..10 {
            rec.incident("stall", format!("shard {i}"));
        }
        assert_eq!(rec.incidents(100).len(), 2);
        assert_eq!(rec.incident_count(), 10);
    }

    #[test]
    fn sequences_interleave_traces_and_incidents() {
        let rec = FlightRecorder::new(8, 8);
        let a = rec.retain("mutate", RetainReason::Error, 5, 0, leaf("request"));
        let b = rec.incident("stall", "worker-1".into());
        let c = rec.retain("count", RetainReason::Slow, 9, 4, leaf("request"));
        assert!(a < b && b < c, "one timeline across both rings");
        assert_eq!(rec.traces(10)[0].reason.name(), "error");
    }

    #[test]
    fn limit_returns_the_tail() {
        let rec = FlightRecorder::new(16, 16);
        for i in 0..8u64 {
            rec.retain("count", RetainReason::Slow, i, 0, leaf("request"));
        }
        let last2 = rec.traces(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].latency_us, 6);
        assert_eq!(last2[1].latency_us, 7);
    }
}
