//! A lock-cheap span tracer.
//!
//! Design:
//!
//! * Tracing is **globally gated**: spans are only recorded while at least
//!   one [`TraceSession`] is alive (or tracing is forced on, see
//!   [`set_forced`]). Disabled, an instrumented scope costs one relaxed
//!   atomic load and returns an unarmed guard whose every method is a
//!   no-op.
//! * Each thread owns a small **ring buffer** of finished spans plus a
//!   stack of *active* spans. Entering a span pushes onto the thread-local
//!   stack; dropping the guard pops it and moves the finished
//!   [`SpanRecord`] into the ring (drop-oldest on overflow, counted by
//!   [`dropped`]). Counters and tags attach to the active entry without
//!   heap allocation for the keys (`&'static str`).
//! * Spans carry **explicit IDs** ([`SpanId`], from a global monotonic
//!   counter) so work can hop threads: a pool worker opens its span with
//!   [`span_under`]`(parent, ..)` where `parent` was captured on the
//!   submitting thread via [`current`].
//! * A **collector** ([`collect`]) drains every thread ring into a global
//!   pending pool and extracts exactly the records whose parent chain leads
//!   to the requested root. Records belonging to other in-flight roots stay
//!   pending until their own collector runs; orphans age out of the bounded
//!   pool. Children always finish before their parent guard drops, so by
//!   the time a root's guard is gone the whole tree is in the rings.
//!
//! Timestamps are nanoseconds of monotonic [`Instant`] time since the
//! process-wide trace epoch ([`now_ns`]); wall-clock never enters the
//! records, so traces are immune to clock steps.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Finished spans retained per thread before the oldest are dropped.
pub const THREAD_RING_CAP: usize = 8192;
/// Finished spans retained in the global pending pool (records whose
/// collector has not yet run) before the oldest are dropped.
pub const PENDING_CAP: usize = 65536;

/// Identifier of a span, unique within the process lifetime.
///
/// `SpanId::NONE` (zero) is the "no parent" sentinel; real IDs start at 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A finished span as drained by [`collect`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    /// Nanoseconds since the trace epoch.
    pub start_ns: u64,
    pub end_ns: u64,
    /// Accumulated numeric counters (repeated keys are summed on add).
    pub counters: Vec<(&'static str, u64)>,
    /// String tags (repeated keys overwrite).
    pub tags: Vec<(&'static str, String)>,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds of monotonic time since the process-wide trace epoch.
pub fn now_ns() -> u64 {
    let e = epoch();
    Instant::now().duration_since(e).as_nanos() as u64
}

static FORCED: AtomicBool = AtomicBool::new(false);
static SESSIONS: AtomicU64 = AtomicU64::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Whether spans are currently being recorded. This is the only check on
/// the disabled hot path.
#[inline]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || SESSIONS.load(Ordering::Relaxed) > 0
}

/// Force tracing on (or off) regardless of active sessions. Used by the
/// overhead bench and the daemon's `--trace-log` mode; prefer
/// [`TraceSession`] for request-scoped profiling.
pub fn set_forced(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Total spans discarded because a thread ring or the pending pool
/// overflowed. Monotonic.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// RAII guard that keeps tracing enabled while alive. Sessions nest; spans
/// record while at least one session exists anywhere in the process.
pub struct TraceSession(u64);

impl TraceSession {
    pub fn begin() -> TraceSession {
        let start = now_ns();
        session_starts().lock().unwrap().push(start);
        SESSIONS.fetch_add(1, Ordering::Relaxed);
        TraceSession(start)
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        SESSIONS.fetch_sub(1, Ordering::Relaxed);
        let mut starts = session_starts().lock().unwrap();
        if let Some(i) = starts.iter().position(|&s| s == self.0) {
            starts.swap_remove(i);
        }
    }
}

/// Start times of the live [`TraceSession`]s. A finished span can only be
/// claimed by a session that was already running when it ended (spans
/// start after their session begins), so anything in the pending pool
/// older than the oldest live session is unclaimable garbage — [`collect`]
/// purges it. Without this, background spans with no collector (e.g. a
/// reactor's own housekeeping spans while request sessions keep tracing
/// globally enabled) would pin the pool at [`PENDING_CAP`] and every
/// collect would rescan all of it.
fn session_starts() -> &'static Mutex<Vec<u64>> {
    static STARTS: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();
    STARTS.get_or_init(|| Mutex::new(Vec::new()))
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    counters: Vec<(&'static str, u64)>,
    tags: Vec<(&'static str, String)>,
}

struct ThreadRing {
    ring: Mutex<VecDeque<SpanRecord>>,
}

// The registry holds *strong* references so a ring outlives its thread:
// pool workers and short-lived threads may finish (and exit) before the
// collector runs, and their records must survive until drained. Rings of
// dead threads are pruned in `collect` once they have been emptied.
fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn pending() -> &'static Mutex<VecDeque<SpanRecord>> {
    static PENDING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    PENDING.get_or_init(|| Mutex::new(VecDeque::new()))
}

thread_local! {
    static RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            ring: Mutex::new(VecDeque::new()),
        });
        registry().lock().unwrap().push(Arc::clone(&ring));
        ring
    };
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

fn push_record(rec: SpanRecord) {
    RING.with(|r| {
        let mut ring = r.ring.lock().unwrap();
        if ring.len() >= THREAD_RING_CAP {
            ring.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
    });
}

/// Guard for an in-progress span. Dropping it finishes the span. An
/// unarmed guard (tracing disabled at creation) ignores every call.
#[must_use = "dropping the guard ends the span"]
pub struct Span {
    id: u64,
}

impl Span {
    /// A guard that records nothing. Useful for conditional tracing.
    pub fn disarmed() -> Span {
        Span { id: 0 }
    }

    pub fn is_armed(&self) -> bool {
        self.id != 0
    }

    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Add `v` to the numeric counter `key` on this span.
    pub fn add(&self, key: &'static str, v: u64) {
        if self.id == 0 {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(entry) = stack.iter_mut().rev().find(|e| e.id == self.id) {
                match entry.counters.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, total)) => *total += v,
                    None => entry.counters.push((key, v)),
                }
            }
        });
    }

    /// Set the string tag `key` on this span (overwrites).
    pub fn tag(&self, key: &'static str, value: impl Into<String>) {
        if self.id == 0 {
            return;
        }
        let value = value.into();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(entry) = stack.iter_mut().rev().find(|e| e.id == self.id) {
                match entry.tags.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, old)) => *old = value,
                    None => entry.tags.push((key, value)),
                }
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_ns = now_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(pos) = stack.iter().rposition(|e| e.id == self.id) else {
                return;
            };
            // Guards normally drop LIFO; if an inner guard was leaked or
            // dropped out of order, close everything above us too so the
            // stack stays consistent.
            while stack.len() > pos {
                let entry = stack.pop().unwrap();
                push_record(SpanRecord {
                    id: entry.id,
                    parent: entry.parent,
                    name: entry.name,
                    start_ns: entry.start_ns,
                    end_ns,
                    counters: entry.counters,
                    tags: entry.tags,
                });
            }
        });
    }
}

fn enter(name: &'static str, parent: u64) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let start_ns = now_ns();
    STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan {
            id,
            parent,
            name,
            start_ns,
            counters: Vec::new(),
            tags: Vec::new(),
        });
    });
    Span { id }
}

/// Open a span as a child of the innermost active span on this thread
/// (or as a root if there is none). Returns an unarmed guard when tracing
/// is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disarmed();
    }
    let parent = STACK.with(|s| s.borrow().last().map_or(0, |e| e.id));
    enter(name, parent)
}

/// Open a span under an explicit parent — the cross-thread variant used by
/// pool workers. Unarmed when tracing is disabled or `parent` is
/// [`SpanId::NONE`].
#[inline]
pub fn span_under(parent: SpanId, name: &'static str) -> Span {
    if parent.is_none() || !enabled() {
        return Span::disarmed();
    }
    enter(name, parent.0)
}

/// The innermost active span on this thread, for handing to [`span_under`]
/// on another thread.
pub fn current() -> SpanId {
    STACK.with(|s| SpanId(s.borrow().last().map_or(0, |e| e.id)))
}

/// Add to a counter on the innermost active span on this thread.
pub fn add_current(key: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(entry) = stack.last_mut() {
            match entry.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += v,
                None => entry.counters.push((key, v)),
            }
        }
    });
}

/// Set a tag on the innermost active span on this thread.
pub fn tag_current(key: &'static str, value: impl Into<String>) {
    if !enabled() {
        return;
    }
    let value = value.into();
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(entry) = stack.last_mut() {
            match entry.tags.iter_mut().find(|(k, _)| *k == key) {
                Some((_, old)) => *old = value,
                None => entry.tags.push((key, value)),
            }
        }
    });
}

/// Drain all thread rings and return every finished span whose parent
/// chain reaches `root` (inclusive). Records belonging to other roots are
/// left in the bounded pending pool for their own collectors.
///
/// Call this after the root span's guard has dropped: children finish
/// before their parent guard, so the full tree is available by then.
pub fn collect(root: SpanId) -> Vec<SpanRecord> {
    let mut pool = pending().lock().unwrap();
    {
        let mut reg = registry().lock().unwrap();
        reg.retain(|ring| {
            let mut r = ring.ring.lock().unwrap();
            pool.extend(r.drain(..));
            // A count of 1 means the owning thread has exited; its (now
            // drained) ring can go.
            Arc::strong_count(ring) > 1
        });
    }
    while pool.len() > PENDING_CAP {
        pool.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    if root.is_none() {
        return Vec::new();
    }

    // Resolve each record's ancestry to the root (or not) with memoization.
    let parent_of: HashMap<u64, u64> = pool.iter().map(|r| (r.id, r.parent)).collect();
    let mut verdict: HashMap<u64, bool> = HashMap::new();
    verdict.insert(root.0, true);
    let mut chain: Vec<u64> = Vec::new();
    for rec in pool.iter() {
        let mut id = rec.id;
        chain.clear();
        let reaches = loop {
            if let Some(&v) = verdict.get(&id) {
                break v;
            }
            chain.push(id);
            match parent_of.get(&id) {
                Some(&p) if p != 0 => id = p,
                _ => break false,
            }
        };
        for &c in &chain {
            verdict.insert(c, reaches);
        }
    }

    // Records kept for other collectors must still be claimable: a span
    // that ended before the oldest live session began belongs to no live
    // session and never will — purge it (see [`session_starts`]).
    let horizon = session_starts()
        .lock()
        .unwrap()
        .iter()
        .min()
        .copied()
        .unwrap_or(u64::MAX);
    let mut out = Vec::new();
    let mut rest = VecDeque::with_capacity(pool.len());
    for rec in pool.drain(..) {
        if verdict.get(&rec.id).copied().unwrap_or(false) {
            out.push(rec);
        } else if rec.end_ns >= horizon {
            rest.push_back(rec);
        }
    }
    *pool = rest;
    out
}

/// A span tree node assembled by [`build_tree`]. Children are ordered by
/// start time.
#[derive(Clone, Debug)]
pub struct TreeNode {
    pub record: SpanRecord,
    pub children: Vec<TreeNode>,
}

/// Assemble the records returned by [`collect`] into a tree rooted at
/// `root`. Returns `None` if the root record is missing (e.g. dropped by a
/// full ring).
pub fn build_tree(records: Vec<SpanRecord>, root: SpanId) -> Option<TreeNode> {
    let mut by_parent: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    let mut root_rec = None;
    for rec in records {
        if rec.id == root.raw() {
            root_rec = Some(rec);
        } else {
            by_parent.entry(rec.parent).or_default().push(rec);
        }
    }
    fn attach(rec: SpanRecord, by_parent: &mut HashMap<u64, Vec<SpanRecord>>) -> TreeNode {
        let mut children: Vec<TreeNode> = by_parent
            .remove(&rec.id)
            .unwrap_or_default()
            .into_iter()
            .map(|c| attach(c, by_parent))
            .collect();
        children.sort_by_key(|c| c.record.start_ns);
        TreeNode {
            record: rec,
            children,
        }
    }
    root_rec.map(|r| attach(r, &mut by_parent))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_free_and_record_nothing() {
        // No session active in this test (tests sharing the process may
        // have one; tolerate that by using an unreachable root).
        let sp = span_under(SpanId::NONE, "never");
        assert!(!sp.is_armed());
        sp.add("x", 1);
        drop(sp);
        assert!(collect(SpanId::NONE).is_empty());
    }

    #[test]
    fn nested_spans_form_a_tree_with_counters_and_tags() {
        let _session = TraceSession::begin();
        let root = span("root");
        let root_id = root.id();
        root.tag("op", "test");
        {
            let a = span("child-a");
            a.add("rows", 3);
            a.add("rows", 4);
            {
                let _b = span("grandchild");
            }
        }
        {
            let _c = span("child-c");
        }
        drop(root);

        let records = collect(root_id);
        assert_eq!(records.len(), 4, "root + 2 children + 1 grandchild");
        let tree = build_tree(records, root_id).expect("root present");
        assert_eq!(tree.record.name, "root");
        assert_eq!(tree.record.tags, vec![("op", "test".to_string())]);
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].record.name, "child-a");
        assert_eq!(tree.children[0].record.counters, vec![("rows", 7)]);
        assert_eq!(tree.children[0].children.len(), 1);
        assert_eq!(tree.children[1].record.name, "child-c");
        assert!(tree.children[1].children.is_empty());
    }

    #[test]
    fn cross_thread_spans_attach_to_the_submitting_request() {
        let _session = TraceSession::begin();
        let root = span("request");
        let root_id = root.id();
        let parent = current();
        let handle = std::thread::spawn(move || {
            let sp = span_under(parent, "worker-task");
            sp.add("work", 1);
        });
        handle.join().unwrap();
        drop(root);

        let records = collect(root_id);
        let tree = build_tree(records, root_id).expect("root present");
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].record.name, "worker-task");
        assert_eq!(tree.children[0].record.parent, root_id.raw());
    }

    #[test]
    fn collect_only_takes_the_requested_roots_descendants() {
        let _session = TraceSession::begin();
        let r1 = span("root-one");
        let id1 = r1.id();
        drop(r1);
        let r2 = span("root-two");
        let id2 = r2.id();
        {
            let _c = span("two-child");
        }
        drop(r2);

        let got2 = collect(id2);
        assert_eq!(got2.len(), 2);
        assert!(got2
            .iter()
            .all(|r| r.name.starts_with("two") || r.name == "root-two"));
        // root-one is still pending and retrievable afterwards.
        let got1 = collect(id1);
        assert_eq!(got1.len(), 1);
        assert_eq!(got1[0].name, "root-one");
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let _session = TraceSession::begin();
        let a = span("a");
        let b = span("b");
        let (ida, idb) = (a.id(), b.id());
        assert!(ida.raw() != 0 && idb.raw() != 0);
        assert_ne!(ida, idb);
        drop(b);
        drop(a);
        let _ = collect(ida);
    }
}
