//! Observability primitives for the cqcount workspace: a lock-cheap span
//! tracer ([`trace`]) and a metrics registry ([`metrics`]).
//!
//! Both halves are std-only and allocation-free on their disabled /
//! steady-state hot paths:
//!
//! * **Tracing** is globally gated. When no profiling session is active the
//!   cost of an instrumented scope is a single relaxed atomic load. When a
//!   session *is* active, finished spans are buffered in per-thread ring
//!   buffers (one short mutex tap per span, never contended in the common
//!   case because each thread owns its own ring) and drained by the
//!   collector that owns the request — pool workers attribute their work to
//!   the originating request through explicit parent [`trace::SpanId`]s.
//! * **Metrics** are plain `Arc<AtomicU64>` handles (counters, gauges) and
//!   fixed-bucket histograms (`observe` is two atomic adds and an atomic
//!   increment; quantiles are estimated at read time from the bucket
//!   boundaries, so the hot path never allocates).
//!
//! Built on those two halves, three forensic subsystems (PR 9):
//!
//! * **Flight recorder** ([`flight`]) — bounded retention of the span
//!   trees of *interesting* requests (slow, errored, degraded) plus
//!   discrete incidents, for after-the-fact tail forensics.
//! * **Metrics history** ([`history`]) — a ring of whole-registry samples
//!   taken on an interval, so rates and tail percentiles around an
//!   anomaly are reconstructible without pre-arranged scraping.
//! * **Stall watchdog** ([`watchdog`]) — heartbeats for polled loops and
//!   deadline-scoped workers, scanned edge-triggered by a supervisor.
//!
//! This crate sits at the bottom of the workspace dependency graph: every
//! other crate may depend on it, it depends on nothing.

pub mod flight;
pub mod history;
pub mod metrics;
pub mod planner;
pub mod trace;
pub mod watchdog;

pub use flight::{CapturedTrace, FlightRecorder, Incident, RetainReason};
pub use history::{HistorySample, MetricsHistory};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{SpanId, SpanRecord, TraceSession, TreeNode};
pub use watchdog::{Heartbeat, HeartbeatKind, Watchdog, WatchdogReport};
