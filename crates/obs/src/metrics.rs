//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms with Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics; updating them never takes the registry lock and never
//! allocates. The registry lock is only taken at registration time and
//! when rendering ([`Registry::render`]).
//!
//! Histograms use fixed bucket boundaries chosen at registration:
//! `observe` is a binary search over the boundary slice plus three relaxed
//! atomic RMWs, and p50/p95/p99 are *estimated at read time* as the upper
//! bound of the bucket containing the target rank — the standard
//! cumulative-bucket quantile, no per-sample storage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (stand-alone bookkeeping
    /// that can later be wired in, or unit-test use).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (also supports max-accumulation for high-water
/// marks).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit +Inf bucket follows.
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` slots; the last is the +Inf overflow bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram. `observe` never allocates.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// A point-in-time copy of a histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last is +Inf).
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl Histogram {
    /// A histogram not attached to any registry. `bounds` must be strictly
    /// increasing (checked).
    pub fn detached(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.into(),
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one sample. Values above the last bound land in the +Inf
    /// overflow bucket.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < v);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing the target rank (see
    /// [`HistogramSnapshot::quantile`]). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Copy out the current state. Bucket counts are read individually
    /// (relaxed), so a snapshot taken during concurrent recording may be
    /// mid-update; quiesce first for exact comparisons.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.to_vec(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing the target rank. The +Inf overflow bucket has no
    /// finite upper bound, so ranks landing there **clamp to the highest
    /// finite bound** — a deliberately conservative estimate that never
    /// extrapolates past the instrumented range (tail thresholds derived
    /// from it stay meaningful instead of saturating at `u64::MAX`).
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bound_or_clamp(i));
            }
        }
        Some(self.bound_or_clamp(self.counts.len()))
    }

    /// The finite upper bound for bucket `i`, clamping the +Inf overflow
    /// bucket to the last finite bound (`u64::MAX` only for the degenerate
    /// zero-bucket histogram, which cannot be registered).
    fn bound_or_clamp(&self, i: usize) -> u64 {
        self.bounds
            .get(i)
            .or(self.bounds.last())
            .copied()
            .unwrap_or(u64::MAX)
    }
}

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    /// Optional single `key="value"` label pair.
    label: Option<(&'static str, String)>,
    kind: Kind,
}

/// A named collection of metrics rendered in Prometheus text exposition
/// format. Registration is idempotent: asking for the same
/// (name, label) again returns a handle to the same underlying metric.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn find(&self, name: &str, label: Option<(&str, &str)>) -> Option<Kind> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .find(|e| e.name == name && e.label.as_ref().map(|(k, v)| (*k, v.as_str())) == label)
            .map(|e| match &e.kind {
                Kind::Counter(c) => Kind::Counter(c.clone()),
                Kind::Gauge(g) => Kind::Gauge(g.clone()),
                Kind::Histogram(h) => Kind::Histogram(h.clone()),
            })
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_labeled_opt(name, help, None)
    }

    /// Get or register a counter carrying one `key="value"` label.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: &str,
    ) -> Counter {
        self.counter_labeled_opt(name, help, Some((key, value)))
    }

    fn counter_labeled_opt(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, &str)>,
    ) -> Counter {
        if let Some(Kind::Counter(c)) = self.find(name, label) {
            return c;
        }
        let c = Counter::detached();
        self.entries.lock().unwrap().push(Entry {
            name,
            help,
            label: label.map(|(k, v)| (k, v.to_string())),
            kind: Kind::Counter(c.clone()),
        });
        c
    }

    /// Register an *existing* counter handle (e.g. a process-wide detached
    /// counter) under `name` with an optional label. Idempotent: if the
    /// (name, label) pair is already present the registry keeps its current
    /// handle and this is a no-op.
    pub fn attach_counter(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, &str)>,
        counter: &Counter,
    ) {
        if self.find(name, label).is_some() {
            return;
        }
        self.entries.lock().unwrap().push(Entry {
            name,
            help,
            label: label.map(|(k, v)| (k, v.to_string())),
            kind: Kind::Counter(counter.clone()),
        });
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        if let Some(Kind::Gauge(g)) = self.find(name, None) {
            return g;
        }
        let g = Gauge::detached();
        self.entries.lock().unwrap().push(Entry {
            name,
            help,
            label: None,
            kind: Kind::Gauge(g.clone()),
        });
        g
    }

    /// Get or register a histogram with the given finite bucket bounds.
    pub fn histogram(&self, name: &'static str, help: &'static str, bounds: &[u64]) -> Histogram {
        self.histogram_labeled_opt(name, help, None, bounds)
    }

    /// Get or register a histogram carrying one `key="value"` label — a
    /// per-series member of a family (e.g. request latency by opcode).
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: &str,
        bounds: &[u64],
    ) -> Histogram {
        self.histogram_labeled_opt(name, help, Some((key, value)), bounds)
    }

    fn histogram_labeled_opt(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, &str)>,
        bounds: &[u64],
    ) -> Histogram {
        if let Some(Kind::Histogram(h)) = self.find(name, label) {
            return h;
        }
        let h = Histogram::detached(bounds);
        self.entries.lock().unwrap().push(Entry {
            name,
            help,
            label: label.map(|(k, v)| (k, v.to_string())),
            kind: Kind::Histogram(h.clone()),
        });
        h
    }

    /// Flatten every registered metric into `(series, value)` pairs — the
    /// metrics-history sampler's input. Counters and gauges emit one pair
    /// under their rendered series name; histograms emit `_count`, `_sum`,
    /// and a read-time `_p99` estimate, so both rates (deltas of `_count`
    /// / `_sum` between adjacent samples) and tail movement are
    /// reconstructible after the fact.
    pub fn sample(&self) -> Vec<(String, u64)> {
        let entries = self.entries.lock().unwrap();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            let label = match &e.label {
                Some((k, v)) => format!("{{{}=\"{}\"}}", k, v),
                None => String::new(),
            };
            match &e.kind {
                Kind::Counter(c) => out.push((format!("{}{}", e.name, label), c.get())),
                Kind::Gauge(g) => out.push((format!("{}{}", e.name, label), g.get())),
                Kind::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push((format!("{}_count{}", e.name, label), snap.count));
                    out.push((format!("{}_sum{}", e.name, label), snap.sum));
                    out.push((
                        format!("{}_p99{}", e.name, label),
                        snap.quantile(0.99).unwrap_or(0),
                    ));
                }
            }
        }
        out
    }

    /// Render every metric in Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut headered: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !headered.contains(&e.name) {
                headered.push(e.name);
                let ty = match e.kind {
                    Kind::Counter(_) => "counter",
                    Kind::Gauge(_) => "gauge",
                    Kind::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, ty);
            }
            let label = match &e.label {
                Some((k, v)) => format!("{{{}=\"{}\"}}", k, v),
                None => String::new(),
            };
            match &e.kind {
                Kind::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label, c.get());
                }
                Kind::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", e.name, label, g.get());
                }
                Kind::Histogram(h) => {
                    let snap = h.snapshot();
                    // A labeled histogram merges its series label into each
                    // `_bucket` line ahead of `le`; unlabeled output is
                    // unchanged.
                    let series = match &e.label {
                        Some((k, v)) => format!("{}=\"{}\",", k, v),
                        None => String::new(),
                    };
                    let mut cum = 0u64;
                    for (i, &c) in snap.counts.iter().enumerate() {
                        cum += c;
                        let le = snap
                            .bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ =
                            writeln!(out, "{}_bucket{{{}le=\"{}\"}} {}", e.name, series, le, cum);
                    }
                    let _ = writeln!(out, "{}_sum{} {}", e.name, label, snap.sum);
                    let _ = writeln!(out, "{}_count{} {}", e.name, label, snap.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let reg = Registry::new();
        let a = reg.counter("cq_test_total", "a test counter");
        let b = reg.counter("cq_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);

        let l1 = reg.counter_labeled("cq_ops_total", "ops", "op", "count");
        let l2 = reg.counter_labeled("cq_ops_total", "ops", "op", "stats");
        l1.add(5);
        l2.inc();
        assert_eq!(l1.get(), 5);
        assert_eq!(l2.get(), 1);

        let g = reg.gauge("cq_depth", "queue depth");
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = Registry::new();
        reg.counter_labeled("cq_ops_total", "ops by opcode", "op", "count")
            .add(4);
        reg.counter_labeled("cq_ops_total", "ops by opcode", "op", "stats")
            .inc();
        reg.gauge("cq_depth", "queue depth").set(2);
        let h = reg.histogram("cq_lat_us", "latency", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);

        let text = reg.render();
        assert!(text.contains("# TYPE cq_ops_total counter"));
        assert!(text.contains("cq_ops_total{op=\"count\"} 4"));
        assert!(text.contains("cq_ops_total{op=\"stats\"} 1"));
        assert!(text.contains("# TYPE cq_depth gauge"));
        assert!(text.contains("cq_depth 2"));
        assert!(text.contains("cq_lat_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("cq_lat_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("cq_lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cq_lat_us_sum 5055"));
        assert!(text.contains("cq_lat_us_count 3"));
        // HELP/TYPE emitted once per family even with two labeled series.
        assert_eq!(text.matches("# TYPE cq_ops_total").count(), 1);
    }

    #[test]
    fn quantiles_estimate_from_bucket_bounds() {
        let h = Histogram::detached(&[1, 2, 4, 8, 16]);
        for v in [1, 1, 2, 3, 5, 8, 13] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(4)); // 4th of 7 samples → bucket ≤4
        assert_eq!(h.quantile(1.0), Some(16));
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 33);
    }

    #[test]
    fn quantile_clamps_overflow_bucket_to_last_finite_bound() {
        let h = Histogram::detached(&[10, 100]);
        h.observe(5);
        h.observe(50_000); // overflow bucket
                           // The median sits in the first bucket; the tail rank lands in the
                           // open-ended +Inf bucket and must clamp to 100, not extrapolate.
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.99), Some(100));
        assert_eq!(h.quantile(1.0), Some(100));
        // All samples overflowing still clamps.
        let h = Histogram::detached(&[10, 100]);
        h.observe(u64::MAX / 2);
        assert_eq!(h.quantile(0.5), Some(100));
    }

    #[test]
    fn quantile_at_exact_bucket_edges() {
        // One sample per bucket: each rank maps onto exactly one bound.
        let h = Histogram::detached(&[1, 2, 4]);
        for v in [1, 2, 4] {
            h.observe(v);
        }
        // ceil(q * 3) ranks: q≤1/3 → 1st sample, q≤2/3 → 2nd, else 3rd.
        assert_eq!(h.quantile(1.0 / 3.0), Some(1));
        assert_eq!(h.quantile(2.0 / 3.0), Some(2));
        assert_eq!(h.quantile(1.0), Some(4));
        // Snapshot-level quantiles agree (same code path).
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(2));
        assert_eq!(snap.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let h = Histogram::detached(&[1, 2]);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn labeled_histograms_are_distinct_series_and_render_with_labels() {
        let reg = Registry::new();
        let a = reg.histogram_labeled("cq_lat_us", "latency by op", "op", "count", &[10, 100]);
        let b = reg.histogram_labeled("cq_lat_us", "latency by op", "op", "mutate", &[10, 100]);
        let a2 = reg.histogram_labeled("cq_lat_us", "latency by op", "op", "count", &[10, 100]);
        a.observe(5);
        a2.observe(500);
        b.observe(50);
        assert_eq!(a.count(), 2, "same (name, label) shares state");
        assert_eq!(b.count(), 1);

        let text = reg.render();
        assert!(text.contains("cq_lat_us_bucket{op=\"count\",le=\"10\"} 1"));
        assert!(text.contains("cq_lat_us_bucket{op=\"count\",le=\"+Inf\"} 2"));
        assert!(text.contains("cq_lat_us_bucket{op=\"mutate\",le=\"100\"} 1"));
        assert!(text.contains("cq_lat_us_sum{op=\"count\"} 505"));
        assert!(text.contains("cq_lat_us_count{op=\"mutate\"} 1"));
        // One HELP/TYPE header for the whole family.
        assert_eq!(text.matches("# TYPE cq_lat_us").count(), 1);
    }

    #[test]
    fn sample_flattens_every_metric_kind() {
        let reg = Registry::new();
        reg.counter("cq_total", "c").add(7);
        reg.counter_labeled("cq_ops_total", "ops", "op", "count")
            .inc();
        reg.gauge("cq_depth", "g").set(3);
        let h = reg.histogram("cq_lat_us", "h", &[10, 100]);
        h.observe(5);
        h.observe(50_000);

        let sample = reg.sample();
        let get = |name: &str| {
            sample
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        assert_eq!(get("cq_total"), 7);
        assert_eq!(get("cq_ops_total{op=\"count\"}"), 1);
        assert_eq!(get("cq_depth"), 3);
        assert_eq!(get("cq_lat_us_count"), 2);
        assert_eq!(get("cq_lat_us_sum"), 50_005);
        assert_eq!(get("cq_lat_us_p99"), 100, "p99 clamps to last bound");
    }
}
