//! Metrics history: a fixed-size ring of whole-registry samples.
//!
//! A sampler thread calls [`MetricsHistory::record`] every
//! `interval_ms`, flattening every registered counter, gauge, and
//! histogram (via [`Registry::sample`]) into one [`HistorySample`]. The
//! ring keeps the newest `cap` samples, so an operator can ask — *after*
//! an anomaly — what every metric looked like around it: rates are deltas
//! of counters between adjacent samples, tail movement is the sampled
//! `_p99` series, and a throughput dip brackets itself.
//!
//! Samples carry a monotonic sequence number so a poller can fetch
//! incrementally (`since(seq)`), and both wall-clock and uptime stamps so
//! the timeline aligns with logs and with span timestamps respectively.

use crate::metrics::Registry;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One point-in-time flattening of the whole registry.
#[derive(Clone, Debug)]
pub struct HistorySample {
    /// Monotonic sample sequence, starting at 1.
    pub seq: u64,
    /// Wall-clock sample time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Milliseconds since the history ring was created (server start).
    pub uptime_ms: u64,
    /// `(series, value)` pairs, in registry order.
    pub entries: Vec<(String, u64)>,
}

/// The bounded sample ring. Thread-safe; `record` and `since` take one
/// short mutex tap each.
pub struct MetricsHistory {
    cap: usize,
    interval_ms: u64,
    start: Instant,
    ring: Mutex<Ring>,
}

struct Ring {
    next_seq: u64,
    samples: VecDeque<HistorySample>,
}

impl MetricsHistory {
    /// A ring keeping the newest `cap` samples, advertised as sampled
    /// every `interval_ms` (the sampler thread owns the actual cadence).
    pub fn new(cap: usize, interval_ms: u64) -> MetricsHistory {
        MetricsHistory {
            cap: cap.max(2),
            interval_ms,
            start: Instant::now(),
            ring: Mutex::new(Ring {
                next_seq: 1,
                samples: VecDeque::new(),
            }),
        }
    }

    /// The advertised sampling interval.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Sample `registry` now and push the result. Returns the sample's
    /// sequence number.
    pub fn record(&self, registry: &Registry) -> u64 {
        let entries = registry.sample();
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let uptime_ms = self.start.elapsed().as_millis() as u64;
        let mut ring = self.ring.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.samples.len() >= self.cap {
            ring.samples.pop_front();
        }
        ring.samples.push_back(HistorySample {
            seq,
            unix_ms,
            uptime_ms,
            entries,
        });
        seq
    }

    /// Samples with `seq > since_seq`, oldest first, at most `limit`.
    /// Returns `(next_seq, samples)` — pass `next_seq - 1` back as the
    /// next `since_seq` for gap-free incremental polling (subject to ring
    /// eviction).
    pub fn since(&self, since_seq: u64, limit: usize) -> (u64, Vec<HistorySample>) {
        let ring = self.ring.lock().unwrap();
        let samples = ring
            .samples
            .iter()
            .filter(|s| s.seq > since_seq)
            .take(limit)
            .cloned()
            .collect();
        (ring.next_seq, samples)
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_sequences_are_monotonic() {
        let reg = Registry::new();
        let c = reg.counter("cq_total", "test");
        let hist = MetricsHistory::new(4, 100);
        for _ in 0..10 {
            c.inc();
            hist.record(&reg);
        }
        assert_eq!(hist.len(), 4);
        let (next, samples) = hist.since(0, 100);
        assert_eq!(next, 11);
        assert_eq!(
            samples.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "oldest evicted first"
        );
        // Counter values advance with the samples: deltas reconstruct rate.
        let vals: Vec<u64> = samples
            .iter()
            .map(|s| s.entries.iter().find(|(n, _)| n == "cq_total").unwrap().1)
            .collect();
        assert_eq!(vals, vec![7, 8, 9, 10]);
    }

    #[test]
    fn since_filters_and_limits() {
        let reg = Registry::new();
        reg.counter("cq_total", "test");
        let hist = MetricsHistory::new(16, 100);
        for _ in 0..6 {
            hist.record(&reg);
        }
        let (_, s) = hist.since(4, 100);
        assert_eq!(s.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![5, 6]);
        let (_, s) = hist.since(0, 3);
        assert_eq!(s.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(hist.interval_ms(), 100);
    }
}
