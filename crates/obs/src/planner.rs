//! Process-wide planner counters.
//!
//! The decomposition search runs deep inside `cqcount-decomp`, far below
//! any [`crate::metrics::Registry`]; threading a registry handle through
//! every `solve` call would put an argument on the hottest recursion in
//! the planner. Instead the search increments these detached counters
//! (one relaxed atomic add per event, batched per width sweep), and any
//! registry that wants them exposed attaches the shared handles via
//! [`crate::metrics::Registry::attach_counter`].
//!
//! The counters are process-wide: two servers in one process report the
//! same planner totals, exactly like allocator or rayon-style pool
//! statistics would.

use crate::metrics::Counter;
use std::sync::OnceLock;

/// Shared handles for the planner's search counters.
pub struct PlannerCounters {
    /// Blocks `(C, N(C))` actually solved (memo fills, positive or negative).
    pub blocks_solved: Counter,
    /// Memo hits, including negative verdicts shared between workers.
    pub memo_hits: Counter,
    /// Blocks refuted at width `k+1` by transferring the width-`k` negative
    /// verdict (identical candidate universe, no re-expansion).
    pub negative_reuse: Counter,
    /// Candidate bags pulled from the lazy streams and tried.
    pub candidates_yielded: Counter,
    /// Candidate universes (deduped per-block avail sets) opened.
    pub universes_opened: Counter,
    /// Width levels searched (`at_most` calls).
    pub widths_searched: Counter,
}

/// The process-wide planner counters.
pub fn counters() -> &'static PlannerCounters {
    static GLOBAL: OnceLock<PlannerCounters> = OnceLock::new();
    GLOBAL.get_or_init(|| PlannerCounters {
        blocks_solved: Counter::detached(),
        memo_hits: Counter::detached(),
        negative_reuse: Counter::detached(),
        candidates_yielded: Counter::detached(),
        universes_opened: Counter::detached(),
        widths_searched: Counter::detached(),
    })
}
