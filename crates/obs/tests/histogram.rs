//! Histogram edge cases: zero samples, a single sample, values past the
//! last bucket, and concurrent recording agreeing with a serial replay.

use cqcount_obs::metrics::Histogram;
use std::sync::Arc;

const BOUNDS: &[u64] = &[10, 100, 1_000, 10_000];

#[test]
fn zero_samples_has_no_quantiles_and_empty_buckets() {
    let h = Histogram::detached(BOUNDS);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.quantile(0.99), None);
    let snap = h.snapshot();
    assert_eq!(snap.counts, vec![0; BOUNDS.len() + 1]);
}

#[test]
fn single_sample_defines_every_quantile() {
    let h = Histogram::detached(BOUNDS);
    h.observe(42);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 42);
    // 42 falls in the (10, 100] bucket; every quantile reports its bound.
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(100), "q={q}");
    }
}

#[test]
fn values_beyond_the_last_bucket_land_in_overflow() {
    let h = Histogram::detached(BOUNDS);
    h.observe(10_000); // on the boundary: still the last finite bucket
    h.observe(10_001);
    h.observe(u64::MAX / 2);
    let snap = h.snapshot();
    assert_eq!(snap.counts[BOUNDS.len() - 1], 1, "boundary sample");
    assert_eq!(snap.counts[BOUNDS.len()], 2, "overflow samples");
    assert_eq!(h.count(), 3);
    // The median is the boundary sample's bucket; tail ranks land in the
    // open-ended +Inf bucket and clamp to the highest finite bound rather
    // than extrapolating to u64::MAX.
    assert_eq!(h.quantile(0.25), Some(10_000));
    assert_eq!(h.quantile(1.0), Some(10_000));
}

#[test]
fn boundary_values_are_inclusive_of_their_bucket() {
    let h = Histogram::detached(BOUNDS);
    for b in BOUNDS {
        h.observe(*b);
    }
    let snap = h.snapshot();
    assert_eq!(snap.counts, vec![1, 1, 1, 1, 0], "le semantics: v <= bound");
}

/// Concurrent recording from `CQCOUNT_THREADS` workers (the same knob the
/// exec pool sizes itself from) must agree exactly with a serial replay of
/// the same sample stream: bucket counts, sum, and count.
#[test]
fn concurrent_recording_agrees_with_serial_replay() {
    let workers: usize = std::env::var("CQCOUNT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    // Deterministic per-worker sample streams (splitmix64 over the lane).
    let samples_of = |lane: u64| -> Vec<u64> {
        let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane + 1);
        (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 20_000 // spans every bucket including overflow
            })
            .collect()
    };

    let concurrent = Arc::new(Histogram::detached(BOUNDS));
    let handles: Vec<_> = (0..workers)
        .map(|lane| {
            let h = Arc::clone(&concurrent);
            std::thread::spawn(move || {
                for v in samples_of(lane as u64) {
                    h.observe(v);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let serial = Histogram::detached(BOUNDS);
    for lane in 0..workers {
        for v in samples_of(lane as u64) {
            serial.observe(v);
        }
    }

    // All workers joined: the concurrent snapshot is quiescent and must
    // match the serial replay bit for bit.
    assert_eq!(concurrent.snapshot(), serial.snapshot());
    assert_eq!(concurrent.count(), (workers * 10_000) as u64);
}
