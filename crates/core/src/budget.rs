//! Per-request execution budgets with cooperative cancellation.
//!
//! The serving layer must degrade instead of falling over: a runaway count
//! (brute force on an adversarial instance) has to stop near its wall-clock
//! budget rather than hold a worker hostage. Budgets are checked
//! *cooperatively* — the counting loops call [`Budget::check`] at loop
//! granularity (every few hundred homomorphisms in the brute-force search,
//! between pipeline phases elsewhere), so cancellation latency is bounded
//! by the longest uninterruptible kernel step, not by the whole count.

use crate::error::PlanError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget plus an external cancel flag. Cloning shares the
/// underlying state (a clone handed to a worker observes `cancel()` calls
/// made on the original). The default/unlimited budget never trips and
/// costs nothing to check.
#[derive(Clone, Default, Debug)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    started: Instant,
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

impl Budget {
    /// A budget that never trips (the default for library callers).
    pub const fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget that trips `limit` after creation.
    pub fn with_deadline(limit: Duration) -> Budget {
        let now = Instant::now();
        Budget {
            inner: Some(Arc::new(Inner {
                started: now,
                deadline: Some(now + limit),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// A budget with no deadline that can still be cancelled externally.
    pub fn cancellable() -> Budget {
        Budget {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                deadline: None,
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// Trips the budget from another thread (admission control, shutdown).
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Milliseconds since the budget was created (0 for unlimited).
    pub fn elapsed_ms(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.started.elapsed().as_millis() as u64)
    }

    /// Has the budget tripped (deadline passed or cancelled)?
    pub fn is_exceeded(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        inner.cancelled.load(Ordering::Relaxed)
            || inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative check: `Err(PlanError::BudgetExceeded)` once tripped.
    pub fn check(&self) -> Result<(), PlanError> {
        if self.is_exceeded() {
            Err(PlanError::BudgetExceeded {
                elapsed_ms: self.elapsed_ms().max(1),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_exceeded());
        assert!(b.check().is_ok());
        b.cancel(); // no-op
        assert!(b.check().is_ok());
        assert_eq!(b.elapsed_ms(), 0);
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        assert!(b.is_exceeded());
        assert!(matches!(
            b.check(),
            Err(PlanError::BudgetExceeded { elapsed_ms }) if elapsed_ms >= 1
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip_immediately() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(b.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::cancellable();
        let worker = b.clone();
        assert!(worker.check().is_ok());
        b.cancel();
        assert!(worker.is_exceeded());
        assert!(worker.check().is_err());
    }
}
