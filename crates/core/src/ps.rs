//! The Pichler–Skritek `#`-relation algorithm (Figure 13 of the paper),
//! counting answers of queries *with* existential variables over a
//! (complete) hypertree decomposition.
//!
//! Each decomposition vertex `p` holds a `#`-relation: a set of
//! *sets of substitutions* `S ⊆ r_p`, each with a multiplicity `c(S)`. `S`
//! collects the surviving extensions of a group of assignments to the free
//! variables seen so far, and `c(S)` counts how many distinct free
//! assignments lead to exactly that extension set. Upward semijoins combine
//! children with the `⋉#` operator; the root's multiplicities sum to
//! `|π_free(Q)(Q^D)|`.
//!
//! Theorem 6.2: with width `k`, maximum relation size `m` and degree bound
//! `h = bound(D, HD)`, the run time is `O(|vertices| · m^{2k} · 4^h)` — the
//! degree, not the database size, drives the exponential part.

use crate::sharp::bag_views_with_kernel;
use cqcount_arith::Natural;
use cqcount_decomp::Hypertree;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::{Bindings, Database, FxHashMap, JoinKernel};

/// A `#`-relation: canonical bindings-sets with multiplicities.
type SharpRelation = FxHashMap<Bindings, Natural>;

/// Pair-count threshold below which `⋉#` stays sequential.
const PAR_MIN_PAIRS: usize = 256;

/// The `⋉#` operator: `R ⋉# R' = { S ⋉ S' | S ∈ R, S' ∈ R', S ⋉ S' ≠ ∅ }`
/// with `c(T) = Σ_{S ⋉ S' = T} c(S)·c(S')`.
///
/// Large products are chunked over the left operand's entries; the partial
/// maps are merged by `+=`, which is commutative over [`Natural`], so the
/// result is the same map whatever the chunking.
fn sharp_semijoin(r: &SharpRelation, r2: &SharpRelation) -> SharpRelation {
    let fold = |entries: &[(&Bindings, &Natural)]| -> SharpRelation {
        let mut out = SharpRelation::default();
        for (s, c) in entries {
            for (s2, c2) in r2 {
                let t = s.semijoin(s2);
                if !t.is_empty() {
                    let prod = *c * c2;
                    *out.entry(t).or_insert(Natural::ZERO) += &prod;
                }
            }
        }
        out
    };
    let left: Vec<(&Bindings, &Natural)> = r.iter().collect();
    if left.len().saturating_mul(r2.len()) < PAR_MIN_PAIRS {
        return fold(&left);
    }
    let partials = cqcount_exec::par_chunks(&left, 8, |_, chunk| fold(chunk));
    let mut out = SharpRelation::default();
    for partial in partials {
        for (t, c) in partial {
            *out.entry(t).or_insert(Natural::ZERO) += &c;
        }
    }
    out
}

/// Runs the `#`-relation algorithm directly on materialized views: `views`
/// are the per-vertex relations `r_p` (over the decomposition's `χ(p)`
/// columns), the tree is given by `parent`/`children`/`order` (children
/// before parents), and `free_cols` are the output columns. Views must form
/// a join tree w.r.t. the given tree structure.
pub fn count_sharp_relations_views(
    views: &[Bindings],
    parent: &[Option<usize>],
    children: &[Vec<usize>],
    order: &[usize],
    free_cols: &[u32],
) -> Natural {
    if views.is_empty() {
        return Natural::ONE;
    }
    // Initialization: R_p^0 = { σ_θ(r_p) | θ ∈ π_free(r_p) }, c = 1 — one
    // independent grouping per tree vertex, spread across the pool.
    let mut sharp: Vec<SharpRelation> = cqcount_exec::par_map(views, |v| {
        v.partition_by(free_cols)
            .into_iter()
            .map(|(_, group)| (group, Natural::ONE))
            .collect()
    });

    // Bottom-up: fold children into parents with ⋉#.
    let mut answer = Natural::ONE;
    for &v in order {
        for &c in &children[v] {
            let child = std::mem::take(&mut sharp[c]);
            sharp[v] = sharp_semijoin(&sharp[v], &child);
        }
        if parent[v].is_none() {
            // Finalization per root; independent components multiply.
            let total: Natural = sharp[v].values().sum();
            answer *= total;
        }
    }
    answer
}

/// Counts `|π_free(Q)(Q^D)|` with the `#`-relation algorithm over the given
/// hypertree decomposition of `Q`'s hypergraph (with `λ` holding atom
/// indices). The decomposition is completed first (every atom placed in
/// some `λ` with its variables inside `χ`, Theorem 6.2's preprocessing).
pub fn count_pichler_skritek(q: &ConjunctiveQuery, db: &Database, ht: &Hypertree) -> Natural {
    let (complete, views) = completed_views(q, db, ht);
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    count_sharp_relations_views(
        &views,
        &complete.parent,
        &complete.children,
        &complete.order,
        &free_cols,
    )
}

/// Completes `ht` for `q` and materializes the per-vertex views `r_p`
/// (kernel from the environment, default `Auto`).
pub(crate) fn completed_views(
    q: &ConjunctiveQuery,
    db: &Database,
    ht: &Hypertree,
) -> (Hypertree, Vec<Bindings>) {
    completed_views_with_kernel(q, db, ht, JoinKernel::from_env())
}

/// [`completed_views`] with an explicit per-bag join kernel.
pub(crate) fn completed_views_with_kernel(
    q: &ConjunctiveQuery,
    db: &Database,
    ht: &Hypertree,
    kernel: JoinKernel,
) -> (Hypertree, Vec<Bindings>) {
    let atom_nodes: Vec<cqcount_hypergraph::NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    let complete = ht.complete(&(0..q.atoms().len()).collect::<Vec<_>>(), &atom_nodes);
    let views = bag_views_with_kernel(q, db, &complete, kernel);
    (complete, views)
}

/// `bound(D, HD)` (Definition 6.1): the maximum degree of the free columns
/// across the vertex relations of the (completed) decomposition.
pub fn degree_bound(q: &ConjunctiveQuery, db: &Database, ht: &Hypertree) -> usize {
    let (_, views) = completed_views(q, db, ht);
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    views
        .iter()
        .map(|v| v.degree_wrt(&free_cols))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_decomp::ghw_exact;
    use cqcount_query::parse_program;

    fn setup(src: &str) -> (ConjunctiveQuery, Database) {
        let (q, db) = parse_program(src).unwrap();
        (q.unwrap(), db)
    }

    fn ps_count(q: &ConjunctiveQuery, db: &Database) -> Natural {
        let h = q.hypergraph();
        let atoms: Vec<cqcount_hypergraph::NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (_, ht) = ghw_exact(&h, &atoms, q.atoms().len()).expect("ghw exists");
        count_pichler_skritek(q, db, &ht)
    }

    #[test]
    fn acyclic_with_projection() {
        let (q, db) = setup(
            "r(a, x). r(a, y). r(b, z).
             s(x, 1). s(y, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
        // X = a only (b's y=z has no s fact).
        assert_eq!(ps_count(&q, &db), count_brute_force(&q, &db));
        assert_eq!(ps_count(&q, &db), 1u64.into());
    }

    #[test]
    fn star_query_hard_case() {
        // The Pichler–Skritek #P-hardness shape: ans(X1,X2) :- r(Y,X1), r(Y,X2);
        // counting pairs (X1,X2) sharing a common Y.
        let (q, db) = setup(
            "r(y1, a). r(y1, b). r(y2, b). r(y2, c).
             ans(X1, X2) :- r(Y, X1), r(Y, X2).",
        );
        // pairs: via y1 {a,b}x{a,b}, via y2 {b,c}x{b,c} → distinct:
        // (a,a),(a,b),(b,a),(b,b),(b,c),(c,b),(c,c) = 7.
        assert_eq!(count_brute_force(&q, &db), 7u64.into());
        assert_eq!(ps_count(&q, &db), 7u64.into());
    }

    #[test]
    fn counts_match_brute_force_on_q0() {
        let (q, db) = setup(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
        assert_eq!(ps_count(&q, &db), count_brute_force(&q, &db));
    }

    #[test]
    fn boolean_query_via_ps() {
        let (q, db) = setup("r(a, b). s(b). ans() :- r(X, Y), s(Y).");
        assert_eq!(ps_count(&q, &db), 1u64.into());
        let (q2, db2) = setup("r(a, b). s(c). ans() :- r(X, Y), s(Y).");
        assert_eq!(ps_count(&q2, &db2), 0u64.into());
    }

    #[test]
    fn all_free_matches_join_count() {
        let (q, db) = setup(
            "r(a, b). r(b, c). r(c, d).
             ans(X, Y, Z) :- r(X, Y), r(Y, Z).",
        );
        assert_eq!(ps_count(&q, &db), 2u64.into());
    }

    #[test]
    fn degree_bound_reflects_keys() {
        // s(X, Y) with X a key: bound = 1. With X non-key: bound grows.
        let (q, db) = setup(
            "s(a, p). s(b, q). s(c, r).
             ans(X) :- s(X, Y).",
        );
        let h = q.hypergraph();
        let atoms: Vec<cqcount_hypergraph::NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (_, ht) = ghw_exact(&h, &atoms, 2).unwrap();
        assert_eq!(degree_bound(&q, &db, &ht), 1);
        let (q2, db2) = setup(
            "s(a, p). s(a, q). s(a, r). s(b, q).
             ans(X) :- s(X, Y).",
        );
        let (_, ht2) = ghw_exact(&q2.hypergraph(), &atoms, 2).unwrap();
        assert_eq!(degree_bound(&q2, &db2, &ht2), 3);
    }

    #[test]
    fn disconnected_query() {
        let (q, db) = setup(
            "r(a). r(b). s(x). s(y). s(z).
             ans(X) :- r(X), s(Y).",
        );
        assert_eq!(ps_count(&q, &db), 2u64.into());
        let (q2, db2) = setup(
            "r(a). r(b). s(x). s(y). s(z).
             ans(X, Y) :- r(X), s(Y).",
        );
        assert_eq!(ps_count(&q2, &db2), 6u64.into());
    }
}
