//! Hybrid `#ᵦ`-hypertree decompositions (Section 6, Definition 6.4,
//! Theorems 6.6 and 6.7).
//!
//! The hybrid method promotes a set `S̄ ⊇ free(Q)` of variables to
//! *pseudo-free*: variables outside `S̄` are handled purely structurally
//! (their frontiers must be covered, as in a `#`-hypertree decomposition of
//! `Q[S̄]`), while the pseudo-free existential variables are handled by the
//! `#`-relation algorithm, whose cost is exponential only in the *degree*
//! `bound_free(D, ⟨T, χ_S̄, λ⟩)` — which keys and quasi-keys in the data
//! keep small (Example 1.5: degree 1 when the promoted variables are
//! functionally determined by the free ones).

use crate::ps::count_sharp_relations_views;
use crate::sharp::{sharp_hypertree_decomposition, SharpDecomposition};
use cqcount_arith::Natural;
use cqcount_query::{ConjunctiveQuery, Var};
use cqcount_relational::consistency::full_reduce;
use cqcount_relational::{Bindings, Database};
use std::collections::BTreeSet;

/// A width-`k` `#ᵦ`-hypertree decomposition `⟨HD, S̄⟩` of `Q` w.r.t. `D`.
#[derive(Clone, Debug)]
pub struct HybridDecomposition {
    /// The pseudo-free set `S̄ ⊇ free(Q)`.
    pub sbar: BTreeSet<Var>,
    /// The `#`-hypertree decomposition of `Q[S̄]` (condition (1) of
    /// Definition 6.4).
    pub sharp: SharpDecomposition,
    /// `bound_free(D, ⟨T, χ_S̄, λ⟩)` (condition (2)).
    pub bound: usize,
}

/// Materializes the decomposition views of `Q[S̄]`, reduces them to global
/// consistency, and projects onto `S̄` — the "structural elimination" of the
/// variables outside `S̄` (Theorem 6.6 step 1). Returns the projected views
/// plus the tree structure.
#[allow(clippy::type_complexity)]
fn sbar_views(
    sd: &SharpDecomposition,
    db: &Database,
) -> (
    Vec<Bindings>,
    Vec<Option<usize>>,
    Vec<Vec<usize>>,
    Vec<usize>,
) {
    let (complete, mut views) = crate::ps::completed_views(&sd.qprime, db, &sd.hypertree);
    full_reduce(&mut views, &complete.parent, &complete.order);
    let sbar_cols: Vec<u32> = sd.qprime.free().iter().map(|v| v.node()).collect();
    let projected: Vec<Bindings> = views.iter().map(|v| v.project(&sbar_cols)).collect();
    (
        projected,
        complete.parent,
        complete.children,
        complete.order,
    )
}

/// Computes the degree value of a candidate `⟨HD, S̄⟩` w.r.t. the *original*
/// free variables: the maximum, over the decomposition vertices, of the
/// number of extensions of a free-variable assignment within
/// `π_{χ(p) ∩ S̄}(r_p)`.
fn degree_of(sd: &SharpDecomposition, db: &Database, free_cols: &[u32]) -> usize {
    let (projected, ..) = sbar_views(sd, db);
    projected
        .iter()
        .map(|v| v.degree_wrt(free_cols))
        .max()
        .unwrap_or(0)
}

/// Theorem 6.7: searches for a width-`k` `#ᵦ`-hypertree decomposition of
/// `Q` w.r.t. `D` with the *minimum* degree value, over all pseudo-free
/// extensions `S̄ ⊇ free(Q)`. Returns `None` if no candidate achieves
/// degree ≤ `b` (pass `usize::MAX` for the unconditional optimum).
///
/// FPT in the query size: `2^{|existential|}` candidate sets, each with a
/// polynomial data pass.
pub fn hybrid_decomposition(
    q: &ConjunctiveQuery,
    db: &Database,
    k: usize,
    b: usize,
) -> Option<HybridDecomposition> {
    let free: Vec<Var> = q.free().into_iter().collect();
    let free_cols: Vec<u32> = free.iter().map(|v| v.node()).collect();
    let existential: Vec<Var> = q.existential().into_iter().collect();
    let mut best: Option<HybridDecomposition> = None;
    assert!(
        existential.len() < 20,
        "hybrid search: too many existential variables"
    );
    for mask in 0u32..(1 << existential.len()) {
        let mut sbar: BTreeSet<Var> = free.iter().copied().collect();
        for (i, &v) in existential.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sbar.insert(v);
            }
        }
        let qs = q.requantify(sbar.iter().copied());
        // Minimal width first: better witnesses and cheaper evaluation.
        let Some(sd) = (1..=k).find_map(|w| sharp_hypertree_decomposition(&qs, w)) else {
            continue;
        };
        let bound = degree_of(&sd, db, &free_cols);
        if bound <= b && best.as_ref().is_none_or(|cur| bound < cur.bound) {
            let done = bound <= 1;
            best = Some(HybridDecomposition {
                sbar,
                sharp: sd,
                bound,
            });
            if done {
                break; // cannot do better than degree ≤ 1
            }
        }
    }
    best
}

/// Example 1.5's data-driven heuristic: the existential variables
/// functionally determined — transitively — by the free variables through
/// relation keys. Fixpoint: a variable becomes *determined* when some atom
/// over relation `r` has all of its other variables determined (or
/// constant) at positions forming a key of `r^D`.
pub fn key_determined_variables(q: &ConjunctiveQuery, db: &Database) -> BTreeSet<Var> {
    use cqcount_query::Term;
    let mut known: BTreeSet<Var> = q.free();
    loop {
        let mut grew = false;
        for atom in q.atoms() {
            let Some(rel) = db.relation(&atom.rel) else {
                continue;
            };
            if rel.arity() != atom.terms.len() {
                continue;
            }
            let known_positions: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    Term::Var(v) => known.contains(v),
                    Term::Const(_) => true,
                })
                .map(|(i, _)| i)
                .collect();
            if known_positions.len() == atom.terms.len() {
                continue; // nothing left to determine
            }
            if cqcount_relational::keys::positions_are_key(rel, &known_positions) {
                for t in &atom.terms {
                    if let Term::Var(v) = t {
                        grew |= known.insert(*v);
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    known.difference(&q.free()).copied().collect()
}

/// Like [`hybrid_decomposition`], but tries the key-guided pseudo-free set
/// `S̄ = free(Q) ∪ key_determined_variables(Q, D)` (Example 1.5) before
/// falling back to the exhaustive Theorem 6.7 search. On key-structured
/// data this avoids the `2^{existential}` sweep entirely.
pub fn hybrid_decomposition_guided(
    q: &ConjunctiveQuery,
    db: &Database,
    k: usize,
    b: usize,
) -> Option<HybridDecomposition> {
    let determined = key_determined_variables(q, db);
    if !determined.is_empty() {
        let mut sbar: BTreeSet<Var> = q.free();
        sbar.extend(determined.iter().copied());
        let qs = q.requantify(sbar.iter().copied());
        if let Some(sd) = (1..=k).find_map(|w| sharp_hypertree_decomposition(&qs, w)) {
            let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
            let bound = degree_of(&sd, db, &free_cols);
            if bound <= b {
                return Some(HybridDecomposition {
                    sbar,
                    sharp: sd,
                    bound,
                });
            }
        }
    }
    hybrid_decomposition(q, db, k, b)
}

/// Theorem 6.6: counts `|π_free(Q)(Q^D)|` through a `#ᵦ`-hypertree
/// decomposition — eliminate the non-`S̄` variables with the Theorem 3.7
/// pipeline, then run the `#`-relation algorithm over the projected views
/// with the original free variables (cost exponential in the degree bound
/// only).
pub fn count_hybrid_with(q: &ConjunctiveQuery, db: &Database, hd: &HybridDecomposition) -> Natural {
    let (projected, parent, children, order) = sbar_views(&hd.sharp, db);
    if projected.iter().any(Bindings::is_empty) {
        return Natural::ZERO;
    }
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    count_sharp_relations_views(&projected, &parent, &children, &order, &free_cols)
}

/// Convenience: search (width `k`, degree threshold `b`) and count.
pub fn count_hybrid(
    q: &ConjunctiveQuery,
    db: &Database,
    k: usize,
    b: usize,
) -> Option<(Natural, HybridDecomposition)> {
    let hd = hybrid_decomposition(q, db, k, b)?;
    let n = count_hybrid_with(q, db, &hd);
    Some((n, hd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_query::parse_program;

    fn setup(src: &str) -> (ConjunctiveQuery, Database) {
        let (q, db) = parse_program(src).unwrap();
        (q.unwrap(), db)
    }

    /// Example 6.3's family at h = 2, m = 4: relations r̄ and s encode the
    /// binary counters; every answer extends uniquely to the Y's but m ways
    /// to Z.
    fn hybrid_family() -> (ConjunctiveQuery, Database) {
        let h = 2usize;
        let m = 1usize << h;
        let mut src = String::new();
        for n in 0..m {
            let bits: Vec<String> = (0..h).map(|j| format!("b{}", (n >> j) & 1)).collect();
            // r̄(X0, Y1..Yh, Z): X0 = n, bits, Z arbitrary
            for z in 0..m {
                src.push_str(&format!("r(x{n}, {}, z{z}).\n", bits.join(", ")));
            }
            // s(Y0..Yh): parity-ish companion — Y0 = n mod 2 tag
            src.push_str(&format!("s(y{n}, {}).\n", bits.join(", ")));
            // w_i(X_i, Y_i)
            for j in 0..h {
                src.push_str(&format!("w{}(u{n}_{j}, b{}).\n", j + 1, (n >> j) & 1));
            }
            src.push_str(&format!("v(z{n}, u{n}_0).\n"));
        }
        src.push_str(
            "ans(X0, X1, X2) :- r(X0, Y1, Y2, Z), s(Y0, Y1, Y2), \
             w1(X1, Y1), w2(X2, Y2), v(Z, X1).\n",
        );
        setup(&src)
    }

    #[test]
    fn example_6_3_hybrid_counts() {
        let (q, db) = hybrid_family();
        let brute = count_brute_force(&q, &db);
        let (n, hd) = count_hybrid(&q, &db, 2, usize::MAX).expect("hybrid exists");
        assert_eq!(n, brute);
        // The promoted set includes the Y's, and the degree is small.
        assert!(hd.bound <= 2, "bound was {}", hd.bound);
    }

    #[test]
    fn sbar_equals_free_degenerates_to_sharp() {
        // When S̄ = free suffices structurally, hybrid = #-pipeline.
        let (q, db) = setup(
            "r(a, x). r(b, x). s(x, 1). s(x, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
        let (n, _) = count_hybrid(&q, &db, 2, usize::MAX).unwrap();
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn keys_give_degree_one() {
        // wt(B, D): each worker has exactly one task (a key) — promoting D
        // must reach degree 1 (Example 1.5).
        let (q, db) = setup(
            "wt(w1, t1). wt(w2, t2). wt(w3, t1).
             pt(p1, t1). pt(p2, t2).
             ans(B, C) :- wt(B, D), pt(C, D).",
        );
        let hd = hybrid_decomposition(&q, &db, 1, usize::MAX).expect("width 1 hybrid");
        assert_eq!(hd.bound, 1);
        let n = count_hybrid_with(&q, &db, &hd);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn threshold_b_filters() {
        // Demand b = 0-ish: with tuples present the minimum degree is ≥ 1,
        // so b = 0 must fail while b = 1 succeeds on a key-like instance.
        let (q, db) = setup(
            "wt(w1, t1). wt(w2, t2). pt(p1, t1).
             ans(B, C) :- wt(B, D), pt(C, D).",
        );
        assert!(hybrid_decomposition(&q, &db, 1, 0).is_none());
        assert!(hybrid_decomposition(&q, &db, 1, 1).is_some());
    }

    #[test]
    fn key_determination_finds_the_paper_sbar() {
        // Example 6.3: the w_i relations key Y_i by X_i, and s keys Y0 by
        // the bit columns — exactly the paper's promoted set {Y0..Yh}.
        let h = 3;
        let q = cqcount_workloads::paper::hybrid_query(h);
        let db = cqcount_workloads::paper::hybrid_database(h);
        let det = key_determined_variables(&q, &db);
        let names: Vec<&str> = det.iter().map(|v| q.var_name(*v)).collect();
        assert_eq!(names, vec!["Y0", "Y1", "Y2", "Y3"]);
        // Z is never determined (every answer has m extensions to Z).
        assert!(!names.contains(&"Z"));
    }

    #[test]
    fn guided_hybrid_matches_exhaustive() {
        let h = 2;
        let q = cqcount_workloads::paper::hybrid_query(h);
        let db = cqcount_workloads::paper::hybrid_database(h);
        let guided = hybrid_decomposition_guided(&q, &db, 2, usize::MAX).unwrap();
        assert_eq!(guided.bound, 1);
        let n = count_hybrid_with(&q, &db, &guided);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn guided_falls_back_without_keys() {
        // No key structure: guided must still work via the exhaustive path.
        let (q, db) = setup(
            "r(a, b). r(a, c). r(b, b). s(b, 1). s(c, 1). s(b, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
        let hd = hybrid_decomposition_guided(&q, &db, 2, usize::MAX).unwrap();
        let n = count_hybrid_with(&q, &db, &hd);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn hybrid_matches_brute_on_varied_instances() {
        let cases = [
            "r(a, b). r(b, a). s(a, 1). s(b, 1). s(b, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
            "e(a, b). e(b, c). e(c, a). e(a, c).
             ans(X, Z) :- e(X, Y), e(Y, Z), e(Z, W).",
            "p(a, b, c). p(a, b, d). p(e, b, c). q(c, x). q(d, x).
             ans(A) :- p(A, B, C), q(C, D).",
        ];
        for src in cases {
            let (q, db) = setup(src);
            let (n, _) = count_hybrid(&q, &db, 3, usize::MAX).unwrap();
            assert_eq!(n, count_brute_force(&q, &db), "case: {src}");
        }
    }
}
