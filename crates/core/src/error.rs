//! Typed planning/counting errors with a round-trippable text form.
//!
//! The serving layer ships errors to clients verbatim inside error frames;
//! the [`std::fmt::Display`] rendering here is therefore a stable wire
//! format, and [`std::str::FromStr`] parses it back into the typed value
//! (tested as an exact round trip). Nothing in this module panics — a
//! malformed or oversized network request must never kill the daemon.

use std::fmt;
use std::str::FromStr;

/// Why a count could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// No `#`-hypertree decomposition within the width cap (strict
    /// structural mode, where brute-force fallback is not allowed).
    WidthCapExceeded {
        /// The cap the search ran up to.
        cap: usize,
    },
    /// No hybrid decomposition within the width/degree caps (strict mode).
    NoHybridDecomposition {
        /// Structural width cap.
        width_cap: usize,
        /// Degree bound cap.
        degree_cap: usize,
    },
    /// The request's wall-clock budget tripped mid-count.
    BudgetExceeded {
        /// Milliseconds elapsed when the budget tripped.
        elapsed_ms: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::WidthCapExceeded { cap } => {
                write!(f, "plan error: #-hypertree width exceeds cap {cap}")
            }
            PlanError::NoHybridDecomposition {
                width_cap,
                degree_cap,
            } => write!(
                f,
                "plan error: no hybrid decomposition within width cap {width_cap} \
                 and degree cap {degree_cap}"
            ),
            PlanError::BudgetExceeded { elapsed_ms } => {
                write!(f, "plan error: budget exceeded after {elapsed_ms}ms")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl FromStr for PlanError {
    type Err = String;

    fn from_str(s: &str) -> Result<PlanError, String> {
        let body = s
            .strip_prefix("plan error: ")
            .ok_or_else(|| format!("not a plan error rendering: {s:?}"))?;
        if let Some(cap) = body.strip_prefix("#-hypertree width exceeds cap ") {
            return Ok(PlanError::WidthCapExceeded {
                cap: cap.trim().parse().map_err(|e| format!("bad cap: {e}"))?,
            });
        }
        if let Some(rest) = body.strip_prefix("no hybrid decomposition within width cap ") {
            let (w, d) = rest
                .split_once(" and degree cap ")
                .ok_or_else(|| format!("missing degree cap in {s:?}"))?;
            return Ok(PlanError::NoHybridDecomposition {
                width_cap: w.trim().parse().map_err(|e| format!("bad width: {e}"))?,
                degree_cap: d.trim().parse().map_err(|e| format!("bad degree: {e}"))?,
            });
        }
        if let Some(rest) = body.strip_prefix("budget exceeded after ") {
            let ms = rest
                .strip_suffix("ms")
                .ok_or_else(|| format!("missing ms suffix in {s:?}"))?;
            return Ok(PlanError::BudgetExceeded {
                elapsed_ms: ms.trim().parse().map_err(|e| format!("bad ms: {e}"))?,
            });
        }
        Err(format!("unrecognized plan error rendering: {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_every_variant() {
        let variants = [
            PlanError::WidthCapExceeded { cap: 3 },
            PlanError::NoHybridDecomposition {
                width_cap: 3,
                degree_cap: 8,
            },
            PlanError::BudgetExceeded { elapsed_ms: 1234 },
        ];
        for v in variants {
            let text = v.to_string();
            let back: PlanError = text.parse().unwrap();
            assert_eq!(back, v, "round trip of {text:?}");
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!("".parse::<PlanError>().is_err());
        assert!("plan error: something new".parse::<PlanError>().is_err());
        assert!("parse error at 1:1: nope".parse::<PlanError>().is_err());
        assert!("plan error: budget exceeded after forever"
            .parse::<PlanError>()
            .is_err());
    }
}
