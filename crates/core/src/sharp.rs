//! `#`-hypertree decompositions (Definition 1.2) and `#`-decompositions
//! w.r.t. arbitrary view sets (Definition 1.4, Theorem 3.6).

use cqcount_decomp::{tree_projection, Hypertree};
use cqcount_hypergraph::{frontier_hypergraph, is_acyclic, Hypergraph, NodeSet};
use cqcount_query::canonical::atom_bindings;
use cqcount_query::color::{color, uncolor};
use cqcount_query::hom::has_homomorphism;
use cqcount_query::{Atom, ConjunctiveQuery, Term};
use cqcount_relational::{wcoj_join, Bindings, Database, JoinKernel, Relation, WcojInput};

/// A `#`-hypertree decomposition (or a `#`-decomposition w.r.t. views):
/// a decomposition covering both the hypergraph of (the uncolored version
/// of) a core of `color(Q)` and its frontier hypergraph.
#[derive(Clone, Debug)]
pub struct SharpDecomposition {
    /// The chosen core of `color(Q)` (with coloring atoms).
    pub colored_core: ConjunctiveQuery,
    /// Its uncolored version `Q'` — a sub-query of `Q` with
    /// `π_free(Q'^D) = π_free(Q^D)`.
    pub qprime: ConjunctiveQuery,
    /// The frontier hypergraph `FH(Q', free(Q))`.
    pub frontier: Hypergraph,
    /// The witness hypertree; `λ` indexes `qprime.atoms()` (width-`k` GHD
    /// case) or the external view list (tree-projection case).
    pub hypertree: Hypertree,
    /// `max_p |λ(p)|`.
    pub width: usize,
}

/// The hyperedge node-sets of a query's atoms (skipping nothing).
pub(crate) fn atom_nodesets(q: &ConjunctiveQuery) -> Vec<NodeSet> {
    q.atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect()
}

/// The combined cover hypergraph `H' = H_{Q'} ∪ FH(Q', free)` whose
/// decompositions are exactly the `#`-decompositions (proof of Theorem 3.6).
pub(crate) fn sharp_cover(qprime: &ConjunctiveQuery, free: &NodeSet) -> (Hypergraph, Hypergraph) {
    let hq = qprime.hypergraph();
    let fh = frontier_hypergraph(&hq, free);
    (hq.merge(&fh), fh)
}

/// Searches for a width-`k` `#`-hypertree decomposition of `q`
/// (Definition 1.2): a width-`k` GHD — over the view set `V_{Q'}^k` of the
/// core's atoms — of both the core's hypergraph and its frontier
/// hypergraph.
///
/// The core of `color(q)` is computed exactly; all cores are isomorphic, so
/// for the atom-based view set any one of them decides the width.
pub fn sharp_hypertree_decomposition(q: &ConjunctiveQuery, k: usize) -> Option<SharpDecomposition> {
    crate::width_search::WidthSearch::new(q).decomposition_at(k)
}

/// The `#`-hypertree width of `q`, searched up to `max_k`. A single
/// [`crate::width_search::WidthSearch`] drives the whole sweep, so the core
/// is computed once and refuted blocks carry over between widths.
pub fn sharp_hypertree_width(q: &ConjunctiveQuery, max_k: usize) -> Option<usize> {
    crate::width_search::WidthSearch::new(q)
        .find_up_to(max_k)
        .map(|(k, _)| k)
}

/// Enumerates all cores of `q` *as substructures* (atom-index subsets).
/// Cores are pairwise isomorphic but, as substructures, distinct cores can
/// behave differently w.r.t. an external view set (Definition 1.4 speaks of
/// "some core"); the tree-projection search must try them all.
pub fn all_cores(q: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    let n = q.atoms().len();
    let full: Vec<usize> = (0..n).collect();
    let mut visited: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut cores = Vec::new();
    let mut stack = vec![full];
    while let Some(atoms) = stack.pop() {
        if !visited.insert(atoms.clone()) {
            continue;
        }
        let sub = q.sub_query(&atoms);
        let mut minimal = true;
        for drop in 0..atoms.len() {
            let smaller: Vec<usize> = atoms
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, &a)| a)
                .collect();
            let candidate = q.sub_query(&smaller);
            if has_homomorphism(&sub, &candidate) {
                minimal = false;
                stack.push(smaller);
            }
        }
        if minimal
            && !cores
                .iter()
                .any(|c: &ConjunctiveQuery| c.atoms() == sub.atoms())
        {
            cores.push(sub);
        }
    }
    cores
}

/// Searches for a `#`-decomposition of `q` w.r.t. an arbitrary view set
/// given as a hypergraph over `q`'s variables (Definition 1.4 / Theorem
/// 3.6): a tree projection of `(H_{Q'}, H_V)` covering `FH(Q', free(Q))`,
/// for *some* core `Q'` of `color(q)`. `λ` in the result indexes the view
/// hyperedges.
pub fn sharp_decomposition_wrt_views(
    q: &ConjunctiveQuery,
    views: &Hypergraph,
) -> Option<SharpDecomposition> {
    let free = q.free_nodes();
    for colored_core in all_cores(&color(q)) {
        let qprime = uncolor(&colored_core);
        let (cover, frontier) = sharp_cover(&qprime, &free);
        if let Some(hypertree) = tree_projection(&cover, views) {
            let width = hypertree.width();
            return Some(SharpDecomposition {
                colored_core,
                qprime,
                frontier,
                hypertree,
                width,
            });
        }
    }
    None
}

/// Materializes the per-vertex relations `r_p = π_{χ(p)}(⋈_{a ∈ λ(p)} a^D)`
/// of a decomposition whose `λ` indexes `q`'s atoms, with the join kernel
/// taken from `CQCOUNT_JOIN_KERNEL` (default: [`JoinKernel::Auto`]).
pub fn bag_views(q: &ConjunctiveQuery, db: &Database, ht: &Hypertree) -> Vec<Bindings> {
    bag_views_with_kernel(q, db, ht, JoinKernel::from_env())
}

/// [`bag_views`] with an explicit kernel choice. `SortMerge` folds binary
/// hash joins; `Wcoj` runs the leapfrog multiway intersection over every
/// multi-atom bag; `Auto` reserves leapfrog for bags whose λ-atoms form a
/// cyclic sub-hypergraph — exactly where a binary join order must
/// materialize an intermediate larger than the AGM-bounded output.
pub fn bag_views_with_kernel(
    q: &ConjunctiveQuery,
    db: &Database,
    ht: &Hypertree,
    kernel: JoinKernel,
) -> Vec<Bindings> {
    // One independent join-then-project per tree vertex: fan the vertices
    // out over the pool (results come back in vertex order).
    let vertices: Vec<usize> = (0..ht.len()).collect();
    cqcount_exec::par_map(&vertices, |&p| {
        let chi_cols: Vec<u32> = ht.chi[p].to_vec();
        let lam = &ht.lambda[p];
        if wcoj_applies(q, lam, kernel) {
            return wcoj_bag(q, db, lam).project(&chi_cols);
        }
        let mut acc = Bindings::unit();
        for &ai in lam {
            acc = acc.join(&atom_bindings(&q.atoms()[ai], db));
        }
        acc.project(&chi_cols)
    })
}

/// Should this bag's λ-atoms be joined with the leapfrog kernel?
fn wcoj_applies(q: &ConjunctiveQuery, lam: &[usize], kernel: JoinKernel) -> bool {
    match kernel {
        JoinKernel::SortMerge => false,
        JoinKernel::Wcoj => lam.len() >= 2,
        JoinKernel::Auto => {
            lam.len() >= 2 && {
                let h = Hypergraph::from_edges(lam.iter().map(|&ai| {
                    q.atoms()[ai]
                        .vars()
                        .iter()
                        .map(|v| v.node())
                        .collect::<Vec<_>>()
                }));
                !is_acyclic(&h)
            }
        }
    }
}

/// A frozen relation usable directly as a leapfrog trie for `atom`: the
/// atom's terms are pairwise-distinct variables whose column ids ascend
/// with position (so the page's lexicographic row order *is* the trie
/// order), and the stored relation is frozen with a matching arity.
fn frozen_direct<'a>(atom: &Atom, db: &'a Database) -> Option<(&'a Relation, Vec<u32>)> {
    let mut cols = Vec::with_capacity(atom.terms.len());
    for t in &atom.terms {
        match t {
            Term::Var(v) if cols.last().is_none_or(|&c| c < v.node()) => cols.push(v.node()),
            _ => return None,
        }
    }
    let rel = db.relation(&atom.rel)?;
    (rel.arity() == cols.len() && rel.sorted_values().is_some()).then_some((rel, cols))
}

/// Joins a bag's λ-atoms with the leapfrog kernel. Atoms whose relations
/// sit on frozen store pages in trie order are intersected *in place on the
/// page* (zero materialization); the rest are evaluated to canonical
/// [`Bindings`] first (which also handles constants and repeated
/// variables).
fn wcoj_bag(q: &ConjunctiveQuery, db: &Database, lam: &[usize]) -> Bindings {
    enum Part<'a> {
        Frozen(&'a Relation, Vec<u32>),
        Materialized(Bindings),
    }
    let parts: Vec<Part> = lam
        .iter()
        .map(|&ai| {
            let atom = &q.atoms()[ai];
            match frozen_direct(atom, db) {
                Some((rel, cols)) => Part::Frozen(rel, cols),
                None => Part::Materialized(atom_bindings(atom, db)),
            }
        })
        .collect();
    let inputs: Vec<WcojInput> = parts
        .iter()
        .map(|part| match part {
            Part::Frozen(rel, cols) => {
                WcojInput::from_frozen(rel, cols).expect("frozen_direct checked trie order")
            }
            Part::Materialized(b) => WcojInput::from_bindings(b),
        })
        .collect();
    wcoj_join(&inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_query;

    fn q0() -> ConjunctiveQuery {
        parse_query(
            "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        )
        .unwrap()
    }

    #[test]
    fn q0_sharp_width_is_2() {
        // Figure 3(c): width-2 #-hypertree decomposition exists; width 1
        // cannot (the core is cyclic and the frontier {B,C} is uncovered).
        assert!(sharp_hypertree_decomposition(&q0(), 1).is_none());
        let sd = sharp_hypertree_decomposition(&q0(), 2).expect("width 2 works");
        assert_eq!(sd.width, 2);
        assert_eq!(sharp_hypertree_width(&q0(), 4), Some(2));
        // the decomposition covers the frontier hypergraph
        for e in sd.frontier.edges() {
            assert!(sd.hypertree.chi.iter().any(|bag| e.is_subset(bag)));
        }
        // and the core's hypergraph
        assert!(sd.hypertree.covers_all_edges(&sd.qprime.hypergraph()));
    }

    #[test]
    fn cycle_q1_sharp_width_2() {
        // Example 4.1: Q1 = s1(A,B), s2(B,C), s3(C,D), s4(D,A),
        // free {A,C}; frontier contains {A,C}; #-htw = 2.
        let q = parse_query("ans(A, C) :- s1(A, B), s2(B, C), s3(C, D), s4(D, A).").unwrap();
        assert_eq!(sharp_hypertree_width(&q, 4), Some(2));
        let sd = sharp_hypertree_decomposition(&q, 2).unwrap();
        // the frontier hyperedge {A,C} is present and covered
        let a = q.find_var("A").unwrap().node();
        let c = q.find_var("C").unwrap().node();
        assert!(sd.frontier.edges().contains(&NodeSet::from([a, c])));
    }

    #[test]
    fn chain_a2_sharp_width_1() {
        // Example A.2: #-hypertree width 1 for every n (after coring).
        for n in 2..=4usize {
            let mut src = String::from("ans(");
            src.push_str(
                &(1..=n)
                    .map(|i| format!("X{i}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            src.push_str(") :- ");
            let mut atoms = Vec::new();
            for i in 1..=n {
                atoms.push(format!("r(X{i}, Y{i})"));
            }
            for i in 1..n {
                atoms.push(format!("r(X{i}, X{})", i + 1));
                atoms.push(format!("r(Y{i}, Y{})", i + 1));
            }
            src.push_str(&atoms.join(", "));
            src.push('.');
            let q = parse_query(&src).unwrap();
            assert_eq!(sharp_hypertree_width(&q, 3), Some(1), "n = {n}");
        }
    }

    #[test]
    fn biclique_sharp_width_1_despite_unbounded_ghw() {
        // Appendix A, Q2^n: free = ∅, core is a single atom → #-htw 1.
        let mut src = String::from("ans() :- ");
        let mut atoms = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                atoms.push(format!("r(X{i}, Y{j})"));
            }
        }
        src.push_str(&atoms.join(", "));
        src.push('.');
        let q = parse_query(&src).unwrap();
        assert_eq!(sharp_hypertree_width(&q, 2), Some(1));
    }

    #[test]
    fn star_c1_needs_full_width() {
        // Example C.1: Q2^h is acyclic but its frontier is {X0..Xh}; it is
        // not #-covered w.r.t. V^k for k < h+1... with h = 2: width 3 needed.
        let q =
            parse_query("ans(X0, X1, X2) :- r(X0, Y1, Y2), s(Y0, Y1, Y2), w1(X1, Y1), w2(X2, Y2).")
                .unwrap();
        assert_eq!(sharp_hypertree_width(&q, 5), Some(3));
    }

    #[test]
    fn all_cores_finds_symmetric_cores() {
        // color(Q0) has two cores: drop {st(D,G), rr(G,H)} or
        // {st(D,F), rr(F,H)}.
        let cores = all_cores(&color(&q0()));
        assert_eq!(cores.len(), 2);
        for c in &cores {
            assert_eq!(
                c.atoms()
                    .iter()
                    .filter(|a| !cqcount_query::color::is_coloring_atom(a))
                    .count(),
                7
            );
        }
    }

    #[test]
    fn views_variant_example_3_5() {
        // The view set V0 of Example 3.5 (Figure 7(d)) #-covers Q0 —
        // but only via the core that keeps F (V0 has no view covering the
        // triangle {D,G,H}).
        let q = q0();
        let var = |n: &str| q.find_var(n).unwrap().node();
        let mut views = Hypergraph::new();
        views.add_edge([var("A"), var("B"), var("I")].into());
        views.add_edge([var("B"), var("E")].into());
        views.add_edge([var("B"), var("C"), var("D")].into());
        views.add_edge([var("D"), var("F"), var("H")].into());
        let sd = sharp_decomposition_wrt_views(&q, &views).expect("Q0 is #-covered wrt V0");
        // The chosen core must not contain G.
        let g = q.find_var("G").unwrap();
        assert!(!sd.qprime.vars_in_atoms().contains(&g));
        // Sanity: removing the {B,C,D} view breaks coverage of frontier {B,C}.
        let mut weak = Hypergraph::new();
        weak.add_edge([var("A"), var("B"), var("I")].into());
        weak.add_edge([var("B"), var("E")].into());
        weak.add_edge([var("B"), var("D")].into());
        weak.add_edge([var("C"), var("D")].into());
        weak.add_edge([var("D"), var("F"), var("H")].into());
        assert!(sharp_decomposition_wrt_views(&q, &weak).is_none());
    }

    #[test]
    fn bag_views_materialize() {
        use cqcount_query::parse_program;
        let (q, db) = parse_program(
            "r(a, b). r(b, c). s(b, x). s(c, y).
             ans(X) :- r(X, Y), s(Y, Z).",
        )
        .unwrap();
        let q = q.unwrap();
        let sd = sharp_hypertree_decomposition(&q, 2).unwrap();
        let views = bag_views(&sd.qprime, &db, &sd.hypertree);
        assert_eq!(views.len(), sd.hypertree.len());
        for (v, bag) in views.iter().zip(&sd.hypertree.chi) {
            assert_eq!(
                v.cols(),
                bag.to_vec().as_slice(),
                "view columns must equal χ"
            );
        }
    }
}
