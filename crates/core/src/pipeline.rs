//! The counting pipeline of Theorems 3.7 and 1.3.
//!
//! Given a sub-query `Q'` (a core of `color(Q)`, uncolored — or `Q` itself)
//! and a decomposition covering both `H_{Q'}` and the frontier hypergraph
//! `FH(Q', free(Q))`:
//!
//! 1. materialize the per-vertex views `r_p = π_{χ(p)}(⋈ λ(p))` (after
//!    *completing* the decomposition so every atom is enforced);
//! 2. run the full reducer along the decomposition tree — on the acyclic
//!    bag schema this achieves global consistency, so afterwards
//!    `r_p = π_{χ(p)}(Q'^D)` exactly;
//! 3. project every view (and the tree) onto the free variables — because
//!    all frontiers are covered, the projected acyclic instance's join is
//!    exactly `π_free(Q'^D)` (each `[free]`-component of existential
//!    variables re-extends independently through its frontier);
//! 4. count the join of the projected instance with the quantifier-free
//!    acyclic DP.

use crate::acyclic::count_over_tree;
use crate::sharp::SharpDecomposition;
use cqcount_arith::Natural;
use cqcount_decomp::Hypertree;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::consistency::full_reduce;
use cqcount_relational::{Bindings, Database, JoinKernel};

/// Counts `|π_free(Q')(Q'^D)|` given a decomposition of `Q'` whose bags
/// cover every frontier of `FH(Q', free(Q'))` and whose `λ` indexes
/// `Q'`'s atoms. This is the algorithm inside Theorem 3.7. The bag join
/// kernel comes from the environment (default `Auto`); use
/// [`count_with_decomposition_kernel`] to pin it.
pub fn count_with_decomposition(
    qprime: &ConjunctiveQuery,
    db: &Database,
    ht: &Hypertree,
) -> Natural {
    count_with_decomposition_kernel(qprime, db, ht, JoinKernel::from_env())
}

/// [`count_with_decomposition`] with an explicit per-bag join kernel —
/// the planner's hook for steering cyclic bags onto the leapfrog path.
pub fn count_with_decomposition_kernel(
    qprime: &ConjunctiveQuery,
    db: &Database,
    ht: &Hypertree,
    kernel: JoinKernel,
) -> Natural {
    let (complete, mut views) = crate::ps::completed_views_with_kernel(qprime, db, ht, kernel);
    full_reduce(&mut views, &complete.parent, &complete.order);
    if views.iter().any(Bindings::is_empty) {
        return Natural::ZERO;
    }
    let free_cols: Vec<u32> = qprime.free().iter().map(|v| v.node()).collect();
    // Step 3: each [free]-component's view projects independently — fan the
    // per-vertex projections out over the pool.
    let projected: Vec<Bindings> = cqcount_exec::par_map(&views, |v| v.project(&free_cols));
    count_over_tree(
        &projected,
        &complete.parent,
        &complete.children,
        &complete.order,
    )
}

/// Theorem 1.3 end to end: computes a width-≤`max_k` `#`-hypertree
/// decomposition of `q` (core of the coloring, frontier hypergraph,
/// width-`k` GHD) and counts through it. Returns `None` when `q` has no
/// `#`-hypertree decomposition of width ≤ `max_k`.
pub fn count_via_sharp_decomposition(
    q: &ConjunctiveQuery,
    db: &Database,
    max_k: usize,
) -> Option<(Natural, SharpDecomposition)> {
    let (_, sd) = crate::width_search::WidthSearch::new(q).find_up_to(max_k)?;
    let count = count_with_decomposition(&sd.qprime, db, &sd.hypertree);
    Some((count, sd))
}

/// Corollary 3.8 flavour: counts through a `#`-decomposition w.r.t. an
/// explicit view-set hypergraph, using bag views over the *query's own
/// atoms* as the legal database for the decomposition. Returns `None` if
/// `q` is not `#`-covered w.r.t. the views.
pub fn count_with_views(
    q: &ConjunctiveQuery,
    db: &Database,
    views: &cqcount_hypergraph::Hypergraph,
) -> Option<Natural> {
    let sd = crate::sharp::sharp_decomposition_wrt_views(q, views)?;
    // The tree projection's λ indexes view hyperedges; rebuild an atom-based
    // λ by covering each bag with the atoms of Q' it can be built from.
    // Every bag is a subset of a view, and views are (by the legal-database
    // requirement) at least as permissive as Q' — materializing bags from
    // Q''s own atoms is the standard view extension and is always legal.
    let atom_sets = crate::sharp::atom_nodesets(&sd.qprime);
    let mut lambda = Vec::with_capacity(sd.hypertree.len());
    for bag in &sd.hypertree.chi {
        // cover the bag greedily with atoms (for materialization only —
        // correctness needs soundness, which any superset join gives after
        // completion + consistency).
        let mut need = bag.clone();
        let mut lam = Vec::new();
        while !need.is_empty() {
            let best = (0..atom_sets.len())
                .max_by_key(|&i| atom_sets[i].intersection(&need).len())
                .expect("query has atoms");
            if atom_sets[best].intersection(&need).is_empty() {
                break; // bag node not in any atom: impossible for valid bags
            }
            lam.push(best);
            need = need.difference(&atom_sets[best]);
        }
        lambda.push(lam);
    }
    let ht = Hypertree::from_parts(
        sd.hypertree.chi.clone(),
        lambda,
        sd.hypertree.parent.clone(),
    );
    Some(count_with_decomposition(&sd.qprime, db, &ht))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_query::parse_program;

    fn setup(src: &str) -> (ConjunctiveQuery, Database) {
        let (q, db) = parse_program(src).unwrap();
        (q.unwrap(), db)
    }

    #[test]
    fn q0_counts_match() {
        let (q, db) = setup(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
        let (n, sd) = count_via_sharp_decomposition(&q, &db, 3).unwrap();
        assert_eq!(sd.width, 2);
        assert_eq!(n, count_brute_force(&q, &db));
        assert_eq!(n, 5u64.into());
    }

    #[test]
    fn cycle_q1() {
        let (q, db) = setup(
            "s1(a1, b1). s1(a1, b2). s1(a2, b1).
             s2(b1, c1). s2(b2, c2).
             s3(c1, d1). s3(c2, d1).
             s4(d1, a1). s4(d1, a2).
             ans(A, C) :- s1(A, B), s2(B, C), s3(C, D), s4(D, A).",
        );
        let (n, sd) = count_via_sharp_decomposition(&q, &db, 3).unwrap();
        assert_eq!(sd.width, 2);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn chain_a2_width_1_counting() {
        let (q, db) = setup(
            "r(a, b). r(b, c). r(c, a). r(a, a).
             ans(X1, X2, X3) :- r(X1, Y1), r(X2, Y2), r(X3, Y3),
                                r(X1, X2), r(X2, X3), r(Y1, Y2), r(Y2, Y3).",
        );
        let (n, sd) = count_via_sharp_decomposition(&q, &db, 2).unwrap();
        assert_eq!(sd.width, 1, "Example A.2 has #-htw 1");
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn boolean_biclique() {
        let (q, db) = setup(
            "r(u1, v1). r(u1, v2). r(u2, v1).
             ans() :- r(X0, Y0), r(X0, Y1), r(X1, Y0), r(X1, Y1).",
        );
        let (n, sd) = count_via_sharp_decomposition(&q, &db, 1).unwrap();
        assert_eq!(sd.width, 1, "biclique core collapses to one atom");
        assert_eq!(n, Natural::ONE);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn empty_relations_count_zero() {
        let (q, db) = setup("r(a, b). ans(X) :- r(X, Y), s(Y, Z).");
        let (n, _) = count_via_sharp_decomposition(&q, &db, 2).unwrap();
        assert_eq!(n, Natural::ZERO);
        assert_eq!(count_brute_force(&q, &db), Natural::ZERO);
    }

    #[test]
    fn width_cap_respected() {
        // Example C.1 with h = 2 has #-htw 3: cap 2 must return None.
        let (q, db) = setup(
            "r(x, y1, y2). s(y0, y1, y2). w1(x1, y1). w2(x2, y2).
             ans(X0, X1, X2) :- r(X0, Y1, Y2), s(Y0, Y1, Y2), w1(X1, Y1), w2(X2, Y2).",
        );
        assert!(count_via_sharp_decomposition(&q, &db, 2).is_none());
        let (n, sd) = count_via_sharp_decomposition(&q, &db, 3).unwrap();
        assert_eq!(sd.width, 3);
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn count_with_views_example_3_5() {
        let (q, db) = setup(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
        let var = |n: &str| q.find_var(n).unwrap().node();
        let mut views = cqcount_hypergraph::Hypergraph::new();
        views.add_edge([var("A"), var("B"), var("I")].into());
        views.add_edge([var("B"), var("E")].into());
        views.add_edge([var("B"), var("C"), var("D")].into());
        views.add_edge([var("D"), var("F"), var("H")].into());
        let n = count_with_views(&q, &db, &views).unwrap();
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn free_variable_in_single_atom() {
        let (q, db) = setup(
            "r(a, x). r(b, x). r(b, y). s(x). s(y).
             ans(X) :- r(X, Y), s(Y).",
        );
        let (n, _) = count_via_sharp_decomposition(&q, &db, 2).unwrap();
        assert_eq!(n, 2u64.into());
    }
}
