//! Counting answers to conjunctive queries — the paper's algorithms.
//!
//! This crate is the primary contribution of the reproduced paper: exact
//! counting of `|π_free(Q)(Q^D)|` through structural and hybrid
//! decompositions. The algorithm menu (see `DESIGN.md` at the repository
//! root for the per-theorem mapping):
//!
//! * [`brute`] — baseline enumeration (the "straightforward approach");
//! * [`acyclic`] — Yannakakis-style counting for quantifier-free acyclic
//!   instances (the subroutine Theorem 3.7 bottoms out in);
//! * [`ps`] — the Pichler–Skritek `#`-relation algorithm over hypertree
//!   decompositions (Figure 13), with the degree-bounded cost of
//!   Theorem 6.2;
//! * [`sharp`] — `#`-hypertree decompositions (Definitions 1.2/1.4) and
//!   their search (Theorem 3.6);
//! * [`pipeline`] — the counting pipeline of Theorems 3.7/1.3: colored
//!   core → frontier hypergraph → decomposition → consistency → acyclic
//!   count;
//! * [`hybrid`] — `#ᵦ`-hypertree decompositions (Section 6, Theorems
//!   6.6/6.7): promote low-degree existential variables to pseudo-free;
//! * [`durand_mengel`] — the quantified-star-size method (Appendix A) as
//!   the prior-art comparator;
//! * [`planner`] — width analysis and automatic algorithm selection.
//!
//! ```
//! use cqcount_core::prelude::*;
//! let (q, db) = cqcount_query::parse_program(
//!     "e(a, b). e(b, c). e(a, c). ans(X) :- e(X, Y), e(Y, Z).",
//! ).unwrap();
//! let q = q.unwrap();
//! assert_eq!(count_brute_force(&q, &db), 1u64.into()); // only X = a
//! assert_eq!(count_auto(&q, &db), 1u64.into());
//! ```

pub mod acyclic;
pub mod brute;
pub mod budget;
pub mod durand_mengel;
pub mod enumerate;
pub mod error;
pub mod hybrid;
pub mod pipeline;
pub mod planner;
pub mod ps;
pub mod sharp;
pub mod ucq;
pub mod views;
pub mod width_search;

/// Convenience re-exports of the full counting API.
pub mod prelude {
    pub use crate::acyclic::count_acyclic_full;
    pub use crate::brute::{count_brute_force, count_brute_force_budgeted, count_via_full_join};
    pub use crate::budget::Budget;
    pub use crate::durand_mengel::{count_durand_mengel, durand_mengel_width};
    pub use crate::enumerate::{enumerate_answers, for_each_answer, for_each_answer_with};
    pub use crate::error::PlanError;
    pub use crate::hybrid::{
        count_hybrid, hybrid_decomposition, hybrid_decomposition_guided, key_determined_variables,
        HybridDecomposition,
    };
    pub use crate::pipeline::{
        count_via_sharp_decomposition, count_with_decomposition, count_with_decomposition_kernel,
    };
    pub use crate::planner::{
        count_auto, count_explain, count_prepared, count_prepared_resilient, prepare_plan,
        prepare_plan_budgeted, Plan, PreparedPlan, WidthReport,
    };
    pub use crate::ps::{count_pichler_skritek, degree_bound};
    pub use crate::sharp::{
        sharp_decomposition_wrt_views, sharp_hypertree_decomposition, sharp_hypertree_width,
        SharpDecomposition,
    };
    pub use crate::ucq::{count_union, UnionQuery};
    pub use crate::views::{count_with_view_set, ViewSet};
    pub use crate::width_search::WidthSearch;
    pub use cqcount_relational::JoinKernel;
}

pub use prelude::*;
