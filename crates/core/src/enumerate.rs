//! Answer enumeration with polynomial delay (Section 1.1's companion
//! problem, \[43\]).
//!
//! The same structure that makes counting tractable makes *enumeration of
//! the projected answers* tractable: after the Theorem 3.7 pipeline
//! (materialize bag views, reduce to global consistency, project onto the
//! free variables) the projected instance is acyclic and globally
//! consistent, so a pre-order walk of the decomposition tree emits each
//! answer with polynomial delay — every partial choice is guaranteed to
//! extend, so no backtracking dead-ends occur.

use crate::sharp::{sharp_hypertree_decomposition, SharpDecomposition};
use cqcount_query::{ConjunctiveQuery, Var};
use cqcount_relational::consistency::full_reduce;
use cqcount_relational::{Bindings, Database, FxHashMap, Tuple, Value};
use std::collections::BTreeMap;

/// Enumerates the distinct answers `π_free(Q)(Q^D)` with polynomial delay,
/// calling `visit` for each; stop early by returning `false`. Requires a
/// `#`-hypertree decomposition of width ≤ `max_k`; returns `false` if none
/// exists (and visits nothing), `true` otherwise.
pub fn for_each_answer<F>(q: &ConjunctiveQuery, db: &Database, max_k: usize, visit: F) -> bool
where
    F: FnMut(&BTreeMap<Var, Value>) -> bool,
{
    let Some(sd) = (1..=max_k).find_map(|k| sharp_hypertree_decomposition(q, k)) else {
        return false;
    };
    for_each_answer_with(q, db, &sd, visit);
    true
}

/// Like [`for_each_answer`] with a precomputed decomposition (amortize the
/// structural search over many databases).
pub fn for_each_answer_with<F>(
    q: &ConjunctiveQuery,
    db: &Database,
    sd: &SharpDecomposition,
    mut visit: F,
) where
    F: FnMut(&BTreeMap<Var, Value>) -> bool,
{
    let (complete, mut views) = crate::ps::completed_views(&sd.qprime, db, &sd.hypertree);
    full_reduce(&mut views, &complete.parent, &complete.order);
    if views.iter().any(Bindings::is_empty) {
        return;
    }
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    let projected: Vec<Bindings> = views.iter().map(|v| v.project(&free_cols)).collect();

    // Pre-order over the tree (roots in sequence = product of components).
    let mut pre_order = Vec::with_capacity(projected.len());
    let mut stack: Vec<usize> = complete.roots.iter().rev().copied().collect();
    while let Some(v) = stack.pop() {
        pre_order.push(v);
        for &c in complete.children[v].iter().rev() {
            stack.push(c);
        }
    }

    // Per-vertex index: rows grouped by the projection onto the columns
    // shared with the parent. By the join-tree property those are exactly
    // the columns already assigned when the pre-order reaches the vertex.
    struct VertexPlan {
        /// positions (in this vertex's column list) of parent-shared cols
        key_positions: Vec<usize>,
        /// row groups by key
        index: FxHashMap<Tuple, Vec<Tuple>>,
        /// this vertex's columns
        cols: Vec<u32>,
    }
    let plans: Vec<VertexPlan> = (0..projected.len())
        .map(|v| {
            let cols: Vec<u32> = projected[v].cols().to_vec();
            let parent_cols: Vec<u32> = match complete.parent[v] {
                Some(p) => projected[p].cols().to_vec(),
                None => Vec::new(),
            };
            let key_positions: Vec<usize> = (0..cols.len())
                .filter(|&i| parent_cols.contains(&cols[i]))
                .collect();
            let mut index: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
            for row in projected[v].rows() {
                let key: Tuple = key_positions.iter().map(|&p| row[p]).collect();
                index.entry(key).or_default().push(row.clone());
            }
            VertexPlan {
                key_positions,
                index,
                cols,
            }
        })
        .collect();

    // DFS with an explicit assignment col -> value.
    let var_of: BTreeMap<u32, Var> = q.free().into_iter().map(|v| (v.node(), v)).collect();
    let mut assignment: FxHashMap<u32, Value> = FxHashMap::default();

    fn rec(
        depth: usize,
        pre_order: &[usize],
        plans: &[VertexPlan],
        assignment: &mut FxHashMap<u32, Value>,
        var_of: &BTreeMap<u32, Var>,
        visit: &mut dyn FnMut(&BTreeMap<Var, Value>) -> bool,
    ) -> bool {
        let Some(&v) = pre_order.get(depth) else {
            let answer: BTreeMap<Var, Value> = var_of
                .iter()
                .map(|(&col, &var)| (var, assignment[&col]))
                .collect();
            return visit(&answer);
        };
        let plan = &plans[v];
        let key: Tuple = plan
            .key_positions
            .iter()
            .map(|&p| assignment[&plan.cols[p]])
            .collect();
        let Some(rows) = plan.index.get(&key) else {
            // Cannot happen after global consistency; defensive.
            return true;
        };
        for row in rows {
            let mut added = Vec::new();
            for (i, &col) in plan.cols.iter().enumerate() {
                if let std::collections::hash_map::Entry::Vacant(e) = assignment.entry(col) {
                    e.insert(row[i]);
                    added.push(col);
                }
            }
            let keep_going = rec(depth + 1, pre_order, plans, assignment, var_of, visit);
            for col in added {
                assignment.remove(&col);
            }
            if !keep_going {
                return false;
            }
        }
        true
    }

    rec(0, &pre_order, &plans, &mut assignment, &var_of, &mut visit);
}

/// Materializes all answers (ordered by the enumeration).
pub fn enumerate_answers(
    q: &ConjunctiveQuery,
    db: &Database,
    max_k: usize,
) -> Option<Vec<BTreeMap<Var, Value>>> {
    let mut out = Vec::new();
    let ok = for_each_answer(q, db, max_k, |a| {
        out.push(a.clone());
        true
    });
    ok.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_arith::Natural;
    use cqcount_query::parse_program;
    use std::collections::BTreeSet;

    fn brute_answers(q: &ConjunctiveQuery, db: &Database) -> BTreeSet<Vec<Value>> {
        let free: Vec<Var> = q.free().into_iter().collect();
        let mut out = BTreeSet::new();
        cqcount_query::hom::for_each_homomorphism_to_db(q, db, |h| {
            out.insert(free.iter().map(|v| h[v]).collect());
            true
        });
        out
    }

    fn check(src: &str) {
        let (q, db) = parse_program(src).unwrap();
        let q = q.unwrap();
        let enumerated = enumerate_answers(&q, &db, q.atoms().len().max(1)).unwrap();
        let free: Vec<Var> = q.free().into_iter().collect();
        let as_set: BTreeSet<Vec<Value>> = enumerated
            .iter()
            .map(|a| free.iter().map(|v| a[v]).collect())
            .collect();
        assert_eq!(as_set, brute_answers(&q, &db), "answer sets equal");
        assert_eq!(
            Natural::from(enumerated.len()),
            count_brute_force(&q, &db),
            "no duplicates emitted"
        );
    }

    #[test]
    fn enumerates_with_projection() {
        check(
            "r(a, x). r(a, y). r(b, z). s(x, 1). s(y, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
    }

    #[test]
    fn enumerates_q0() {
        check(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
    }

    #[test]
    fn enumerates_disconnected_product() {
        check(
            "r(a). r(b). s(x). s(y). s(z).
             ans(X, Y) :- r(X), s(Y).",
        );
    }

    #[test]
    fn empty_answers() {
        check("r(a, b). ans(X) :- r(X, Y), s(Y).");
    }

    #[test]
    fn boolean_query_emits_single_empty_answer() {
        let (q, db) = parse_program("r(a, b). ans() :- r(X, Y).").unwrap();
        let q = q.unwrap();
        let answers = enumerate_answers(&q, &db, 2).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].is_empty());
    }

    #[test]
    fn early_termination() {
        let (q, db) = parse_program(
            "r(a). r(b). r(c). r(d).
             ans(X) :- r(X).",
        )
        .unwrap();
        let q = q.unwrap();
        let mut seen = 0;
        for_each_answer(&q, &db, 2, |_| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn decomposition_reuse_across_databases() {
        let (q, _) = parse_program("ans(X) :- r(X, Y), s(Y, Z).").unwrap();
        let q = q.unwrap();
        let sd = crate::sharp::sharp_hypertree_decomposition(&q, 2).unwrap();
        for facts in [
            "r(a, x). s(x, 1).",
            "r(a, x). r(b, y). s(y, 1).",
            "r(a, x).",
        ] {
            let db = cqcount_query::parse_database(facts).unwrap();
            let mut n = 0u64;
            for_each_answer_with(&q, &db, &sd, |_| {
                n += 1;
                true
            });
            assert_eq!(Natural::from(n), count_brute_force(&q, &db), "{facts}");
        }
    }
}
