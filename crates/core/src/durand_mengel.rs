//! The Durand–Mengel quantified-star-size method (Appendix A,
//! Proposition A.1), implemented through the Theorem A.3 construction:
//! a width-`k` GHD of `H_Q` plus star size `ℓ` yields a width-`k·ℓ`
//! `#`-hypertree decomposition of `Q` *without taking cores* — which is
//! exactly what separates it from the paper's notion (Example A.2).

use crate::pipeline::count_with_decomposition;
use crate::sharp::{atom_nodesets, sharp_cover};
use cqcount_arith::Natural;
use cqcount_decomp::{ghw_exact, Hypertree};
use cqcount_query::{quantified_star_size, ConjunctiveQuery};
use cqcount_relational::Database;

/// The width the Durand–Mengel approach needs for `q`: the smallest `w`
/// such that the *uncored* cover hypergraph `H_Q ∪ FH(Q, free(Q))` has a
/// width-`w` GHD over `q`'s atoms. By Theorem A.3, `w ≤ ghw(Q) ·
/// starsize(Q)`; unbounded star size families (Example A.2) make it grow
/// even when the `#`-hypertree width stays 1. Returns the width and a
/// witness, searching up to `max_k`.
pub fn durand_mengel_decomposition(
    q: &ConjunctiveQuery,
    max_k: usize,
) -> Option<(usize, Hypertree)> {
    let (cover, _) = sharp_cover(q, &q.free_nodes());
    let resources = atom_nodesets(q);
    ghw_exact(&cover, &resources, max_k)
}

/// The width reached by the star-size method (see
/// [`durand_mengel_decomposition`]), alongside the star size itself.
pub fn durand_mengel_width(q: &ConjunctiveQuery, max_k: usize) -> Option<(usize, usize)> {
    let star = quantified_star_size(q);
    durand_mengel_decomposition(q, max_k).map(|(w, _)| (w, star))
}

/// Proposition A.1: counts via the star-size method — the Theorem 3.7
/// pipeline over the uncored decomposition. Correct whenever the
/// decomposition exists; the width (and hence the cost) is governed by
/// `ghw · starsize` instead of the `#`-hypertree width.
pub fn count_durand_mengel(q: &ConjunctiveQuery, db: &Database, max_k: usize) -> Option<Natural> {
    let (_, ht) = durand_mengel_decomposition(q, max_k)?;
    Some(count_with_decomposition(q, db, &ht))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_query::parse_program;

    fn chain_query(n: usize) -> String {
        let mut src = String::from("ans(");
        src.push_str(
            &(1..=n)
                .map(|i| format!("X{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(") :- ");
        let mut atoms = Vec::new();
        for i in 1..=n {
            atoms.push(format!("r(X{i}, Y{i})"));
        }
        for i in 1..n {
            atoms.push(format!("r(X{i}, X{})", i + 1));
            atoms.push(format!("r(Y{i}, Y{})", i + 1));
        }
        src.push_str(&atoms.join(", "));
        src.push('.');
        src
    }

    #[test]
    fn chain_widths_grow_without_coring() {
        // Example A.2: #-htw is 1 (after coring) but the DM width grows
        // with ⌈n/2⌉ since the frontier of Y1 spans all the X's.
        for n in [2usize, 4] {
            let (q, _) = parse_program(&format!("{}\n", chain_query(n))).unwrap();
            let q = q.unwrap();
            let (w, star) = durand_mengel_width(&q, 8).unwrap();
            assert_eq!(star, n.div_ceil(2), "star size at n = {n}");
            assert!(
                w >= star,
                "DM width {w} must be at least the star size {star}"
            );
            assert_eq!(
                crate::sharp::sharp_hypertree_width(&q, 2),
                Some(1),
                "#-htw stays 1"
            );
        }
    }

    #[test]
    fn dm_counting_matches_brute_force() {
        let (q, db) = parse_program(&format!(
            "r(a, b). r(b, c). r(c, a). r(a, a).\n{}",
            chain_query(3)
        ))
        .unwrap();
        let q = q.unwrap();
        let n = count_durand_mengel(&q, &db, 8).unwrap();
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn dm_on_guarded_star() {
        let (q, db) = parse_program(
            "r(y, a). r(y, b). r(z, b). g(a, b). g(b, b).
             ans(X1, X2) :- r(Y, X1), r(Y, X2), g(X1, X2).",
        )
        .unwrap();
        let q = q.unwrap();
        let n = count_durand_mengel(&q, &db, 4).unwrap();
        assert_eq!(n, count_brute_force(&q, &db));
    }
}
