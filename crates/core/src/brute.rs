//! Baseline counting by enumeration — the paper's "straightforward
//! approach" (Section 1.1), kept as the always-correct oracle every other
//! algorithm is validated against.

use crate::budget::Budget;
use crate::error::PlanError;
use cqcount_arith::Natural;
use cqcount_query::canonical::atom_bindings;
use cqcount_query::hom::for_each_homomorphism_to_db;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::{Bindings, Database, FxHashSet, Value};

/// Counts `|π_free(Q)(Q^D)|` by backtracking over all homomorphisms and
/// collecting the distinct projections onto the free variables. Exponential
/// in general; exact always.
pub fn count_brute_force(q: &ConjunctiveQuery, db: &Database) -> Natural {
    count_brute_force_budgeted(q, db, &Budget::unlimited()).expect("unlimited budget never trips")
}

/// How many homomorphisms the brute-force loop visits between budget
/// checks. Small enough that cancellation latency stays in the
/// microseconds, large enough that `Instant::now` never shows up in a
/// profile.
const BUDGET_STRIDE: u32 = 256;

/// [`count_brute_force`] with a cooperative wall-clock budget: the
/// enumeration loop checks the budget every [`BUDGET_STRIDE`]
/// homomorphisms and aborts with [`PlanError::BudgetExceeded`] instead of
/// running to completion. This is the serving layer's defense against
/// adversarially expensive requests.
pub fn count_brute_force_budgeted(
    q: &ConjunctiveQuery,
    db: &Database,
    budget: &Budget,
) -> Result<Natural, PlanError> {
    budget.check()?;
    let free: Vec<cqcount_query::Var> = q.free().into_iter().collect();
    let mut seen: FxHashSet<Box<[Value]>> = FxHashSet::default();
    let mut boolean_hit = false;
    let mut tripped = false;
    let mut since_check: u32 = 0;
    for_each_homomorphism_to_db(q, db, |h| {
        since_check += 1;
        if since_check >= BUDGET_STRIDE {
            since_check = 0;
            if budget.is_exceeded() {
                tripped = true;
                return false;
            }
        }
        if free.is_empty() {
            boolean_hit = true;
            return false; // any single solution settles a Boolean query
        }
        let key: Box<[Value]> = free.iter().map(|v| h[v]).collect();
        seen.insert(key);
        true
    });
    if tripped {
        return Err(PlanError::BudgetExceeded {
            elapsed_ms: budget.elapsed_ms().max(1),
        });
    }
    Ok(if free.is_empty() {
        if boolean_hit {
            Natural::ONE
        } else {
            Natural::ZERO
        }
    } else {
        Natural::from(seen.len())
    })
}

/// Counts by materializing the full join of all atoms and projecting — the
/// textbook evaluation with exponential intermediate results. A second,
/// structurally different baseline used to cross-check the first.
pub fn count_via_full_join(q: &ConjunctiveQuery, db: &Database) -> Natural {
    let mut acc = Bindings::unit();
    // Greedy connected order: join next the atom sharing most columns.
    let mut remaining: Vec<Bindings> = q.atoms().iter().map(|a| atom_bindings(a, db)).collect();
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.cols().iter().filter(|c| acc.cols().contains(c)).count())
            .expect("nonempty");
        let next = remaining.swap_remove(idx);
        acc = acc.join(&next);
        if acc.is_empty() {
            return Natural::ZERO;
        }
    }
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    Natural::from(acc.project(&free_cols).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_program;

    fn setup(src: &str) -> (ConjunctiveQuery, Database) {
        let (q, db) = parse_program(src).unwrap();
        (q.unwrap(), db)
    }

    #[test]
    fn simple_projection_count() {
        let (q, db) = setup(
            "r(a, x). r(a, y). r(b, z).
             ans(X) :- r(X, Y).",
        );
        // X ∈ {a, b}: 2 distinct answers from 3 homomorphisms.
        assert_eq!(count_brute_force(&q, &db), 2u64.into());
        assert_eq!(count_via_full_join(&q, &db), 2u64.into());
    }

    #[test]
    fn boolean_query() {
        let (q, db) = setup("r(a, b). ans() :- r(X, Y).");
        assert_eq!(count_brute_force(&q, &db), 1u64.into());
        assert_eq!(count_via_full_join(&q, &db), 1u64.into());
        let (q2, db2) = setup("s(a). ans() :- r(X, Y).");
        assert_eq!(count_brute_force(&q2, &db2), 0u64.into());
        assert_eq!(count_via_full_join(&q2, &db2), 0u64.into());
    }

    #[test]
    fn all_vars_free_counts_homomorphisms() {
        let (q, db) = setup(
            "e(a, b). e(b, c). e(a, c).
             ans(X, Y, Z) :- e(X, Y), e(Y, Z).",
        );
        // paths of length 2: a->b->c only.
        assert_eq!(count_brute_force(&q, &db), 1u64.into());
        assert_eq!(count_via_full_join(&q, &db), 1u64.into());
    }

    #[test]
    fn cartesian_blowup_counted_without_duplicates() {
        let (q, db) = setup(
            "r(a). r(b). s(x). s(y). s(z).
             ans(X) :- r(X), s(Y).",
        );
        assert_eq!(count_brute_force(&q, &db), 2u64.into());
        assert_eq!(count_via_full_join(&q, &db), 2u64.into());
    }

    #[test]
    fn disconnected_free_components() {
        let (q, db) = setup(
            "r(a). r(b). s(x). s(y). s(z).
             ans(X, Y) :- r(X), s(Y).",
        );
        assert_eq!(count_brute_force(&q, &db), 6u64.into());
        assert_eq!(count_via_full_join(&q, &db), 6u64.into());
    }

    #[test]
    fn empty_answer_set() {
        let (q, db) = setup("r(a, a). ans(X) :- r(X, Y), s(Y).");
        assert_eq!(count_brute_force(&q, &db), 0u64.into());
        assert_eq!(count_via_full_join(&q, &db), 0u64.into());
    }

    #[test]
    fn q0_example_1_1_small_instance() {
        let (q, db) = setup(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
        let n = count_brute_force(&q, &db);
        assert_eq!(count_via_full_join(&q, &db), n);
        // (m1,w1,p1), (m2,w1,p1), (m1,w1,p2), (m2,w1,p2), (m1,w2,p1)
        assert_eq!(n, 5u64.into());
    }
}
