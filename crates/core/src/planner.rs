//! Width analysis and automatic algorithm selection — the front door a
//! downstream user calls.

use crate::brute::{count_brute_force, count_brute_force_budgeted};
use crate::budget::Budget;
use crate::error::PlanError;
use crate::hybrid::count_hybrid;
use crate::pipeline::{count_via_sharp_decomposition, count_with_decomposition_kernel};
use crate::sharp::SharpDecomposition;
use crate::width_search::WidthSearch;

use cqcount_arith::Natural;
use cqcount_query::{quantified_star_size, ConjunctiveQuery};
use cqcount_relational::{Database, JoinKernel};

/// Structural measurements of a query, for explainability and planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidthReport {
    /// Is the query hypergraph α-acyclic?
    pub acyclic: bool,
    /// Generalized hypertree width of `H_Q` (searched up to the cap).
    pub ghw: Option<usize>,
    /// `#`-hypertree width (Definition 1.2), searched up to the cap.
    pub sharp_width: Option<usize>,
    /// Quantified star size (Appendix A).
    pub star_size: usize,
    /// Number of atoms / variables / free variables.
    pub atoms: usize,
    /// Number of variables.
    pub vars: usize,
    /// Number of free variables.
    pub free: usize,
    /// The cap used for the width searches.
    pub cap: usize,
}

impl WidthReport {
    /// Analyzes `q`, searching widths up to `cap`.
    pub fn analyze(q: &ConjunctiveQuery, cap: usize) -> WidthReport {
        let h = q.hypergraph();
        let resources = crate::sharp::atom_nodesets(q);
        // Both width sweeps run incrementally: ghw_exact reuses one
        // GhwSearch across k and WidthSearch shares the core/cover setup.
        let ghw = cqcount_decomp::ghw_exact(&h, &resources, cap).map(|(w, _)| w);
        let sharp_width = WidthSearch::new(q).find_up_to(cap).map(|(k, _)| k);
        WidthReport {
            acyclic: cqcount_hypergraph::is_acyclic(&h),
            ghw,
            sharp_width,
            star_size: quantified_star_size(q),
            atoms: q.atoms().len(),
            vars: q.vars_in_atoms().len(),
            free: q.free().len(),
            cap,
        }
    }
}

/// The algorithm the planner chose, with the evidence that justified it —
/// returned by [`count_explain`] so callers (and the CLI) can show *why*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Bounded `#`-hypertree width: Theorem 1.3's polynomial pipeline.
    SharpPipeline {
        /// The witnessing `#`-hypertree width.
        width: usize,
    },
    /// A hybrid `#ᵦ`-hypertree decomposition (Theorem 6.6).
    Hybrid {
        /// Structural width of the `Q[S̄]` decomposition.
        width: usize,
        /// The achieved degree bound.
        bound: usize,
        /// Names of the promoted (pseudo-free) variables.
        promoted: Vec<String>,
    },
    /// No structural handle within the caps: enumeration.
    BruteForce {
        /// Human-readable reason.
        reason: String,
    },
}

/// Counts `|π_free(Q)(Q^D)|` with the cheapest applicable algorithm:
///
/// 1. bounded `#`-hypertree width (cap 3) → the Theorem 1.3 pipeline;
/// 2. otherwise, a hybrid `#ᵦ`-decomposition with a small degree bound
///    (Theorem 6.6) when one exists;
/// 3. otherwise, brute-force enumeration.
pub fn count_auto(q: &ConjunctiveQuery, db: &Database) -> Natural {
    count_explain(q, db).0
}

/// Default structural width cap for the planner's decomposition searches.
pub const WIDTH_CAP: usize = 3;
/// Default degree cap for the hybrid (`#ᵦ`) search.
pub const DEGREE_CAP: usize = 8;
/// Above this many existential variables the hybrid subset search is
/// skipped (it enumerates subsets of the existential variables).
pub const HYBRID_EXISTENTIAL_LIMIT: usize = 16;

/// Like [`count_auto`], also returning the [`Plan`] that produced the
/// count.
pub fn count_explain(q: &ConjunctiveQuery, db: &Database) -> (Natural, Plan) {
    if let Some((n, sd)) = count_via_sharp_decomposition(q, db, WIDTH_CAP) {
        return (n, Plan::SharpPipeline { width: sd.width });
    }
    if q.existential().len() < HYBRID_EXISTENTIAL_LIMIT {
        if let Some((n, hd)) = count_hybrid(q, db, WIDTH_CAP, DEGREE_CAP) {
            let promoted = hd
                .sbar
                .iter()
                .filter(|v| !q.free().contains(v))
                .map(|v| q.var_name(*v).to_owned())
                .collect();
            return (
                n,
                Plan::Hybrid {
                    width: hd.sharp.width,
                    bound: hd.bound,
                    promoted,
                },
            );
        }
        (
            count_brute_force(q, db),
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {WIDTH_CAP} and no hybrid decomposition \
                     with degree ≤ {DEGREE_CAP}"
                ),
            },
        )
    } else {
        (
            count_brute_force(q, db),
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {WIDTH_CAP}; too many existential \
                     variables for the hybrid search"
                ),
            },
        )
    }
}

/// The data-independent half of a plan: everything the planner can decide
/// from the query alone. Produced by [`prepare_plan`], consumed by
/// [`count_prepared`], and cached by the serving layer keyed on the
/// query's canonical fingerprint — a prepared plan stays valid across
/// data reloads because it never looks at the database.
#[derive(Clone, Debug)]
pub struct PreparedPlan {
    /// A `#`-hypertree decomposition within `width_cap`, if one exists.
    /// `None` means the (expensive) search already failed up to the cap,
    /// so [`count_prepared`] goes straight to the hybrid/brute fallbacks.
    pub sharp: Option<SharpDecomposition>,
    /// The width cap the decomposition search ran up to.
    pub width_cap: usize,
    /// The degree cap for the data-dependent hybrid fallback.
    pub degree_cap: usize,
    /// True when the decomposition search was cut short by its budget
    /// ([`prepare_plan_budgeted`]): `sharp == None` then means "not found
    /// *so far*", not "proven absent up to the cap". Degraded plans should
    /// not be cached.
    pub degraded: bool,
    /// The per-bag join kernel for the sharp pipeline. `Auto` (the
    /// default) runs leapfrog on cyclic bags and binary hash joins on
    /// acyclic ones; `CQCOUNT_JOIN_KERNEL` pins it at plan time.
    pub kernel: JoinKernel,
}

impl PreparedPlan {
    /// A short human-readable label for logs and server stats.
    pub fn describe(&self) -> String {
        match &self.sharp {
            Some(sd) => format!("sharp-pipeline(width={})", sd.width),
            None if self.degraded => format!("degraded(search-cut@{})", self.width_cap),
            None => format!("fallback(width>{})", self.width_cap),
        }
    }
}

/// Runs the query-only planning work (core computation + `#`-hypertree
/// decomposition search up to `width_cap`) once, so repeated counts of the
/// same query — the serving layer's hot path — skip it.
pub fn prepare_plan(q: &ConjunctiveQuery, width_cap: usize) -> PreparedPlan {
    prepare_plan_budgeted(q, width_cap, &Budget::unlimited())
}

/// [`prepare_plan`] under a cooperative [`Budget`]: the width search is
/// checked between candidate widths, and a tripped budget stops it early
/// with `degraded: true` instead of stalling — the serving layer then
/// degrades to the brute/acyclic fallback rather than holding a worker
/// hostage on an adversarial query.
pub fn prepare_plan_budgeted(
    q: &ConjunctiveQuery,
    width_cap: usize,
    budget: &Budget,
) -> PreparedPlan {
    let sp = cqcount_obs::trace::span("plan.decompose");
    let mut degraded = false;
    let mut sharp = None;
    // The WidthSearch is built lazily so a budget tripped before planning
    // even starts degrades without paying for the core computation.
    let mut search: Option<WidthSearch> = None;
    for k in 1..=width_cap {
        if budget.is_exceeded() {
            degraded = true;
            break;
        }
        if sp.is_armed() {
            sp.add("widths_tried", 1);
        }
        let search = search.get_or_insert_with(|| WidthSearch::new(q));
        if let Some(sd) = search.decomposition_at(k) {
            sharp = Some(sd);
            break;
        }
    }
    if sp.is_armed() {
        match &sharp {
            Some(sd) => {
                sp.add("width", sd.width as u64);
                sp.tag("outcome", "found");
            }
            None => sp.tag("outcome", if degraded { "cut-short" } else { "absent" }),
        }
    }
    PreparedPlan {
        sharp,
        width_cap,
        degree_cap: DEGREE_CAP,
        degraded,
        kernel: JoinKernel::from_env(),
    }
}

/// Counts `q` over `db` like [`count_prepared`], but **degrades instead of
/// stalling** when planning already blew its budget: on a degraded
/// [`PreparedPlan`] the (even costlier) hybrid search is skipped and the
/// count falls through the degradation ladder — the quantifier-free
/// acyclic fast path when the query is full and acyclic, else budgeted
/// brute force. Returns `(count, plan, degraded)`; `degraded` is true
/// exactly when a ladder rung (not the structurally chosen algorithm)
/// produced the count. The count itself is always exact.
pub fn count_prepared_resilient(
    q: &ConjunctiveQuery,
    db: &Database,
    plan: &PreparedPlan,
    budget: &Budget,
) -> Result<(Natural, Plan, bool), PlanError> {
    budget.check()?;
    if let Some(sd) = &plan.sharp {
        let sp = cqcount_obs::trace::span("count.sharp");
        if sp.is_armed() {
            sp.add("width", sd.width as u64);
        }
        let n = count_with_decomposition_kernel(&sd.qprime, db, &sd.hypertree, plan.kernel);
        budget.check()?;
        return Ok((n, Plan::SharpPipeline { width: sd.width }, false));
    }
    // On a degraded plan the width search was cut short; the hybrid
    // search is strictly more work, so go straight down the ladder.
    if !plan.degraded && q.existential().len() < HYBRID_EXISTENTIAL_LIMIT {
        let sp = cqcount_obs::trace::span("count.hybrid");
        if let Some((n, hd)) = count_hybrid(q, db, plan.width_cap, plan.degree_cap) {
            budget.check()?;
            if sp.is_armed() {
                sp.add("width", hd.sharp.width as u64);
                sp.add("bound", hd.bound as u64);
            }
            let promoted = hd
                .sbar
                .iter()
                .filter(|v| !q.free().contains(v))
                .map(|v| q.var_name(*v).to_owned())
                .collect();
            return Ok((
                n,
                Plan::Hybrid {
                    width: hd.sharp.width,
                    bound: hd.bound,
                    promoted,
                },
                false,
            ));
        }
    }
    // Ladder rung 1: a full (quantifier-free) acyclic query counts in
    // polynomial time with the Yannakakis-style DP, no decomposition
    // search needed. (Only a degradation rung — on a non-degraded plan a
    // missing sharp decomposition means the planner *decided* on brute.)
    if plan.degraded && q.existential().is_empty() {
        let sp = cqcount_obs::trace::span("count.acyclic");
        if sp.is_armed() {
            sp.add("atoms", q.atoms().len() as u64);
        }
        let views: Vec<cqcount_relational::Bindings> = q
            .atoms()
            .iter()
            .map(|a| cqcount_query::canonical::atom_bindings(a, db))
            .collect();
        if let Some(n) = crate::acyclic::count_acyclic_full(&views) {
            budget.check()?;
            return Ok((
                n,
                Plan::BruteForce {
                    reason: "degraded: planning cut short; acyclic full-query fast path".into(),
                },
                true,
            ));
        }
    }
    // Ladder rung 2: budgeted enumeration.
    let n = {
        let _sp = cqcount_obs::trace::span("count.brute");
        count_brute_force_budgeted(q, db, budget)?
    };
    let reason = if plan.degraded {
        format!(
            "degraded: decomposition search cut short by its budget (cap {})",
            plan.width_cap
        )
    } else {
        format!(
            "#-hypertree width > {} and no hybrid decomposition with degree ≤ {}",
            plan.width_cap, plan.degree_cap
        )
    };
    Ok((n, Plan::BruteForce { reason }, plan.degraded))
}

/// Counts `q` over `db` reusing the decomposition from a [`PreparedPlan`],
/// under a cooperative [`Budget`]. Mirrors [`count_explain`]'s algorithm
/// order (sharp pipeline → hybrid → brute force) but never panics: budget
/// trips surface as [`PlanError::BudgetExceeded`].
pub fn count_prepared(
    q: &ConjunctiveQuery,
    db: &Database,
    plan: &PreparedPlan,
    budget: &Budget,
) -> Result<(Natural, Plan), PlanError> {
    budget.check()?;
    if let Some(sd) = &plan.sharp {
        let n = count_with_decomposition_kernel(&sd.qprime, db, &sd.hypertree, plan.kernel);
        budget.check()?;
        return Ok((n, Plan::SharpPipeline { width: sd.width }));
    }
    if q.existential().len() < HYBRID_EXISTENTIAL_LIMIT {
        if let Some((n, hd)) = count_hybrid(q, db, plan.width_cap, plan.degree_cap) {
            budget.check()?;
            let promoted = hd
                .sbar
                .iter()
                .filter(|v| !q.free().contains(v))
                .map(|v| q.var_name(*v).to_owned())
                .collect();
            return Ok((
                n,
                Plan::Hybrid {
                    width: hd.sharp.width,
                    bound: hd.bound,
                    promoted,
                },
            ));
        }
        let n = count_brute_force_budgeted(q, db, budget)?;
        Ok((
            n,
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {} and no hybrid decomposition \
                     with degree ≤ {}",
                    plan.width_cap, plan.degree_cap
                ),
            },
        ))
    } else {
        let n = count_brute_force_budgeted(q, db, budget)?;
        Ok((
            n,
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {}; too many existential \
                     variables for the hybrid search",
                    plan.width_cap
                ),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_program;

    #[test]
    fn report_on_q0() {
        let (q, _) = parse_program(
            "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        )
        .unwrap();
        let r = WidthReport::analyze(&q.unwrap(), 3);
        assert!(!r.acyclic);
        assert_eq!(r.ghw, Some(2));
        assert_eq!(r.sharp_width, Some(2));
        assert_eq!(r.atoms, 9);
        assert_eq!(r.vars, 9);
        assert_eq!(r.free, 3);
    }

    #[test]
    fn auto_agrees_with_brute_force() {
        let cases = [
            "r(a, b). r(b, c). ans(X) :- r(X, Y).",
            "e(a, b). e(b, c). e(c, a). ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X).",
            "r(y1, a). r(y1, b). r(y2, b). ans(X1, X2) :- r(Y, X1), r(Y, X2).",
        ];
        for src in cases {
            let (q, db) = parse_program(src).unwrap();
            let q = q.unwrap();
            assert_eq!(count_auto(&q, &db), count_brute_force(&q, &db), "{src}");
        }
    }

    #[test]
    fn explain_picks_the_pipeline_for_bounded_width() {
        let (q, db) = parse_program("r(a, b). r(b, c). ans(X) :- r(X, Y).").unwrap();
        let (n, plan) = count_explain(&q.unwrap(), &db);
        assert_eq!(n, 2u64.into());
        assert_eq!(plan, Plan::SharpPipeline { width: 1 });
    }

    #[test]
    fn explain_reports_hybrid_promotion() {
        use cqcount_workloads::paper::{hybrid_database, hybrid_query};
        // h = 3: #-htw = 4 > cap 3, hybrid width 2 with promoted Y's.
        let q = hybrid_query(3);
        let db = hybrid_database(3);
        let (n, plan) = count_explain(&q, &db);
        assert_eq!(n, 8u64.into());
        assert!(
            matches!(plan, Plan::Hybrid { .. }),
            "expected hybrid plan, got {plan:?}"
        );
        if let Plan::Hybrid {
            width,
            bound,
            promoted,
        } = plan
        {
            // the search minimizes the degree bound, not the width:
            // any width ≤ cap with bound 1 is a valid outcome
            assert!(width <= 3, "width {width}");
            assert_eq!(bound, 1);
            assert!(!promoted.is_empty());
        }
    }

    #[test]
    fn prepared_plan_agrees_with_count_explain() {
        let cases = [
            "r(a, b). r(b, c). ans(X) :- r(X, Y).",
            "e(a, b). e(b, c). e(c, a). ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X).",
            "r(y1, a). r(y1, b). r(y2, b). ans(X1, X2) :- r(Y, X1), r(Y, X2).",
        ];
        for src in cases {
            let (q, db) = parse_program(src).unwrap();
            let q = q.unwrap();
            let plan = prepare_plan(&q, WIDTH_CAP);
            let (n, chosen) =
                count_prepared(&q, &db, &plan, &Budget::unlimited()).expect("unlimited");
            let (expected_n, expected_plan) = count_explain(&q, &db);
            assert_eq!(n, expected_n, "{src}");
            assert_eq!(chosen, expected_plan, "{src}");
        }
    }

    #[test]
    fn prepared_plan_hybrid_fallback_agrees() {
        use cqcount_workloads::paper::{hybrid_database, hybrid_query};
        let q = hybrid_query(3);
        let db = hybrid_database(3);
        let plan = prepare_plan(&q, WIDTH_CAP);
        assert!(plan.sharp.is_none(), "width 4 query must not fit cap 3");
        assert!(plan.describe().starts_with("fallback"));
        let (n, chosen) = count_prepared(&q, &db, &plan, &Budget::unlimited()).unwrap();
        assert_eq!(n, 8u64.into());
        assert!(matches!(chosen, Plan::Hybrid { .. }), "got {chosen:?}");
    }

    #[test]
    fn count_prepared_respects_a_tripped_budget() {
        let (q, db) = parse_program("r(a, b). r(b, c). ans(X) :- r(X, Y).").unwrap();
        let q = q.unwrap();
        let plan = prepare_plan(&q, WIDTH_CAP);
        let budget = crate::budget::Budget::with_deadline(std::time::Duration::from_millis(0));
        assert!(matches!(
            count_prepared(&q, &db, &plan, &budget),
            Err(crate::error::PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budgeted_prepare_degrades_instead_of_searching() {
        let (q, _) = parse_program(
            "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        )
        .unwrap();
        let q = q.unwrap();
        let tripped = crate::budget::Budget::with_deadline(std::time::Duration::from_millis(0));
        let plan = prepare_plan_budgeted(&q, WIDTH_CAP, &tripped);
        assert!(plan.degraded, "a tripped budget must cut the search short");
        assert!(plan.sharp.is_none());
        assert!(plan.describe().starts_with("degraded"));
        // The unlimited path is unchanged.
        assert!(!prepare_plan(&q, WIDTH_CAP).degraded);
    }

    #[test]
    fn resilient_count_on_degraded_plan_is_exact_and_flagged() {
        use crate::brute::count_brute_force;
        let cases = [
            // full acyclic: the ladder's Yannakakis rung
            "r(a, b). r(b, c). ans(X, Y) :- r(X, Y).",
            // projection: budgeted brute-force rung
            "r(a, b). r(b, c). ans(X) :- r(X, Y).",
            // cyclic full query: brute rung again
            "e(a, b). e(b, c). e(c, a). ans(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).",
        ];
        for src in cases {
            let (q, db) = parse_program(src).unwrap();
            let q = q.unwrap();
            let tripped = crate::budget::Budget::with_deadline(std::time::Duration::from_millis(0));
            let plan = prepare_plan_budgeted(&q, WIDTH_CAP, &tripped);
            assert!(plan.degraded, "{src}");
            // Fresh budget for the count itself: planning degraded, the
            // count still completes.
            let (n, chosen, degraded) =
                count_prepared_resilient(&q, &db, &plan, &Budget::unlimited()).expect(src);
            assert_eq!(n, count_brute_force(&q, &db), "{src}");
            assert!(degraded, "{src}");
            assert!(matches!(chosen, Plan::BruteForce { .. }), "{src}");
        }
    }

    #[test]
    fn resilient_count_matches_count_prepared_when_not_degraded() {
        use cqcount_workloads::paper::{hybrid_database, hybrid_query};
        let cases = [
            "r(a, b). r(b, c). ans(X) :- r(X, Y).",
            "e(a, b). e(b, c). e(c, a). ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X).",
        ];
        for src in cases {
            let (q, db) = parse_program(src).unwrap();
            let q = q.unwrap();
            let plan = prepare_plan(&q, WIDTH_CAP);
            let (n, chosen, degraded) =
                count_prepared_resilient(&q, &db, &plan, &Budget::unlimited()).unwrap();
            let (en, ep) = count_prepared(&q, &db, &plan, &Budget::unlimited()).unwrap();
            assert_eq!((n, chosen), (en, ep), "{src}");
            assert!(!degraded, "{src}");
        }
        // Hybrid fallback path agrees too.
        let q = hybrid_query(3);
        let db = hybrid_database(3);
        let plan = prepare_plan(&q, WIDTH_CAP);
        let (n, chosen, degraded) =
            count_prepared_resilient(&q, &db, &plan, &Budget::unlimited()).unwrap();
        assert_eq!(n, 8u64.into());
        assert!(matches!(chosen, Plan::Hybrid { .. }));
        assert!(!degraded);
    }

    #[test]
    fn resilient_count_still_errors_when_everything_is_out_of_budget() {
        let (q, db) = parse_program("r(a, b). r(b, c). ans(X) :- r(X, Y).").unwrap();
        let q = q.unwrap();
        let tripped = crate::budget::Budget::with_deadline(std::time::Duration::from_millis(0));
        let plan = prepare_plan_budgeted(&q, WIDTH_CAP, &tripped);
        assert!(matches!(
            count_prepared_resilient(&q, &db, &plan, &tripped),
            Err(crate::error::PlanError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn report_star_size() {
        let (q, _) = parse_program("ans(X1, X2) :- r(Y, X1), r(Y, X2).").unwrap();
        let r = WidthReport::analyze(&q.unwrap(), 3);
        assert!(r.acyclic);
        assert_eq!(r.star_size, 2);
        assert_eq!(r.sharp_width, Some(2)); // frontier {X1,X2} needs 2 atoms
    }
}
