//! Width analysis and automatic algorithm selection — the front door a
//! downstream user calls.

use crate::brute::count_brute_force;
use crate::hybrid::count_hybrid;
use crate::pipeline::count_via_sharp_decomposition;
use crate::sharp::sharp_hypertree_width;

use cqcount_arith::Natural;
use cqcount_query::{quantified_star_size, ConjunctiveQuery};
use cqcount_relational::Database;

/// Structural measurements of a query, for explainability and planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidthReport {
    /// Is the query hypergraph α-acyclic?
    pub acyclic: bool,
    /// Generalized hypertree width of `H_Q` (searched up to the cap).
    pub ghw: Option<usize>,
    /// `#`-hypertree width (Definition 1.2), searched up to the cap.
    pub sharp_width: Option<usize>,
    /// Quantified star size (Appendix A).
    pub star_size: usize,
    /// Number of atoms / variables / free variables.
    pub atoms: usize,
    /// Number of variables.
    pub vars: usize,
    /// Number of free variables.
    pub free: usize,
    /// The cap used for the width searches.
    pub cap: usize,
}

impl WidthReport {
    /// Analyzes `q`, searching widths up to `cap`.
    pub fn analyze(q: &ConjunctiveQuery, cap: usize) -> WidthReport {
        let h = q.hypergraph();
        let resources = crate::sharp::atom_nodesets(q);
        let ghw = cqcount_decomp::ghw_exact(&h, &resources, cap).map(|(w, _)| w);
        WidthReport {
            acyclic: cqcount_hypergraph::is_acyclic(&h),
            ghw,
            sharp_width: sharp_hypertree_width(q, cap),
            star_size: quantified_star_size(q),
            atoms: q.atoms().len(),
            vars: q.vars_in_atoms().len(),
            free: q.free().len(),
            cap,
        }
    }
}

/// The algorithm the planner chose, with the evidence that justified it —
/// returned by [`count_explain`] so callers (and the CLI) can show *why*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Bounded `#`-hypertree width: Theorem 1.3's polynomial pipeline.
    SharpPipeline {
        /// The witnessing `#`-hypertree width.
        width: usize,
    },
    /// A hybrid `#ᵦ`-hypertree decomposition (Theorem 6.6).
    Hybrid {
        /// Structural width of the `Q[S̄]` decomposition.
        width: usize,
        /// The achieved degree bound.
        bound: usize,
        /// Names of the promoted (pseudo-free) variables.
        promoted: Vec<String>,
    },
    /// No structural handle within the caps: enumeration.
    BruteForce {
        /// Human-readable reason.
        reason: String,
    },
}

/// Counts `|π_free(Q)(Q^D)|` with the cheapest applicable algorithm:
///
/// 1. bounded `#`-hypertree width (cap 3) → the Theorem 1.3 pipeline;
/// 2. otherwise, a hybrid `#ᵦ`-decomposition with a small degree bound
///    (Theorem 6.6) when one exists;
/// 3. otherwise, brute-force enumeration.
pub fn count_auto(q: &ConjunctiveQuery, db: &Database) -> Natural {
    count_explain(q, db).0
}

/// Like [`count_auto`], also returning the [`Plan`] that produced the
/// count.
pub fn count_explain(q: &ConjunctiveQuery, db: &Database) -> (Natural, Plan) {
    const WIDTH_CAP: usize = 3;
    const DEGREE_CAP: usize = 8;
    if let Some((n, sd)) = count_via_sharp_decomposition(q, db, WIDTH_CAP) {
        return (n, Plan::SharpPipeline { width: sd.width });
    }
    if q.existential().len() < 16 {
        if let Some((n, hd)) = count_hybrid(q, db, WIDTH_CAP, DEGREE_CAP) {
            let promoted = hd
                .sbar
                .iter()
                .filter(|v| !q.free().contains(v))
                .map(|v| q.var_name(*v).to_owned())
                .collect();
            return (
                n,
                Plan::Hybrid {
                    width: hd.sharp.width,
                    bound: hd.bound,
                    promoted,
                },
            );
        }
        (
            count_brute_force(q, db),
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {WIDTH_CAP} and no hybrid decomposition \
                     with degree ≤ {DEGREE_CAP}"
                ),
            },
        )
    } else {
        (
            count_brute_force(q, db),
            Plan::BruteForce {
                reason: format!(
                    "#-hypertree width > {WIDTH_CAP}; too many existential \
                     variables for the hybrid search"
                ),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_program;

    #[test]
    fn report_on_q0() {
        let (q, _) = parse_program(
            "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        )
        .unwrap();
        let r = WidthReport::analyze(&q.unwrap(), 3);
        assert!(!r.acyclic);
        assert_eq!(r.ghw, Some(2));
        assert_eq!(r.sharp_width, Some(2));
        assert_eq!(r.atoms, 9);
        assert_eq!(r.vars, 9);
        assert_eq!(r.free, 3);
    }

    #[test]
    fn auto_agrees_with_brute_force() {
        let cases = [
            "r(a, b). r(b, c). ans(X) :- r(X, Y).",
            "e(a, b). e(b, c). e(c, a). ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X).",
            "r(y1, a). r(y1, b). r(y2, b). ans(X1, X2) :- r(Y, X1), r(Y, X2).",
        ];
        for src in cases {
            let (q, db) = parse_program(src).unwrap();
            let q = q.unwrap();
            assert_eq!(count_auto(&q, &db), count_brute_force(&q, &db), "{src}");
        }
    }

    #[test]
    fn explain_picks_the_pipeline_for_bounded_width() {
        let (q, db) = parse_program("r(a, b). r(b, c). ans(X) :- r(X, Y).").unwrap();
        let (n, plan) = count_explain(&q.unwrap(), &db);
        assert_eq!(n, 2u64.into());
        assert_eq!(plan, Plan::SharpPipeline { width: 1 });
    }

    #[test]
    fn explain_reports_hybrid_promotion() {
        use cqcount_workloads::paper::{hybrid_database, hybrid_query};
        // h = 3: #-htw = 4 > cap 3, hybrid width 2 with promoted Y's.
        let q = hybrid_query(3);
        let db = hybrid_database(3);
        let (n, plan) = count_explain(&q, &db);
        assert_eq!(n, 8u64.into());
        match plan {
            Plan::Hybrid {
                width,
                bound,
                promoted,
            } => {
                // the search minimizes the degree bound, not the width:
                // any width ≤ cap with bound 1 is a valid outcome
                assert!(width <= 3, "width {width}");
                assert_eq!(bound, 1);
                assert!(!promoted.is_empty());
            }
            other => panic!("expected hybrid plan, got {other:?}"),
        }
    }

    #[test]
    fn report_star_size() {
        let (q, _) = parse_program("ans(X1, X2) :- r(Y, X1), r(Y, X2).").unwrap();
        let r = WidthReport::analyze(&q.unwrap(), 3);
        assert!(r.acyclic);
        assert_eq!(r.star_size, 2);
        assert_eq!(r.sharp_width, Some(2)); // frontier {X1,X2} needs 2 atoms
    }
}
