//! Counting answers to *unions* of conjunctive queries — the extension the
//! paper's follow-up work tackles ([18, 19] in its bibliography): the same
//! answer may satisfy several disjuncts, so overcounting must be avoided.
//!
//! We implement the classical inclusion–exclusion solution: for disjuncts
//! `Q₁ ∪ ... ∪ Q_r` over the *same* output schema,
//! `|⋃ᵢ Aᵢ| = Σ_{∅≠S} (-1)^{|S|+1} |⋂_{i∈S} Aᵢ|`, and each intersection of
//! answer sets is itself the answer set of a conjunctive query: conjoin the
//! disjuncts after renaming their existential variables apart (the output
//! variables are shared positionally). Every intersection is counted with
//! the planner, so bounded `#`-hypertree width of the closure under
//! conjunctions gives polynomial counting — with a `2^r` factor in the
//! (fixed) number of disjuncts.

use crate::planner::count_auto;
use cqcount_arith::{Int, Natural};
use cqcount_query::{ConjunctiveQuery, Term, Var};
use cqcount_relational::Database;

/// A union of conjunctive queries with a shared output schema.
///
/// Each disjunct must have the same number of free variables; the output
/// schema is positional (the i-th free variable of every disjunct is the
/// same output column). Free variables are ordered by their `Var` id within
/// each disjunct, i.e. by first-interning order — use the same naming
/// pattern across disjuncts (the parser interns head variables first, in
/// head order, which does the right thing).
#[derive(Clone, Debug)]
pub struct UnionQuery {
    disjuncts: Vec<ConjunctiveQuery>,
    arity: usize,
}

impl UnionQuery {
    /// Builds a union; panics if the disjuncts disagree on output arity or
    /// if the union is empty.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> UnionQuery {
        assert!(!disjuncts.is_empty(), "empty union");
        let arity = disjuncts[0].free().len();
        assert!(
            disjuncts.iter().all(|q| q.free().len() == arity),
            "disjuncts must share the output arity"
        );
        UnionQuery { disjuncts, arity }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The conjunction of a subset of disjuncts: output variables unified
    /// positionally, existential variables renamed apart.
    pub fn conjoin(&self, subset: &[usize]) -> ConjunctiveQuery {
        assert!(!subset.is_empty());
        let mut out = ConjunctiveQuery::new();
        // Shared output variables O0..O{arity-1}.
        let outs: Vec<Var> = (0..self.arity).map(|i| out.var(&format!("O{i}"))).collect();
        for (si, &qi) in subset.iter().enumerate() {
            let q = &self.disjuncts[qi];
            let free: Vec<Var> = q.free().into_iter().collect();
            let map_var = |v: Var, out: &mut ConjunctiveQuery| -> Var {
                if let Some(pos) = free.iter().position(|&f| f == v) {
                    outs[pos]
                } else {
                    out.var(&format!("E{si}_{}", q.var_name(v)))
                }
            };
            for atom in q.atoms() {
                let terms: Vec<Term> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Term::Var(map_var(*v, &mut out)),
                        Term::Const(c) => Term::Const(c.clone()),
                    })
                    .collect();
                out.add_atom(&atom.rel, terms);
            }
        }
        out.set_free(outs);
        out
    }
}

/// Counts `|⋃ᵢ π_free(Qᵢ)(Qᵢ^D)|` by inclusion–exclusion over the
/// disjuncts, counting every intersection with the automatic planner.
///
/// The `2^r − 1` subset counts are independent: they fan out over the
/// worker pool, and the signed sum is folded in ascending mask order, so
/// the total never depends on scheduling.
pub fn count_union(u: &UnionQuery, db: &Database) -> Natural {
    let r = u.disjuncts().len();
    assert!(r < 20, "too many disjuncts for inclusion–exclusion");
    let masks: Vec<u32> = (1u32..(1 << r)).collect();
    let signed: Vec<Int> = cqcount_exec::par_map(&masks, |&mask| {
        let subset: Vec<usize> = (0..r).filter(|i| mask & (1 << i) != 0).collect();
        let conj = u.conjoin(&subset);
        let count = Int::from(count_auto(&conj, db));
        if subset.len() % 2 == 1 {
            count
        } else {
            -count
        }
    });
    let mut total = Int::ZERO;
    for count in &signed {
        total += count;
    }
    assert!(
        !total.is_negative(),
        "inclusion–exclusion went negative: bug"
    );
    total.into_magnitude()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::hom::for_each_homomorphism_to_db;
    use cqcount_query::parse_program;
    use cqcount_relational::Value;
    use std::collections::BTreeSet;

    fn brute_union(u: &UnionQuery, db: &Database) -> Natural {
        let mut set: BTreeSet<Vec<Value>> = BTreeSet::new();
        for q in u.disjuncts() {
            let free: Vec<Var> = q.free().into_iter().collect();
            for_each_homomorphism_to_db(q, db, |h| {
                set.insert(free.iter().map(|v| h[v]).collect());
                true
            });
        }
        Natural::from(set.len())
    }

    fn q(src: &str) -> ConjunctiveQuery {
        parse_program(src).unwrap().0.unwrap()
    }

    #[test]
    fn union_of_two_overlapping() {
        let db = cqcount_query::parse_database("r(a, x). r(b, y). s(b, u). s(c, v).").unwrap();
        let u = UnionQuery::new(vec![q("ans(X) :- r(X, Y)."), q("ans(X) :- s(X, Y).")]);
        // answers: {a, b} ∪ {b, c} = {a, b, c}
        assert_eq!(count_union(&u, &db), 3u64.into());
        assert_eq!(count_union(&u, &db), brute_union(&u, &db));
    }

    #[test]
    fn union_with_identical_disjuncts() {
        let db = cqcount_query::parse_database("r(a, x). r(b, y).").unwrap();
        let d = q("ans(X) :- r(X, Y).");
        let u = UnionQuery::new(vec![d.clone(), d]);
        assert_eq!(count_union(&u, &db), 2u64.into());
    }

    #[test]
    fn binary_output_positional_alignment() {
        let db = cqcount_query::parse_database("e(a, b). e(b, c). f(a, b). f(c, d).").unwrap();
        let u = UnionQuery::new(vec![q("ans(X, Y) :- e(X, Y)."), q("ans(U, V) :- f(U, V).")]);
        // {(a,b),(b,c)} ∪ {(a,b),(c,d)} = 3
        assert_eq!(count_union(&u, &db), 3u64.into());
        assert_eq!(count_union(&u, &db), brute_union(&u, &db));
    }

    #[test]
    fn three_way_union_inclusion_exclusion() {
        let db =
            cqcount_query::parse_database("r(a). r(b). s(b). s(c). t(c). t(a). t(d).").unwrap();
        let u = UnionQuery::new(vec![
            q("ans(X) :- r(X)."),
            q("ans(X) :- s(X)."),
            q("ans(X) :- t(X)."),
        ]);
        // {a,b} ∪ {b,c} ∪ {a,c,d} = {a,b,c,d}
        assert_eq!(count_union(&u, &db), 4u64.into());
        assert_eq!(count_union(&u, &db), brute_union(&u, &db));
    }

    #[test]
    fn union_with_existentials_and_projection() {
        let db = cqcount_query::parse_database("r(a, x). r(a, y). r(b, x). s(x, 1). p(b). p(c).")
            .unwrap();
        let u = UnionQuery::new(vec![q("ans(X) :- r(X, Y), s(Y, Z)."), q("ans(X) :- p(X).")]);
        // first: X with r(X,Y),s(Y,_): {a, b}; second: {b, c} → 3
        assert_eq!(count_union(&u, &db), 3u64.into());
        assert_eq!(count_union(&u, &db), brute_union(&u, &db));
    }

    #[test]
    fn randomized_unions_agree_with_brute() {
        use cqcount_workloads::random::{
            random_database, random_query, RandomCqConfig, RandomDbConfig,
        };
        for seed in 0..10u64 {
            // Two random disjuncts forced to 1 output variable.
            let mut d1 = random_query(
                &RandomCqConfig {
                    atoms: 3,
                    vars: 4,
                    max_arity: 2,
                    rels: 2,
                    free_prob: 0.0,
                },
                seed,
            );
            let mut d2 = random_query(
                &RandomCqConfig {
                    atoms: 3,
                    vars: 4,
                    max_arity: 2,
                    rels: 2,
                    free_prob: 0.0,
                },
                seed + 100,
            );
            let v1 = d1.vars_in_atoms().into_iter().next().unwrap();
            let v2 = d2.vars_in_atoms().into_iter().next().unwrap();
            d1.set_free([v1]);
            d2.set_free([v2]);
            let mut db = random_database(&d1, &RandomDbConfig::default(), seed);
            // merge d2's relations into the same db
            let db2 = random_database(&d2, &RandomDbConfig::default(), seed + 7);
            for (name, rel) in db2.relations() {
                if db.relation(name).is_none() {
                    db.ensure_relation(name, rel.arity());
                    for t in rel.iter() {
                        let names: Vec<String> = t
                            .iter()
                            .map(|v| db2.interner().name(*v).to_owned())
                            .collect();
                        let vals = names.iter().map(|n| db.value(n)).collect();
                        db.add_tuple(name, vals);
                    }
                }
            }
            let u = UnionQuery::new(vec![d1, d2]);
            assert_eq!(count_union(&u, &db), brute_union(&u, &db), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "output arity")]
    fn arity_mismatch_rejected() {
        UnionQuery::new(vec![q("ans(X) :- r(X, Y)."), q("ans(X, Y) :- r(X, Y).")]);
    }
}
